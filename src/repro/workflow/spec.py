"""JSON-serializable workflow and interaction specifications (paper Fig. 4).

A *workflow* is a named sequence of interactions. The interaction
vocabulary mirrors §4.3: *"Creating a visualization i.e., formulating and
executing query, filtering/selecting, linking visualizations, and
discarding a visualization."*

Every class round-trips through plain dictionaries (and thus JSON files),
which is the benchmark's on-disk workload format — generated workflow
suites are written once and can be re-run, inspected with the viewer, or
shared for reproducibility.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.common.errors import WorkflowError
from repro.query.filters import Filter, filter_from_dict
from repro.query.model import Aggregate, AggQuery, BinDimension, BinKey


class WorkflowType(Enum):
    """The four generated workflow types of Fig. 3, plus mixed and custom."""

    INDEPENDENT = "independent"
    SEQUENTIAL = "sequential"
    ONE_TO_N = "one_to_n"
    N_TO_ONE = "n_to_1"
    MIXED = "mixed"
    CUSTOM = "custom"


@dataclass(frozen=True)
class VizSpec:
    """A visualization: its data source, binning, and aggregates.

    The workload generator emits fully *resolved* bin dimensions (concrete
    width/reference) — it performs the min/max resolution a frontend would
    do before first render — so engines never see unresolved binnings.
    """

    name: str
    source: str
    bins: Tuple[BinDimension, ...]
    aggregates: Tuple[Aggregate, ...]

    def __post_init__(self):
        if not self.name:
            raise WorkflowError("visualization needs a name")
        if not self.bins:
            raise WorkflowError(f"viz {self.name!r} needs at least one bin dimension")
        if not self.aggregates:
            raise WorkflowError(f"viz {self.name!r} needs at least one aggregate")

    def base_query(self, filter_expr: Optional[Filter] = None) -> AggQuery:
        """The query this viz runs when its effective filter is ``filter_expr``."""
        return AggQuery(
            table=self.source,
            bins=self.bins,
            aggregates=self.aggregates,
            filter=filter_expr,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "source": self.source,
            "binning": [dim.to_dict() for dim in self.bins],
            "aggregates": [agg.to_dict() for agg in self.aggregates],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VizSpec":
        return cls(
            name=data["name"],
            source=data["source"],
            bins=tuple(BinDimension.from_dict(d) for d in data["binning"]),
            aggregates=tuple(Aggregate.from_dict(a) for a in data["aggregates"]),
        )


class Interaction:
    """Base class of all user interactions."""

    kind: str = ""

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "Interaction":
        kind = data.get("type")
        parser = _INTERACTION_PARSERS.get(kind)
        if parser is None:
            raise WorkflowError(f"unknown interaction type {kind!r}")
        return parser(data)


@dataclass(frozen=True)
class CreateViz(Interaction):
    """Create a visualization → one new query (interactions 1, 3, 4 in Fig. 3)."""

    viz: VizSpec
    kind = "create_viz"

    def to_dict(self) -> dict:
        return {"type": self.kind, "viz": self.viz.to_dict()}


@dataclass(frozen=True)
class SetFilter(Interaction):
    """Set (or clear, with ``filter=None``) a viz's own filter widget."""

    viz_name: str
    filter: Optional[Filter]
    kind = "set_filter"

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "viz": self.viz_name,
            "filter": self.filter.to_dict() if self.filter else None,
        }


@dataclass(frozen=True)
class Link(Interaction):
    """Link ``source`` → ``target`` (interaction 5 in Fig. 3)."""

    source: str
    target: str
    kind = "link"

    def to_dict(self) -> dict:
        return {"type": self.kind, "source": self.source, "target": self.target}


@dataclass(frozen=True)
class SelectBins(Interaction):
    """Select bins in a viz, cross-filtering its linked descendants.

    ``keys`` are bin keys of the viz's binning; an empty tuple clears the
    selection.
    """

    viz_name: str
    keys: Tuple[BinKey, ...]
    kind = "select_bins"

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "viz": self.viz_name,
            "keys": [list(key) for key in self.keys],
        }


@dataclass(frozen=True)
class DiscardViz(Interaction):
    """Remove a visualization (and its links) from the dashboard."""

    viz_name: str
    kind = "discard_viz"

    def to_dict(self) -> dict:
        return {"type": self.kind, "viz": self.viz_name}


def _parse_create(data: dict) -> CreateViz:
    return CreateViz(VizSpec.from_dict(data["viz"]))


def _parse_set_filter(data: dict) -> SetFilter:
    return SetFilter(data["viz"], filter_from_dict(data.get("filter")))


def _parse_link(data: dict) -> Link:
    return Link(data["source"], data["target"])


def _parse_select(data: dict) -> SelectBins:
    keys = tuple(
        tuple(int(c) if isinstance(c, (int, float)) and not isinstance(c, bool) else str(c) for c in key)
        for key in data["keys"]
    )
    return SelectBins(data["viz"], keys)


def _parse_discard(data: dict) -> DiscardViz:
    return DiscardViz(data["viz"])


_INTERACTION_PARSERS = {
    "create_viz": _parse_create,
    "set_filter": _parse_set_filter,
    "link": _parse_link,
    "select_bins": _parse_select,
    "discard_viz": _parse_discard,
}


@dataclass(frozen=True)
class Workflow:
    """A named, typed sequence of interactions (one benchmark unit)."""

    name: str
    workflow_type: WorkflowType
    interactions: Tuple[Interaction, ...]

    def __post_init__(self):
        if not self.name:
            raise WorkflowError("workflow needs a name")
        if not self.interactions:
            raise WorkflowError(f"workflow {self.name!r} has no interactions")

    @property
    def num_interactions(self) -> int:
        return len(self.interactions)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.workflow_type.value,
            "interactions": [interaction.to_dict() for interaction in self.interactions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Workflow":
        return cls(
            name=data["name"],
            workflow_type=WorkflowType(data["type"]),
            interactions=tuple(
                Interaction.from_dict(item) for item in data["interactions"]
            ),
        )

    def to_json(self, path: Union[str, Path]) -> None:
        """Write this workflow to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "Workflow":
        """Load a workflow previously written with :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def save_suite(workflows: Sequence[Workflow], directory: Union[str, Path]) -> List[Path]:
    """Write each workflow to ``directory/<name>.json``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for workflow in workflows:
        path = directory / f"{workflow.name}.json"
        workflow.to_json(path)
        paths.append(path)
    return paths


def load_suite(directory: Union[str, Path]) -> List[Workflow]:
    """Load every ``*.json`` workflow in ``directory`` (sorted by name)."""
    directory = Path(directory)
    return [Workflow.from_json(path) for path in sorted(directory.glob("*.json"))]
