"""Workflows: JSON interaction specs, the viz graph, and the generator.

IDEBench replaces the static query list of TPC-style benchmarks with
*workflows* — sequences of user interactions against a dashboard of linked
visualizations (§4.3). This subpackage implements:

* :mod:`repro.workflow.spec` — the JSON-serializable interaction
  vocabulary of Fig. 4 (create viz / set filter / link / select bins /
  discard viz) and the :class:`Workflow` container;
* :mod:`repro.workflow.graph` — the visualization dependency DAG the
  driver maintains (§4.4): filter/selection propagation along links and
  the set of visualizations an interaction forces to update;
* :mod:`repro.workflow.markov` — the Markov-chain machinery behind the
  generator (§4.3: "models workflows as Markov Chains with pre-defined
  (and customizable) probability distributions");
* :mod:`repro.workflow.generator` — samplers for the four workflow types
  of Fig. 3 (independent browsing, sequential linking, 1:N, N:1) plus the
  mixed type of §5.1;
* :mod:`repro.workflow.viewer` — a terminal inspector for workflows.
"""

from repro.workflow.generator import (
    WorkflowGenerator,
    WorkloadConfig,
    generate_default_suite,
)
from repro.workflow.graph import VizGraph, VizNode
from repro.workflow.markov import MarkovChain
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Interaction,
    Link,
    SelectBins,
    SetFilter,
    VizSpec,
    Workflow,
    WorkflowType,
)
from repro.workflow.viewer import render_workflow

__all__ = [
    "CreateViz",
    "DiscardViz",
    "Interaction",
    "Link",
    "MarkovChain",
    "SelectBins",
    "SetFilter",
    "VizGraph",
    "VizNode",
    "VizSpec",
    "Workflow",
    "WorkflowGenerator",
    "WorkflowType",
    "WorkloadConfig",
    "generate_default_suite",
    "render_workflow",
]
