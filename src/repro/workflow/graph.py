"""The visualization dependency graph the benchmark driver maintains (§4.4).

*"Dash-boards built by users using an IDE frontend can be seen as
dependency graphs of visualization and filter objects. Changing properties
of either object may require all dependent visualization to update, which
on the database-level leads to multiple concurrent queries per
interaction."* (§2.2)

:class:`VizGraph` tracks visualizations, their own filters and selections,
and the directed links between them. It answers the two questions the
driver asks on every interaction:

* **which visualizations must update?** (:meth:`apply` returns them) —
  this determines how many concurrent queries the engine receives;
* **what is each viz's effective predicate?**
  (:meth:`effective_filter`) — the viz's own filter conjoined with the
  selection+filter state of every upstream viz reachable through links
  (Vizdom semantics, Fig. 1c).

Links must form a DAG; creating a cycle raises
:class:`~repro.common.errors.WorkflowError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import WorkflowError
from repro.query.filters import (
    And,
    Comparison,
    Filter,
    Or,
    RangePredicate,
    SetPredicate,
    conjoin,
)
from repro.query.model import AggQuery, BinKey, BinKind
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Interaction,
    Link,
    SelectBins,
    SetFilter,
    VizSpec,
)


@dataclass
class VizNode:
    """Mutable state of one visualization on the dashboard."""

    spec: VizSpec
    own_filter: Optional[Filter] = None
    selection: Tuple[BinKey, ...] = ()

    def selection_filter(self) -> Optional[Filter]:
        """Predicate equivalent of the current selection (None if empty).

        Each selected bin key becomes a conjunction of per-dimension
        predicates (range for quantitative coordinates, equality for
        nominal ones); multiple keys are OR-ed. A pure-nominal 1-D
        selection collapses to a single ``IN`` predicate, matching the SQL
        an IDE frontend would emit.
        """
        if not self.selection:
            return None
        dims = self.spec.bins
        if len(dims) == 1 and dims[0].kind is BinKind.NOMINAL:
            return SetPredicate(
                dims[0].field, frozenset(str(key[0]) for key in self.selection)
            )
        per_key: List[Filter] = []
        for key in self.selection:
            if len(key) != len(dims):
                raise WorkflowError(
                    f"selection key {key!r} does not match binning of "
                    f"{self.spec.name!r}"
                )
            parts: List[Filter] = []
            for dim, coord in zip(dims, key):
                if dim.kind is BinKind.QUANTITATIVE:
                    low, high = dim.bin_interval(int(coord))
                    parts.append(RangePredicate(dim.field, low, high))
                else:
                    parts.append(Comparison(dim.field, "=", str(coord)))
            per_key.append(parts[0] if len(parts) == 1 else And(*parts))
        return per_key[0] if len(per_key) == 1 else Or(*per_key)


@dataclass
class AppliedInteraction:
    """Outcome of :meth:`VizGraph.apply`.

    ``affected`` lists the visualizations that must re-query, in
    deterministic (insertion) order — the driver submits one concurrent
    query per entry.
    """

    affected: Tuple[str, ...]
    removed: Tuple[str, ...] = ()


class VizGraph:
    """Dashboard state: viz nodes plus directed links (a DAG)."""

    def __init__(self):
        self._nodes: Dict[str, VizNode] = {}
        self._links: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def viz_names(self) -> List[str]:
        return list(self._nodes)

    @property
    def links(self) -> List[Tuple[str, str]]:
        return list(self._links)

    def node(self, name: str) -> VizNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise WorkflowError(f"unknown visualization {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def parents(self, name: str) -> List[str]:
        """Sources of incoming links, in link-creation order."""
        return [src for src, dst in self._links if dst == name]

    def children(self, name: str) -> List[str]:
        """Targets of outgoing links, in link-creation order."""
        return [dst for src, dst in self._links if src == name]

    def descendants(self, name: str) -> List[str]:
        """All vizs reachable through outgoing links (BFS order, no dups)."""
        seen: List[str] = []
        frontier = self.children(name)
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.append(current)
            frontier.extend(self.children(current))
        return seen

    # ------------------------------------------------------------------
    # Effective predicate
    # ------------------------------------------------------------------
    def effective_filter(self, name: str) -> Optional[Filter]:
        """The full predicate viz ``name`` queries under.

        Own filter ∧ for every parent: (parent's selection ∧ parent's
        effective filter). Recursion is safe because links form a DAG.
        """
        node = self.node(name)
        parts: List[Optional[Filter]] = [node.own_filter]
        for parent_name in self.parents(name):
            parent = self.node(parent_name)
            parts.append(
                conjoin([parent.selection_filter(), self.effective_filter(parent_name)])
            )
        return conjoin(parts)

    def query_for(self, name: str) -> AggQuery:
        """The query viz ``name`` currently needs answered."""
        node = self.node(name)
        return node.spec.base_query(self.effective_filter(name))

    # ------------------------------------------------------------------
    # Interaction application
    # ------------------------------------------------------------------
    def apply(self, interaction: Interaction) -> AppliedInteraction:
        """Mutate the graph and report which vizs must update.

        Update semantics (§2.2): *"When data of a source visualization is
        either filtered or selected, either the source and the target, or
        just the target visualization are forced to update."* We use:
        filters update the source and its descendants; selections update
        descendants only (the source just highlights).
        """
        if isinstance(interaction, CreateViz):
            return self._apply_create(interaction.viz)
        if isinstance(interaction, SetFilter):
            return self._apply_set_filter(interaction.viz_name, interaction.filter)
        if isinstance(interaction, Link):
            return self._apply_link(interaction.source, interaction.target)
        if isinstance(interaction, SelectBins):
            return self._apply_select(interaction.viz_name, interaction.keys)
        if isinstance(interaction, DiscardViz):
            return self._apply_discard(interaction.viz_name)
        raise WorkflowError(
            f"unknown interaction type {type(interaction).__name__}"
        )

    def _apply_create(self, spec: VizSpec) -> AppliedInteraction:
        if spec.name in self._nodes:
            raise WorkflowError(f"visualization {spec.name!r} already exists")
        self._nodes[spec.name] = VizNode(spec=spec)
        return AppliedInteraction(affected=(spec.name,))

    def _apply_set_filter(
        self, name: str, filter_expr: Optional[Filter]
    ) -> AppliedInteraction:
        node = self.node(name)
        node.own_filter = filter_expr
        return AppliedInteraction(affected=self._dedupe([name] + self.descendants(name)))

    def _apply_link(self, source: str, target: str) -> AppliedInteraction:
        if source == target:
            raise WorkflowError(f"cannot link {source!r} to itself")
        self.node(source)
        self.node(target)
        if (source, target) in self._links:
            raise WorkflowError(f"link {source!r} → {target!r} already exists")
        if source == target or source in self.descendants(target):
            raise WorkflowError(
                f"link {source!r} → {target!r} would create a cycle"
            )
        self._links.append((source, target))
        # The target now draws from the source's data: it and everything
        # downstream of it must refresh.
        return AppliedInteraction(affected=self._dedupe([target] + self.descendants(target)))

    def _apply_select(self, name: str, keys: Tuple[BinKey, ...]) -> AppliedInteraction:
        node = self.node(name)
        node.selection = tuple(tuple(k) for k in keys)
        return AppliedInteraction(affected=tuple(self.descendants(name)))

    def _apply_discard(self, name: str) -> AppliedInteraction:
        self.node(name)
        downstream = self.descendants(name)
        del self._nodes[name]
        self._links = [
            (src, dst) for src, dst in self._links if src != name and dst != name
        ]
        still_present = [viz for viz in downstream if viz in self._nodes]
        return AppliedInteraction(
            affected=tuple(still_present), removed=(name,)
        )

    @staticmethod
    def _dedupe(names: List[str]) -> Tuple[str, ...]:
        seen: List[str] = []
        for name in names:
            if name not in seen:
                seen.append(name)
        return tuple(seen)
