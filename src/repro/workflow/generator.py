"""Workflow generation: the four IDE browsing patterns of Fig. 3.

Each workflow type is sampled from a Markov chain over abstract *actions*
(create a viz, extend the link structure, filter, select, discard); every
sampled action is then materialized into one or more concrete interactions
using the dataset's column profiles — quantitative filters are built from
quantiles so their selectivity is controlled, selections target populated
bins, and binnings use the same width/bin-count definitions real frontends
use (§2.2).

A shadow :class:`~repro.workflow.graph.VizGraph` validates every emitted
interaction, so generated workflows are structurally correct by
construction (no dangling viz references, no cyclic links).

Calibration note: ``WorkloadConfig.agg_distribution`` controls the mix of
aggregate functions. The default mix yields ≈65 % of queries that XDB-style
online aggregation cannot execute online (AVG, or several aggregates in
one query) — the fraction behind the paper's headline "approXimateDB
violates the time requirement consistently around 66 %" finding. The mix
is consistent with the paper's own Table 1 trace, which is dominated by
``avg`` and ``count`` queries.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import WorkflowError
from repro.common.rng import derive_rng
from repro.data.schema import ColumnKind, ColumnProfile
from repro.query.filters import Filter, RangePredicate, SetPredicate
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKey, BinKind
from repro.workflow.graph import VizGraph
from repro.workflow.markov import MarkovChain
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Interaction,
    Link,
    SelectBins,
    SetFilter,
    VizSpec,
    Workflow,
    WorkflowType,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Tunable probability distributions of the generator (§4.3).

    All values are defaults of the *default configuration*; research groups
    can adjust them to their scenario, as the paper's customizability
    requirement demands (§3.2).
    """

    #: Bounds on the number of interactions per workflow (inclusive).
    interactions_min: int = 14
    interactions_max: int = 22
    #: Probability that a new viz bins in two dimensions (binned scatter).
    two_dim_probability: float = 0.15
    #: Probability that a 1-D viz bins a nominal column.
    nominal_dim_probability: float = 0.35
    #: Probability that a quantitative dimension uses the fixed-bin-count
    #: definition (resolved against the profile) rather than fixed width.
    bin_count_probability: float = 0.35
    #: Candidate bin counts for the fixed-count definition.
    bin_count_choices: Tuple[int, ...] = (10, 25, 50, 100)
    #: Candidate target bin counts for deriving a "nice" fixed width.
    width_target_bins: Tuple[int, ...] = (10, 20, 40)
    #: Aggregate mix: (spec, weight). ``count+avg`` emits two aggregates.
    agg_distribution: Tuple[Tuple[str, float], ...] = (
        ("count", 0.23),
        ("avg", 0.52),
        ("sum", 0.07),
        ("count+avg", 0.13),
        ("min", 0.025),
        ("max", 0.025),
    )
    #: Range-filter selectivity is drawn log-uniformly from this interval.
    filter_selectivity_range: Tuple[float, float] = (0.005, 0.6)
    #: Maximum number of categories in a nominal filter.
    max_filter_categories: int = 5
    #: Maximum number of bins per selection.
    max_select_keys: int = 3
    #: Cap on simultaneously existing visualizations.
    max_vizs: int = 8
    #: Cap on linked targets (1:N) / sources (N:1) / chain length.
    max_fanout: int = 5

    def __post_init__(self):
        if self.interactions_min < 2 or self.interactions_max < self.interactions_min:
            raise WorkflowError(
                "interaction bounds must satisfy 2 <= min <= max, got "
                f"[{self.interactions_min}, {self.interactions_max}]"
            )
        if not self.agg_distribution:
            raise WorkflowError("aggregate distribution must be non-empty")
        low, high = self.filter_selectivity_range
        if not 0 < low <= high <= 1:
            raise WorkflowError(
                f"selectivity range must satisfy 0 < low <= high <= 1, got "
                f"({low}, {high})"
            )

    # -- serialization (the §3.2 "modifiable configurations") -----------
    def to_dict(self) -> dict:
        return {
            "interactions_min": self.interactions_min,
            "interactions_max": self.interactions_max,
            "two_dim_probability": self.two_dim_probability,
            "nominal_dim_probability": self.nominal_dim_probability,
            "bin_count_probability": self.bin_count_probability,
            "bin_count_choices": list(self.bin_count_choices),
            "width_target_bins": list(self.width_target_bins),
            "agg_distribution": [list(pair) for pair in self.agg_distribution],
            "filter_selectivity_range": list(self.filter_selectivity_range),
            "max_filter_categories": self.max_filter_categories,
            "max_select_keys": self.max_select_keys,
            "max_vizs": self.max_vizs,
            "max_fanout": self.max_fanout,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise WorkflowError(f"unknown workload config keys: {sorted(unknown)}")
        payload = dict(data)
        for key in ("bin_count_choices", "width_target_bins"):
            if key in payload:
                payload[key] = tuple(int(v) for v in payload[key])
        if "agg_distribution" in payload:
            payload["agg_distribution"] = tuple(
                (str(name), float(weight))
                for name, weight in payload["agg_distribution"]
            )
        if "filter_selectivity_range" in payload:
            low, high = payload["filter_selectivity_range"]
            payload["filter_selectivity_range"] = (float(low), float(high))
        return cls(**payload)

    def to_json(self, path) -> None:
        """Write this configuration to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_json(cls, path) -> "WorkloadConfig":
        """Load a configuration written by :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


_CHAINS: Dict[WorkflowType, MarkovChain] = {
    WorkflowType.INDEPENDENT: MarkovChain(
        states=("create", "filter"),
        transitions={
            "create": {"create": 0.45, "filter": 0.55},
            "filter": {"create": 0.30, "filter": 0.70},
        },
        initial="create",
    ),
    WorkflowType.SEQUENTIAL: MarkovChain(
        states=("extend", "select", "filter"),
        transitions={
            "extend": {"extend": 0.45, "select": 0.40, "filter": 0.15},
            "select": {"extend": 0.30, "select": 0.50, "filter": 0.20},
            "filter": {"extend": 0.35, "select": 0.45, "filter": 0.20},
        },
        initial="extend",
    ),
    WorkflowType.ONE_TO_N: MarkovChain(
        states=("extend", "select", "filter"),
        transitions={
            "extend": {"extend": 0.50, "select": 0.40, "filter": 0.10},
            "select": {"extend": 0.25, "select": 0.60, "filter": 0.15},
            "filter": {"extend": 0.25, "select": 0.60, "filter": 0.15},
        },
        initial="extend",
    ),
    WorkflowType.N_TO_ONE: MarkovChain(
        states=("extend", "select", "filter"),
        transitions={
            "extend": {"extend": 0.50, "select": 0.40, "filter": 0.10},
            "select": {"extend": 0.30, "select": 0.55, "filter": 0.15},
            "filter": {"extend": 0.30, "select": 0.55, "filter": 0.15},
        },
        initial="extend",
    ),
}


class _Builder:
    """Accumulates interactions while mirroring them on a shadow graph."""

    def __init__(self, generator: "WorkflowGenerator", budget: int):
        self.generator = generator
        self.budget = budget
        self.interactions: List[Interaction] = []
        self.graph = VizGraph()
        self._viz_counter = 0

    @property
    def remaining(self) -> int:
        return self.budget - len(self.interactions)

    def emit(self, interaction: Interaction) -> None:
        if self.remaining <= 0:
            raise WorkflowError("interaction budget exhausted")
        self.graph.apply(interaction)
        self.interactions.append(interaction)

    def next_viz_name(self) -> str:
        name = f"viz_{self._viz_counter}"
        self._viz_counter += 1
        return name


class WorkflowGenerator:
    """Samples workflows of the four Fig.-3 types plus mixed.

    Parameters
    ----------
    profiles:
        Column profiles of the (logical, de-normalized) dataset — see
        :func:`repro.data.schema.profile_table`.
    table:
        Logical table name queries reference.
    config:
        Probability distributions (defaults reproduce the paper's setup).
    seed:
        Root seed; the stream for workflow *i* of type *t* is derived as
        ``(seed, "workflow", t, i)``, so suites are stable under growth.
    """

    def __init__(
        self,
        profiles: Dict[str, ColumnProfile],
        table: str,
        config: Optional[WorkloadConfig] = None,
        seed: int = 42,
    ):
        if not profiles:
            raise WorkflowError("generator needs at least one column profile")
        self.profiles = dict(profiles)
        self.table = table
        self.config = config or WorkloadConfig()
        self.seed = seed
        self._quantitative = [
            p for p in self.profiles.values()
            if p.kind is ColumnKind.QUANTITATIVE and p.span > 0
        ]
        self._nominal = [
            p for p in self.profiles.values()
            if p.kind is ColumnKind.NOMINAL and p.cardinality >= 2
        ]
        if not self._quantitative:
            raise WorkflowError("dataset has no usable quantitative columns")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self, workflow_type: WorkflowType, index: int = 0) -> Workflow:
        """Generate workflow ``index`` of ``workflow_type``."""
        rng = derive_rng(self.seed, "workflow", workflow_type.value, index)
        budget = int(
            rng.integers(self.config.interactions_min, self.config.interactions_max + 1)
        )
        builder = _Builder(self, budget)
        if workflow_type is WorkflowType.MIXED:
            self._fill_mixed(builder, rng)
        elif workflow_type in _CHAINS:
            self._fill_typed(builder, rng, workflow_type)
        else:
            raise WorkflowError(
                f"cannot generate workflows of type {workflow_type.value!r}"
            )
        return Workflow(
            name=f"{workflow_type.value}_{index}",
            workflow_type=workflow_type,
            interactions=tuple(builder.interactions),
        )

    def generate_suite(
        self, workflow_type: WorkflowType, count: int
    ) -> List[Workflow]:
        """Generate ``count`` workflows of one type."""
        return [self.generate(workflow_type, i) for i in range(count)]

    # ------------------------------------------------------------------
    # Public sampling API (shared with the adaptive interaction policies)
    # ------------------------------------------------------------------
    def sample_viz_spec(
        self, rng: np.random.Generator, name: str
    ) -> VizSpec:
        """Sample one visualization spec named ``name``.

        The same materialization the offline generator uses, exposed so
        online policies (:mod:`repro.workflow.policy`) build dashboards
        from the identical distributions.
        """
        return self._sample_viz(None, rng, name)

    def sample_filter(self, rng: np.random.Generator, viz: VizSpec) -> Filter:
        """Sample a filter for ``viz`` (see :meth:`_sample_filter`)."""
        return self._sample_filter(rng, viz)

    def sample_selection(
        self, rng: np.random.Generator, viz: VizSpec
    ) -> Tuple[BinKey, ...]:
        """Sample a bin selection for ``viz`` (see :meth:`_sample_selection`)."""
        return self._sample_selection(rng, viz)

    # ------------------------------------------------------------------
    # Type-specific fills
    # ------------------------------------------------------------------
    def _fill_typed(
        self,
        builder: _Builder,
        rng: np.random.Generator,
        workflow_type: WorkflowType,
        anchor: Optional[str] = None,
    ) -> None:
        """Run one typed segment until the budget (or segment cap) is hit."""
        chain = _CHAINS[workflow_type]
        walker = chain.iter_walk(rng)
        while builder.remaining > 0:
            action = next(walker)
            if workflow_type is WorkflowType.INDEPENDENT:
                self._independent_action(builder, rng, action)
            elif workflow_type is WorkflowType.SEQUENTIAL:
                anchor = self._sequential_action(builder, rng, action, anchor)
            elif workflow_type is WorkflowType.ONE_TO_N:
                anchor = self._one_to_n_action(builder, rng, action, anchor)
            elif workflow_type is WorkflowType.N_TO_ONE:
                anchor = self._n_to_one_action(builder, rng, action, anchor)

    def _fill_mixed(self, builder: _Builder, rng: np.random.Generator) -> None:
        """Mixed workflows: consecutive segments of the four base types.

        §5.1: mixed workflows "exhibit usage patterns from all four
        workflow types". The budget is split into three or four segments,
        each running one base type's sampler on the shared dashboard.
        """
        base_types = [
            WorkflowType.INDEPENDENT,
            WorkflowType.SEQUENTIAL,
            WorkflowType.ONE_TO_N,
            WorkflowType.N_TO_ONE,
        ]
        rng.shuffle(base_types)
        num_segments = int(rng.integers(3, 5))
        segments = base_types[:num_segments]
        while builder.remaining > 0:
            for segment_type in segments:
                if builder.remaining <= 0:
                    break
                segment_budget = max(
                    2, min(builder.remaining, builder.budget // num_segments)
                )
                self._fill_segment(builder, rng, segment_type, segment_budget)
            # Occasionally tidy up the dashboard, as real users do.
            if builder.remaining > 0 and len(builder.graph) > 4 and rng.random() < 0.4:
                victim = self._pick_leaf(builder, rng)
                if victim is not None:
                    builder.emit(DiscardViz(victim))

    def _fill_segment(
        self,
        builder: _Builder,
        rng: np.random.Generator,
        workflow_type: WorkflowType,
        segment_budget: int,
    ) -> None:
        chain = _CHAINS[workflow_type]
        walker = chain.iter_walk(rng)
        stop_at = len(builder.interactions) + segment_budget
        anchor: Optional[str] = None
        while builder.remaining > 0 and len(builder.interactions) < stop_at:
            action = next(walker)
            if workflow_type is WorkflowType.INDEPENDENT:
                self._independent_action(builder, rng, action)
            elif workflow_type is WorkflowType.SEQUENTIAL:
                anchor = self._sequential_action(builder, rng, action, anchor)
            elif workflow_type is WorkflowType.ONE_TO_N:
                anchor = self._one_to_n_action(builder, rng, action, anchor)
            elif workflow_type is WorkflowType.N_TO_ONE:
                anchor = self._n_to_one_action(builder, rng, action, anchor)

    # -- independent browsing (Fig. 3a) ---------------------------------
    def _independent_action(
        self, builder: _Builder, rng: np.random.Generator, action: str
    ) -> None:
        can_create = len(builder.graph) < self.config.max_vizs
        if action == "create" and can_create or len(builder.graph) == 0:
            builder.emit(CreateViz(self._sample_viz(builder, rng)))
            return
        viz_name = str(rng.choice(builder.graph.viz_names))
        node = builder.graph.node(viz_name)
        if node.own_filter is not None and rng.random() < 0.12:
            builder.emit(SetFilter(viz_name, None))  # clear (undo)
            return
        builder.emit(SetFilter(viz_name, self._sample_filter(rng, node.spec)))

    # -- sequential linking (Fig. 3b) ------------------------------------
    def _sequential_action(
        self,
        builder: _Builder,
        rng: np.random.Generator,
        action: str,
        tail: Optional[str],
    ) -> Optional[str]:
        chain_members = self._chain_members(builder, tail)
        chain_full = len(chain_members) >= self.config.max_fanout
        if tail is None or (action == "extend" and not chain_full):
            if builder.remaining < 2 and tail is not None:
                action = "select"  # no room for create+link
            else:
                new_name = builder.next_viz_name()
                builder.emit(CreateViz(self._sample_viz(builder, rng, new_name)))
                if tail is not None:
                    if builder.remaining > 0:
                        builder.emit(Link(tail, new_name))
                return new_name
        if action == "filter":
            target = str(rng.choice(chain_members))
            node = builder.graph.node(target)
            builder.emit(SetFilter(target, self._sample_filter(rng, node.spec)))
            return tail
        # select: prefer non-tail members so descendants exist.
        candidates = [m for m in chain_members if builder.graph.children(m)]
        target = str(rng.choice(candidates or chain_members))
        node = builder.graph.node(target)
        builder.emit(SelectBins(target, self._sample_selection(rng, node.spec)))
        return tail

    def _chain_members(self, builder: _Builder, tail: Optional[str]) -> List[str]:
        if tail is None:
            return []
        members = [tail]
        current = tail
        while True:
            parents = builder.graph.parents(current)
            if not parents:
                break
            current = parents[0]
            members.append(current)
        return list(reversed(members))

    # -- 1:N linking (Fig. 3c) -------------------------------------------
    def _one_to_n_action(
        self,
        builder: _Builder,
        rng: np.random.Generator,
        action: str,
        hub: Optional[str],
    ) -> Optional[str]:
        if hub is None or hub not in builder.graph:
            name = builder.next_viz_name()
            builder.emit(CreateViz(self._sample_viz(builder, rng, name)))
            return name
        targets = builder.graph.children(hub)
        can_extend = (
            len(targets) < self.config.max_fanout
            and len(builder.graph) < self.config.max_vizs
            and builder.remaining >= 2
        )
        if (action == "extend" or not targets) and can_extend:
            new_name = builder.next_viz_name()
            builder.emit(CreateViz(self._sample_viz(builder, rng, new_name)))
            builder.emit(Link(hub, new_name))
            return hub
        hub_node = builder.graph.node(hub)
        if action == "filter" or not targets:
            # Selections without descendants trigger nothing; prefer a
            # filter (which re-queries the hub itself) in that case.
            builder.emit(SetFilter(hub, self._sample_filter(rng, hub_node.spec)))
        else:
            builder.emit(SelectBins(hub, self._sample_selection(rng, hub_node.spec)))
        return hub

    # -- N:1 linking (Fig. 3d) ---------------------------------------------
    def _n_to_one_action(
        self,
        builder: _Builder,
        rng: np.random.Generator,
        action: str,
        target: Optional[str],
    ) -> Optional[str]:
        if target is None or target not in builder.graph:
            name = builder.next_viz_name()
            builder.emit(CreateViz(self._sample_viz(builder, rng, name)))
            return name
        sources = builder.graph.parents(target)
        can_extend = (
            len(sources) < self.config.max_fanout
            and len(builder.graph) < self.config.max_vizs
            and builder.remaining >= 2
        )
        if (action == "extend" or not sources) and can_extend:
            new_name = builder.next_viz_name()
            builder.emit(CreateViz(self._sample_viz(builder, rng, new_name)))
            builder.emit(Link(new_name, target))
            return target
        if not sources:
            # No sources yet and no room to create one: act on the target.
            target_node = builder.graph.node(target)
            builder.emit(SetFilter(target, self._sample_filter(rng, target_node.spec)))
            return target
        source = str(rng.choice(sources))
        source_node = builder.graph.node(source)
        if action == "filter":
            builder.emit(SetFilter(source, self._sample_filter(rng, source_node.spec)))
        else:
            builder.emit(SelectBins(source, self._sample_selection(rng, source_node.spec)))
        return target

    def _pick_leaf(self, builder: _Builder, rng: np.random.Generator) -> Optional[str]:
        """A viz with no outgoing links (safe to discard without orphaning)."""
        leaves = [
            name for name in builder.graph.viz_names
            if not builder.graph.children(name)
        ]
        if not leaves:
            return None
        return str(rng.choice(leaves))

    # ------------------------------------------------------------------
    # Materialization of specs, filters, selections
    # ------------------------------------------------------------------
    def _sample_viz(
        self,
        builder: _Builder,
        rng: np.random.Generator,
        name: Optional[str] = None,
    ) -> VizSpec:
        name = name or builder.next_viz_name()
        if rng.random() < self.config.two_dim_probability:
            first = self._sample_quantitative_dim(rng)
            if self._nominal and rng.random() < 0.5:
                second = self._sample_nominal_dim(rng, exclude=())
            else:
                second = self._sample_quantitative_dim(rng, exclude=(first.field,))
            bins: Tuple[BinDimension, ...] = (first, second)
        elif self._nominal and rng.random() < self.config.nominal_dim_probability:
            bins = (self._sample_nominal_dim(rng, exclude=()),)
        else:
            bins = (self._sample_quantitative_dim(rng),)
        aggregates = self._sample_aggregates(rng, exclude={d.field for d in bins})
        return VizSpec(name=name, source=self.table, bins=bins, aggregates=aggregates)

    def _sample_quantitative_dim(
        self, rng: np.random.Generator, exclude: Tuple[str, ...] = ()
    ) -> BinDimension:
        candidates = [p for p in self._quantitative if p.name not in exclude]
        profile = candidates[int(rng.integers(len(candidates)))]
        if rng.random() < self.config.bin_count_probability:
            bin_count = int(rng.choice(self.config.bin_count_choices))
            # The generator resolves immediately (it has the profile), as
            # the frontend's min/max pre-query would.
            return BinDimension(
                field=profile.name,
                kind=BinKind.QUANTITATIVE,
                bin_count=bin_count,
            ).resolved(profile.minimum, profile.maximum)
        target_bins = int(rng.choice(self.config.width_target_bins))
        width = _nice_width(profile.span / target_bins)
        reference = _nice_floor(profile.minimum, width)
        return BinDimension(
            field=profile.name,
            kind=BinKind.QUANTITATIVE,
            width=width,
            reference=reference,
        )

    def _sample_nominal_dim(
        self, rng: np.random.Generator, exclude: Tuple[str, ...]
    ) -> BinDimension:
        candidates = [p for p in self._nominal if p.name not in exclude]
        if not candidates:
            raise WorkflowError("no nominal columns available")
        profile = candidates[int(rng.integers(len(candidates)))]
        return BinDimension(field=profile.name, kind=BinKind.NOMINAL)

    def _sample_aggregates(
        self, rng: np.random.Generator, exclude: set
    ) -> Tuple[Aggregate, ...]:
        specs, weights = zip(*self.config.agg_distribution)
        weights = np.array(weights, dtype=np.float64)
        choice = str(rng.choice(specs, p=weights / weights.sum()))
        numeric_candidates = [
            p.name for p in self._quantitative if p.name not in exclude
        ] or [p.name for p in self._quantitative]
        field_name = str(rng.choice(numeric_candidates))
        if choice == "count":
            return (Aggregate(AggFunc.COUNT),)
        if choice == "count+avg":
            return (Aggregate(AggFunc.COUNT), Aggregate(AggFunc.AVG, field_name))
        return (Aggregate(AggFunc(choice), field_name),)

    def _sample_filter(self, rng: np.random.Generator, viz: VizSpec) -> Filter:
        """A filter on a column *other* than the viz's bin dimensions.

        Filtering a histogram by a different attribute is the dominant
        pattern in the use case of §2.1 ("filter age query by patients
        admitted on weekends"). Selectivity varies over orders of
        magnitude — §5.5 found predicate specificity to be the single most
        performance-relevant workload factor.
        """
        bin_fields = {dim.field for dim in viz.bins}
        if self._nominal and rng.random() < 0.35:
            candidates = [p for p in self._nominal if p.name not in bin_fields]
            if candidates:
                profile = candidates[int(rng.integers(len(candidates)))]
                k = int(
                    rng.integers(
                        1, min(self.config.max_filter_categories, profile.cardinality) + 1
                    )
                )
                # Weight toward frequent categories (rank-biased).
                ranks = np.arange(profile.cardinality, dtype=np.float64)
                weights = 1.0 / (1.0 + ranks)
                chosen = rng.choice(
                    profile.cardinality, size=k, replace=False, p=weights / weights.sum()
                )
                return SetPredicate(
                    profile.name,
                    frozenset(profile.categories[int(i)] for i in chosen),
                )
        candidates = [p for p in self._quantitative if p.name not in bin_fields]
        profile = (candidates or self._quantitative)[
            int(rng.integers(len(candidates or self._quantitative)))
        ]
        low_sel, high_sel = self.config.filter_selectivity_range
        selectivity = float(
            np.exp(rng.uniform(np.log(low_sel), np.log(high_sel)))
        )
        start = float(rng.uniform(0.0, 1.0 - selectivity))
        low = profile.quantile(start)
        high = profile.quantile(start + selectivity)
        if high <= low:
            high = low + max(profile.span * 0.001, 1e-9)
        return RangePredicate(profile.name, low, high)

    def _sample_selection(
        self, rng: np.random.Generator, viz: VizSpec
    ) -> Tuple[BinKey, ...]:
        """Select 1..max populated-looking bins of ``viz``."""
        num_keys = int(rng.integers(1, self.config.max_select_keys + 1))
        keys: List[BinKey] = []
        for _ in range(num_keys):
            coords = []
            for dim in viz.bins:
                if dim.kind is BinKind.QUANTITATIVE:
                    profile = self.profiles[dim.field]
                    value = profile.quantile(float(rng.uniform(0.05, 0.95)))
                    coords.append(int(np.floor((value - dim.reference) / dim.width)))
                else:
                    profile = self.profiles[dim.field]
                    top = min(10, profile.cardinality)
                    coords.append(profile.categories[int(rng.integers(top))])
            key = tuple(coords)
            if key not in keys:
                keys.append(key)
        return tuple(keys)


def _nice_width(raw: float) -> float:
    """Round ``raw`` up to a 1/2/5 × 10^m 'nice' bin width."""
    if raw <= 0:
        raise WorkflowError(f"bin width must be positive, got {raw}")
    magnitude = 10.0 ** np.floor(np.log10(raw))
    for factor in (1.0, 2.0, 5.0, 10.0):
        if raw <= factor * magnitude + 1e-12:
            return float(factor * magnitude)
    return float(10.0 * magnitude)


def _nice_floor(value: float, width: float) -> float:
    """Largest multiple of ``width`` not exceeding ``value``."""
    return float(np.floor(value / width) * width)


def generate_default_suite(
    profiles: Dict[str, ColumnProfile],
    table: str,
    workflows_per_type: int = 10,
    config: Optional[WorkloadConfig] = None,
    seed: int = 42,
) -> List[Workflow]:
    """The paper's default workload (§5.1).

    10 workflows per base type plus 10 mixed ones: 50 workflows total with
    the default ``workflows_per_type=10``.
    """
    generator = WorkflowGenerator(profiles, table, config=config, seed=seed)
    suite: List[Workflow] = []
    for workflow_type in (
        WorkflowType.INDEPENDENT,
        WorkflowType.SEQUENTIAL,
        WorkflowType.ONE_TO_N,
        WorkflowType.N_TO_ONE,
        WorkflowType.MIXED,
    ):
        suite.extend(generator.generate_suite(workflow_type, workflows_per_type))
    return suite
