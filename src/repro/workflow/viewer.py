"""Terminal viewer for generated workflows.

§4.3: *"Once generated, they can be inspected with an interactive
viewer."* This reproduction renders workflows as annotated text — each
interaction with the queries it would trigger, plus the final dashboard's
link structure — which serves the same inspection purpose without a GUI.
"""

from __future__ import annotations

from typing import List, Optional

from repro.query.sql import query_to_sql
from repro.workflow.graph import VizGraph
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Link,
    SelectBins,
    SetFilter,
    Workflow,
)


def _describe_interaction(interaction) -> str:
    if isinstance(interaction, CreateViz):
        viz = interaction.viz
        dims = " × ".join(
            f"{d.field}[{d.kind.value}]" for d in viz.bins
        )
        aggs = ", ".join(a.label for a in viz.aggregates)
        return f"create {viz.name}: {dims} → {aggs}"
    if isinstance(interaction, SetFilter):
        if interaction.filter is None:
            return f"clear filter on {interaction.viz_name}"
        return f"filter {interaction.viz_name}: {interaction.filter.to_dict()}"
    if isinstance(interaction, Link):
        return f"link {interaction.source} → {interaction.target}"
    if isinstance(interaction, SelectBins):
        keys = ", ".join(str(key) for key in interaction.keys) or "∅"
        return f"select on {interaction.viz_name}: {keys}"
    if isinstance(interaction, DiscardViz):
        return f"discard {interaction.viz_name}"
    return repr(interaction)


def render_workflow(
    workflow: Workflow, show_sql: bool = False, max_sql: Optional[int] = None
) -> str:
    """Render ``workflow`` as human-readable text.

    With ``show_sql=True`` each interaction also lists the SQL of every
    query it triggers (capped at ``max_sql`` statements overall) — the
    same information Fig. 4 of the paper shows for a 1:N workflow.
    """
    lines: List[str] = [
        f"workflow {workflow.name!r} ({workflow.workflow_type.value}, "
        f"{workflow.num_interactions} interactions)",
        "",
    ]
    graph = VizGraph()
    sql_emitted = 0
    for index, interaction in enumerate(workflow.interactions):
        applied = graph.apply(interaction)
        queries = len(applied.affected)
        lines.append(
            f"{index:3d}. {_describe_interaction(interaction)}"
            f"   [{queries} quer{'y' if queries == 1 else 'ies'}]"
        )
        if show_sql:
            for viz_name in applied.affected:
                if max_sql is not None and sql_emitted >= max_sql:
                    break
                statement = query_to_sql(graph.query_for(viz_name))
                indented = "\n".join(
                    "        " + line for line in statement.splitlines()
                )
                lines.append(f"      {viz_name}:")
                lines.append(indented)
                sql_emitted += 1
    lines.append("")
    lines.append("final dashboard:")
    for name in graph.viz_names:
        children = graph.children(name)
        arrow = f" → {', '.join(children)}" if children else ""
        node = graph.node(name)
        marks = []
        if node.own_filter is not None:
            marks.append("filtered")
        if node.selection:
            marks.append(f"{len(node.selection)} selected")
        suffix = f"  ({'; '.join(marks)})" if marks else ""
        lines.append(f"  {name}{arrow}{suffix}")
    return "\n".join(lines)
