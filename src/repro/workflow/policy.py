"""Interaction policies: scripted, adaptive and uncertainty-driven users.

IDEBench models users as *pre-generated* interaction workflows (§4.3).
Its own outlook — and Purich et al.'s adaptive benchmark (PAPERS.md) —
argue that realistic exploration load comes from users who *react* to
what they see: an empty chart makes a real user loosen their filter, a
noisy estimate makes them drill in. An :class:`InteractionPolicy` is that
user model: instead of indexing into a fixed interaction list, the
session driver (:class:`repro.bench.driver.SessionDriver`) asks the
policy for the next interaction, handing it a :class:`PolicyView` of the
live dashboard and every metric record the session has observed so far.

Three policies ship:

* :class:`ReplayPolicy` — replays a pre-generated workflow suite through
  the policy code path. Byte-identical to scripted execution (the golden
  corpus proves it), so it doubles as the regression anchor for the
  adaptive machinery.
* :class:`MarkovPolicy` — samples the paper's workflow Markov chains
  *online*, materializing each action against the live dashboard, and
  reacts to empty/low-cardinality results by clearing the offending
  viz's filter before continuing the walk.
* :class:`UncertaintyChaserPolicy` — AIDE-style exploration: it chases
  the visualization with the widest relative margins of error (falling
  back to missing-bin mass when an engine reports no margins), drilling
  in with filters/selections and periodically spawning linked detail
  views on the most uncertain viz.

Determinism: a policy draws randomness exclusively from a
:func:`repro.common.rng.derive_rng` stream keyed by the session's seed
plus the ``("policy", <name>)`` purpose string, and decisions depend only
on the session's own observed records — never on wall time or stepping
interleave. Adaptive runs are therefore byte-identical across repeated
invocations, acceleration factors and serving topologies with the same
configuration (docs/server.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import WorkflowError
from repro.common.rng import derive_rng
from repro.workflow.generator import _CHAINS, WorkflowGenerator
from repro.workflow.graph import VizGraph
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Interaction,
    Link,
    SelectBins,
    SetFilter,
    Workflow,
    WorkflowType,
)

#: Registry of policy names accepted by ``make_policy`` (and the CLI).
POLICY_NAMES = ("replay", "markov", "uncertainty", "load-adaptive")

#: Sentinel an *external* interaction source returns from
#: ``next_interaction`` when the next interaction is not known yet (the
#: remote frontend has not sent it). The session driver then *stalls* —
#: it keeps draining due deadlines but will not fire an interaction —
#: until :meth:`repro.bench.driver.SessionDriver.resume` is called.
#: In-process policies never return this.
PENDING = object()

#: A result delivering this many bins or fewer counts as "empty/low
#: cardinality" — the signal MarkovPolicy reacts to by re-filtering.
LOW_CARDINALITY_BINS = 1


@dataclass(frozen=True)
class WorkflowPlan:
    """Header of one policy-driven workflow (name + type for reporting)."""

    name: str
    workflow_type: WorkflowType


@dataclass(frozen=True)
class PolicyView:
    """What a policy may observe when choosing the next interaction.

    ``graph`` is the session's live dashboard (treat as read-only) and
    ``records`` every metric record evaluated so far, in evaluation
    order — the information a real user has at the moment they act.
    """

    session_id: str
    workflow_index: int
    interaction_index: int
    graph: VizGraph
    records: Sequence  # QueryRecord, duck-typed to avoid a bench import
    #: Server-side load signals (Purich et al.'s adaptive direction):
    #: how many of the session's queries are still in flight, and the
    #: end-to-end latency of the last evaluated one (0.0 before the
    #: first). Both are pure functions of the session's own event
    #: history, so policies reading them stay byte-deterministic.
    queue_depth: int = 0
    last_latency: float = 0.0


class InteractionPolicy:
    """Chooses a session's interactions online (the adaptive-user hook).

    The session driver calls, in order:

    1. :meth:`begin_workflow` when a workflow would start — return its
       :class:`WorkflowPlan`, or ``None`` to end the session;
    2. :meth:`next_interaction` for every interaction — return ``None``
       to end the current workflow (its deadline tail still drains);
    3. :meth:`observe` with every produced record, the instant its
       deadline is evaluated.

    The first :meth:`next_interaction` of a workflow must not be ``None``
    (workflows cannot be empty).
    """

    name: str = "policy"

    def begin_workflow(self, index: int) -> Optional[WorkflowPlan]:
        raise NotImplementedError

    def next_interaction(self, view: PolicyView) -> Optional[Interaction]:
        raise NotImplementedError

    def observe(self, record) -> None:  # pragma: no cover - trivial default
        """Called with every evaluated :class:`QueryRecord` of the session."""


class ReplayPolicy(InteractionPolicy):
    """Replays a pre-generated suite through the policy code path.

    Produces exactly the interactions (and thus exactly the bytes) the
    scripted driver produces for the same suite — the determinism anchor
    adaptive runs are regression-tested against.
    """

    name = "replay"

    def __init__(self, workflows: Sequence[Workflow]):
        if not workflows:
            raise WorkflowError("replay policy needs at least one workflow")
        self._workflows = list(workflows)
        self._cursor = 0

    def begin_workflow(self, index: int) -> Optional[WorkflowPlan]:
        if index >= len(self._workflows):
            return None
        self._cursor = 0
        workflow = self._workflows[index]
        return WorkflowPlan(workflow.name, workflow.workflow_type)

    def next_interaction(self, view: PolicyView) -> Optional[Interaction]:
        workflow = self._workflows[view.workflow_index]
        if self._cursor >= len(workflow.interactions):
            return None
        interaction = workflow.interactions[self._cursor]
        self._cursor += 1
        return interaction


class ExternalInteractionSource(InteractionPolicy):
    """Adapter for interactions arriving from *outside* the process.

    The network front-end (:mod:`repro.net`) maps each client-driven TCP
    connection to one session whose interactions are chosen by the
    remote frontend. This class is the bridge: the connection handler
    :meth:`feed`\\ s decoded interactions into a buffer, the session
    driver pops them through the normal policy interface, and when the
    buffer is empty the source answers :data:`PENDING` — the driver
    stalls (see :attr:`repro.bench.driver.SessionDriver.needs_input`)
    instead of ending the workflow, because the frontend may still be
    thinking. :meth:`finish` ends the session (the client detached); the
    deadline tail then drains normally.

    Interactions still *fire* on the think-time grid regardless of when
    their frames arrive, so a client that sends the same interactions as
    a scripted session produces byte-identical records — wall arrival
    time never leaks into the simulation.
    """

    name = "external"

    def __init__(
        self,
        plan_name: str = "client",
        workflow_type: WorkflowType = WorkflowType.CUSTOM,
    ):
        self._plan_name = plan_name
        self._workflow_type = workflow_type
        self._buffer: List[Interaction] = []
        self._finished = False

    def feed(self, interaction: Interaction) -> None:
        """Queue one frontend interaction for the driver to fire."""
        if self._finished:
            raise WorkflowError(
                "external source already finished; cannot accept interactions"
            )
        self._buffer.append(interaction)

    def finish(self) -> None:
        """No more interactions will arrive (the client detached)."""
        self._finished = True

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def begin_workflow(self, index: int) -> Optional[WorkflowPlan]:
        # One client workflow per attachment: the TCP session *is* the
        # workflow, ended by the client's detach.
        if index > 0:
            return None
        return WorkflowPlan(self._plan_name, self._workflow_type)

    def next_interaction(self, view: PolicyView) -> Optional[Interaction]:
        if self._buffer:
            return self._buffer.pop(0)
        if self._finished:
            return None
        return PENDING  # type: ignore[return-value]


class _GenerativePolicy(InteractionPolicy):
    """Shared machinery of the policies that synthesize interactions."""

    def __init__(
        self,
        generator: WorkflowGenerator,
        per_session: int,
        seed: int = 0,
    ):
        if per_session < 1:
            raise WorkflowError(
                f"policy needs at least one workflow, got {per_session!r}"
            )
        self._generator = generator
        self._per_session = per_session
        self._rng = derive_rng(seed, "policy", self.name)
        self._budget = 0
        self._emitted = 0
        self._queue: List[Interaction] = []
        self._viz_counter = 0

    # -- per-workflow state ------------------------------------------------
    def _start_workflow(self) -> None:
        config = self._generator.config
        self._budget = int(
            self._rng.integers(
                config.interactions_min, config.interactions_max + 1
            )
        )
        self._emitted = 0
        self._queue = []
        self._viz_counter = 0

    def _next_name(self) -> str:
        name = f"viz_{self._viz_counter}"
        self._viz_counter += 1
        return name

    @property
    def _room(self) -> int:
        return self._budget - self._emitted - len(self._queue)

    def _emit(self, interactions: List[Interaction]) -> Interaction:
        first, rest = interactions[0], interactions[1:]
        self._queue.extend(rest)
        self._emitted += 1
        return first

    def next_interaction(self, view: PolicyView) -> Optional[Interaction]:
        if self._queue:
            self._emitted += 1
            return self._queue.pop(0)
        if self._emitted >= self._budget:
            return None
        chosen = self._choose(view)
        if not chosen:
            return None
        return self._emit(chosen)

    def _choose(self, view: PolicyView) -> List[Interaction]:
        raise NotImplementedError

    # -- shared materializers ---------------------------------------------
    def _create(self, rng: np.random.Generator) -> List[Interaction]:
        name = self._next_name()
        return [CreateViz(self._generator.sample_viz_spec(rng, name))]

    def _filter(self, graph: VizGraph, target: str) -> List[Interaction]:
        node = graph.node(target)
        return [
            SetFilter(target, self._generator.sample_filter(self._rng, node.spec))
        ]

    def _select(self, graph: VizGraph, target: str) -> List[Interaction]:
        node = graph.node(target)
        return [
            SelectBins(
                target, self._generator.sample_selection(self._rng, node.spec)
            )
        ]


class MarkovPolicy(_GenerativePolicy):
    """Samples the §4.3 workflow Markov chains online, reacting as it goes.

    Each workflow picks one of the four Fig.-3 chains (or the configured
    base type) and walks it one action at a time, materializing actions
    against the *live* dashboard. Unlike the offline generator, the
    policy sees the session's metric stream: when a query comes back
    empty (or with :data:`LOW_CARDINALITY_BINS` or fewer bins), the
    policy's next move is to clear that visualization's own filter — the
    "that filtered everything away, undo it" reaction of a real user —
    before resuming the chain walk.
    """

    name = "markov"

    def __init__(
        self,
        generator: WorkflowGenerator,
        per_session: int,
        workflow_type: WorkflowType = WorkflowType.MIXED,
        seed: int = 0,
    ):
        super().__init__(generator, per_session, seed)
        self._workflow_type = workflow_type
        self._walker = None
        self._refilter: List[str] = []

    def begin_workflow(self, index: int) -> Optional[WorkflowPlan]:
        if index >= self._per_session:
            return None
        self._start_workflow()
        self._refilter = []
        base_types = sorted(_CHAINS, key=lambda t: t.value)
        if self._workflow_type is WorkflowType.MIXED:
            base = base_types[int(self._rng.integers(len(base_types)))]
        elif self._workflow_type in _CHAINS:
            base = self._workflow_type
        else:
            raise WorkflowError(
                f"markov policy cannot run type {self._workflow_type.value!r}"
            )
        self._walker = _CHAINS[base].iter_walk(self._rng)
        return WorkflowPlan(f"markov_{base.value}_{index}", base)

    def observe(self, record) -> None:
        metrics = record.metrics
        if (
            not metrics.tr_violated
            and metrics.bins_delivered <= LOW_CARDINALITY_BINS
            and record.viz_name not in self._refilter
        ):
            self._refilter.append(record.viz_name)

    def _choose(self, view: PolicyView) -> List[Interaction]:
        graph = view.graph
        # Adaptive reaction first: undo filters that emptied a chart.
        while self._refilter:
            name = self._refilter.pop(0)
            if name in graph and graph.node(name).own_filter is not None:
                return [SetFilter(name, None)]
        config = self._generator.config
        for _ in range(16):  # chain walks always reach a feasible action
            action = next(self._walker)
            names = graph.viz_names
            can_create = len(graph) < config.max_vizs
            if not names:
                if not can_create:  # pragma: no cover - max_vizs >= 1
                    return []
                return self._create(self._rng)
            if action == "create" and can_create:
                return self._create(self._rng)
            if action == "extend" and can_create and self._room >= 2:
                source = str(self._rng.choice(names))
                created = self._create(self._rng)
                target = created[0].viz.name
                return created + [Link(source, target)]
            if action == "select":
                candidates = [n for n in names if graph.children(n)] or names
                return self._select(graph, str(self._rng.choice(candidates)))
            if action in ("filter", "create", "extend"):
                target = str(self._rng.choice(names))
                node = graph.node(target)
                if node.own_filter is not None and self._rng.random() < 0.12:
                    return [SetFilter(target, None)]  # clear (undo)
                return self._filter(graph, target)
        return []


class LoadAdaptivePolicy(MarkovPolicy):
    """A markov user who *backs off* when the server is struggling.

    Purich et al.'s adaptive benchmark observes that real exploration
    load is elastic: users slow down and shed work when the system lags.
    This policy closes that loop with the server-side signals
    :class:`PolicyView` now carries: when the session's in-flight query
    count reaches ``backoff_depth``, the last evaluated query violated
    its time requirement (the user saw a blank chart), or its end-to-end
    latency ran *past* ``backoff_fraction`` × TR (progressive engines
    complete exactly at the deadline, so only genuine overruns trip
    this), the user's next move *sheds load* — discarding the newest
    dashboard visualization (closing charts, the way a real user reacts
    to a sluggish dashboard) instead of issuing new queries.
    With one viz left there is nothing worth closing, so the user simply
    walks away (the workflow ends early).

    Under light load the policy is exactly a :class:`MarkovPolicy` walk;
    decisions depend only on the session's own observed records and
    in-flight count, so runs remain byte-deterministic.
    """

    name = "load-adaptive"

    def __init__(
        self,
        generator: WorkflowGenerator,
        per_session: int,
        workflow_type: WorkflowType = WorkflowType.MIXED,
        seed: int = 0,
        backoff_depth: int = 6,
        backoff_fraction: float = 1.0,
    ):
        super().__init__(
            generator, per_session, workflow_type=workflow_type, seed=seed
        )
        if backoff_depth < 1:
            raise WorkflowError(
                f"backoff_depth must be >= 1, got {backoff_depth!r}"
            )
        if backoff_fraction <= 0.0:
            raise WorkflowError(
                f"backoff_fraction must be positive, got {backoff_fraction!r}"
            )
        self._backoff_depth = backoff_depth
        self._backoff_fraction = backoff_fraction
        self._last_record = None
        self.backoffs = 0

    def begin_workflow(self, index: int) -> Optional[WorkflowPlan]:
        plan = super().begin_workflow(index)
        if plan is None:
            return None
        # Strain is per task: a violated record at the end of the
        # previous workflow must not make the user give up on the next
        # one before it produced anything.
        self._last_record = None
        return WorkflowPlan(f"load_adaptive_{index}", plan.workflow_type)

    def observe(self, record) -> None:
        super().observe(record)
        self._last_record = record

    def _overloaded(self, view: PolicyView) -> bool:
        if view.queue_depth >= self._backoff_depth:
            return True
        # The latency signal counts only once the *current* workflow has
        # an evaluated record (every record observed since begin_workflow
        # belongs to it — the previous workflow's deadline tail drains
        # before a new workflow starts).
        if self._last_record is None or not view.records:
            return False
        if view.records[-1] is not self._last_record:
            return False  # stale: latest record predates this workflow
        last = view.records[-1]
        if last.metrics.tr_violated:
            return True
        budget = last.time_requirement * self._backoff_fraction
        return view.last_latency > budget

    def _choose(self, view: PolicyView) -> List[Interaction]:
        names = view.graph.viz_names
        # An empty dashboard means the user just sat down: always start
        # working; back off only once there is something to shed.
        if names and self._overloaded(view):
            self.backoffs += 1
            if len(names) > 1:
                # Shed the newest chart (highest creation counter; names
                # are viz_<n>, so the lexicographically-by-length-then-
                # value max is the latest). Deterministic tie-break.
                newest = max(names, key=lambda n: (len(n), n))
                return [DiscardViz(newest)]
            return []  # one chart left: the user gives up on this task
        return super()._choose(view)


class UncertaintyChaserPolicy(_GenerativePolicy):
    """Chases the visualization with the widest confidence intervals.

    AIDE-style exploration: every observed record scores its viz by the
    mean *relative* margin of error the engine reported (§4.7's Margins
    metric); engines that report no margins score by missing-bin mass,
    and TR-violated queries score 1 (nothing is known about them). The
    policy then drills into the currently most uncertain viz — selecting
    bins when it has linked descendants to drive, filtering it otherwise
    — and every ``explore_every`` interactions links a fresh detail viz
    to it. Vizs never queried yet rank as maximally uncertain, so the
    chaser keeps broadening until estimates stabilize.
    """

    name = "uncertainty"

    def __init__(
        self,
        generator: WorkflowGenerator,
        per_session: int,
        seed: int = 0,
        explore_every: int = 4,
    ):
        super().__init__(generator, per_session, seed)
        if explore_every < 2:
            raise WorkflowError(
                f"explore_every must be >= 2, got {explore_every!r}"
            )
        self._explore_every = explore_every
        self._uncertainty: Dict[str, float] = {}

    def begin_workflow(self, index: int) -> Optional[WorkflowPlan]:
        if index >= self._per_session:
            return None
        self._start_workflow()
        self._uncertainty = {}
        return WorkflowPlan(f"uncertainty_{index}", WorkflowType.CUSTOM)

    def observe(self, record) -> None:
        metrics = record.metrics
        if metrics.tr_violated:
            score = 1.0
        elif metrics.margin_avg == metrics.margin_avg:  # not NaN
            score = float(metrics.margin_avg)
        else:
            score = float(metrics.missing_bins)
        self._uncertainty[record.viz_name] = score

    def _chase_target(self, graph: VizGraph) -> str:
        # Unqueried vizs are maximally uncertain; ties break by name so
        # the choice is a pure function of the observed records.
        return max(
            sorted(graph.viz_names),
            key=lambda name: self._uncertainty.get(name, float("inf")),
        )

    def _choose(self, view: PolicyView) -> List[Interaction]:
        graph = view.graph
        config = self._generator.config
        can_create = len(graph) < config.max_vizs
        if not graph.viz_names:
            return self._create(self._rng)
        target = self._chase_target(graph)
        explore = (
            self._emitted % self._explore_every == self._explore_every - 1
        )
        if explore and can_create and self._room >= 2:
            created = self._create(self._rng)
            detail = created[0].viz.name
            return created + [Link(target, detail)]
        if graph.children(target):
            return self._select(graph, target)
        return self._filter(graph, target)


def make_policy(
    name: str,
    *,
    workflows: Optional[Sequence[Workflow]] = None,
    generator: Optional[WorkflowGenerator] = None,
    per_session: int = 2,
    workflow_type: WorkflowType = WorkflowType.MIXED,
    seed: int = 0,
) -> InteractionPolicy:
    """Build a policy by registry name (the CLI's ``--policy`` values).

    ``replay`` needs ``workflows``; the generative policies need a
    ``generator`` (column profiles) and draw their own randomness from
    ``seed`` — pass the session's seed for per-session streams.
    """
    if name == "replay":
        if workflows is None:
            raise WorkflowError("replay policy requires pre-generated workflows")
        return ReplayPolicy(workflows)
    if name == "markov":
        if generator is None:
            raise WorkflowError("markov policy requires a workflow generator")
        return MarkovPolicy(
            generator, per_session, workflow_type=workflow_type, seed=seed
        )
    if name == "uncertainty":
        if generator is None:
            raise WorkflowError("uncertainty policy requires a workflow generator")
        return UncertaintyChaserPolicy(generator, per_session, seed=seed)
    if name == "load-adaptive":
        if generator is None:
            raise WorkflowError(
                "load-adaptive policy requires a workflow generator"
            )
        return LoadAdaptivePolicy(
            generator, per_session, workflow_type=workflow_type, seed=seed
        )
    raise WorkflowError(
        f"unknown policy {name!r} (choose from: {', '.join(POLICY_NAMES)})"
    )


def interaction_mix(counts: Dict[str, int]) -> Dict[str, float]:
    """Normalize per-kind interaction counts into fractions (sum 1.0).

    The ``bench-adaptive`` report compares these mixes across policies —
    the acceptance check that adaptive users behave *measurably*
    differently from replayed ones.
    """
    total = sum(counts.values())
    if total == 0:
        return {}
    return {kind: counts[kind] / total for kind in sorted(counts)}


def mix_distance(a: Dict[str, float], b: Dict[str, float]) -> float:
    """Total-variation distance between two interaction mixes (0..1)."""
    kinds = set(a) | set(b)
    return 0.5 * sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in kinds)
