"""Markov-chain machinery for the workload generator.

§4.3: *"The workflow generator models workflows as Markov Chains with
pre-defined (and customizable) probability distributions for each of the
workflow types to sample a sequence of interactions and filter/selection
criteria."*

:class:`MarkovChain` is a small, validated implementation over string
states. Workflow-type samplers define one chain each over abstract
*actions* (create, extend, filter, select, …) and then materialize each
sampled action into a concrete interaction (see
:mod:`repro.workflow.generator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple

import numpy as np

from repro.common.errors import WorkflowError


@dataclass(frozen=True)
class MarkovChain:
    """A finite Markov chain over string states.

    ``transitions[s]`` maps successor states to non-negative weights;
    weights are normalized at construction, so callers may specify
    relative odds. Every state must have at least one outgoing edge
    (workflow chains run for a fixed number of steps, not to absorption).
    """

    states: Tuple[str, ...]
    transitions: Mapping[str, Mapping[str, float]]
    initial: str

    def __post_init__(self):
        if not self.states:
            raise WorkflowError("Markov chain needs at least one state")
        if len(set(self.states)) != len(self.states):
            raise WorkflowError(f"duplicate states: {self.states}")
        state_set = set(self.states)
        if self.initial not in state_set:
            raise WorkflowError(f"initial state {self.initial!r} unknown")
        for state in self.states:
            row = self.transitions.get(state)
            if not row:
                raise WorkflowError(f"state {state!r} has no outgoing transitions")
            for successor, weight in row.items():
                if successor not in state_set:
                    raise WorkflowError(
                        f"transition {state!r} → {successor!r} targets unknown state"
                    )
                if weight < 0:
                    raise WorkflowError(
                        f"negative weight on {state!r} → {successor!r}"
                    )
            if sum(row.values()) <= 0:
                raise WorkflowError(f"state {state!r} has all-zero weights")

    def normalized_row(self, state: str) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Successors and their normalized probabilities, sorted by name."""
        row = self.transitions[state]
        successors = tuple(sorted(row))
        weights = np.array([row[s] for s in successors], dtype=np.float64)
        return successors, weights / weights.sum()

    def step(self, state: str, rng: np.random.Generator) -> str:
        """Sample the successor of ``state``."""
        if state not in self.transitions:
            raise WorkflowError(f"unknown state {state!r}")
        successors, probs = self.normalized_row(state)
        return str(rng.choice(successors, p=probs))

    def walk(self, length: int, rng: np.random.Generator) -> List[str]:
        """Sample a state sequence of ``length`` starting at ``initial``."""
        if length < 1:
            raise WorkflowError(f"walk length must be >= 1, got {length}")
        sequence = [self.initial]
        while len(sequence) < length:
            sequence.append(self.step(sequence[-1], rng))
        return sequence

    def iter_walk(self, rng: np.random.Generator) -> Iterator[str]:
        """Infinite lazy walk (callers impose their own stopping rule)."""
        state = self.initial
        yield state
        while True:
            state = self.step(state, rng)
            yield state

    def stationary_distribution(self) -> Dict[str, float]:
        """Stationary distribution (power iteration; analysis helper)."""
        index = {state: i for i, state in enumerate(self.states)}
        matrix = np.zeros((len(self.states), len(self.states)))
        for state in self.states:
            successors, probs = self.normalized_row(state)
            for successor, p in zip(successors, probs):
                matrix[index[state], index[successor]] = p
        distribution = np.full(len(self.states), 1.0 / len(self.states))
        for _ in range(10_000):
            updated = distribution @ matrix
            if np.max(np.abs(updated - distribution)) < 1e-12:
                distribution = updated
                break
            distribution = updated
        return {state: float(distribution[index[state]]) for state in self.states}
