"""The ``repro connect --repl`` interactive shell.

A minimal IDE stand-in: it attaches to a running
:class:`~repro.net.server.TcpSessionServer` as a *client-driven* session
and lets a human (or a scripted stdin) queue workflow interactions, send
them over the wire one at a time, and watch the metric records stream
back — the §3 interactive loop, with a real network hop in the middle.

I/O is injected (``input_fn``/``output_fn``) so the shell is fully
testable without a TTY. Commands::

    help                 show this command list
    load <workflow.json> queue a workflow file's interactions
    send [n]             send the next n queued interactions (default 1)
    all                  send every queued interaction
    records              show every record received so far
    status               queued / sent / received counters
    detach               end the session, print the summary, exit
    quit                 alias for detach

Received records print in the same ``[time] session qN viz: status``
shape as ``repro serve --follow``, so the live view reads identically
in-process and over TCP.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.bench.driver import QueryRecord
from repro.common.errors import BenchmarkError, ProtocolError
from repro.common.log import get_logger
from repro.net.client import NetClient
from repro.net.protocol import Detach, Progress, Record
from repro.workflow.spec import Interaction, Workflow

_log = get_logger("net.repl")

#: Longest drain wait after sending interactions (seconds).
DRAIN_TIMEOUT = 0.25


class Repl:
    """Interactive client-driven session over one :class:`NetClient`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        workflow_type: str = "custom",
        input_fn: Optional[Callable[[str], str]] = None,
        output_fn: Optional[Callable[[str], None]] = None,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.name = name
        self.workflow_type = workflow_type
        # Late binding: resolve builtins at call time so a monkeypatched
        # stdin (tests, scripted sessions) is honored.
        self._input = input_fn or (lambda prompt: input(prompt))
        self._print = output_fn or (lambda text: print(text))
        self._timeout = timeout
        self._queue: List[Interaction] = []
        self._sent = 0
        self.records: List[QueryRecord] = []

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Connect, serve the command loop, return a process exit code."""
        with NetClient(self.host, self.port, timeout=self._timeout) as client:
            hello = client.hello()
            progress = client.attach_client(
                name=self.name, workflow_type=self.workflow_type
            )
            session_id = getattr(progress, "session_id", "?")
            self._print(
                f"connected to {hello.software} at {self.host}:{self.port} "
                f"(engine {hello.engine}) as session {session_id!r}"
            )
            self._print("type 'help' for commands")
            try:
                return self._loop(client, session_id)
            except KeyboardInterrupt:
                # An interactive quit is a *session end*, not a network
                # failure: send a clean DETACH (best-effort) so the
                # server drains the deadline tail and answers with a
                # normal zero-or-partial summary, instead of logging the
                # socket close as a mid-run disconnect/abandonment.
                self._print("interrupted — detaching")
                try:
                    return self._cmd_detach(client, session_id)
                except (ProtocolError, BenchmarkError, OSError) as error:
                    _log.warning("detach failed", error=str(error))
                    self._print(f"detach failed: {error}")
                    return 1
            except (ProtocolError, BenchmarkError) as error:
                _log.warning("session error", error=str(error))
                self._print(f"error: {error}")
                return 1

    def _loop(self, client: NetClient, session_id: str) -> int:
        while True:
            try:
                line = self._input("repro> ")
            except EOFError:
                line = "detach"
            parts = line.strip().split()
            if not parts:
                continue
            command, args = parts[0], parts[1:]
            if command == "help":
                self._print(__doc__.split("Commands::", 1)[1].split("\n\n")[1])
            elif command == "load":
                self._cmd_load(args)
            elif command == "send":
                self._cmd_send(client, args)
            elif command == "all":
                self._cmd_send(client, [str(len(self._queue))])
            elif command == "records":
                self._absorb(client.drain(DRAIN_TIMEOUT))
                self._show_records()
            elif command == "status":
                self._print(
                    f"queued {len(self._queue)}, sent {self._sent}, "
                    f"received {len(self.records)} records"
                )
            elif command in ("detach", "quit"):
                return self._cmd_detach(client, session_id)
            else:
                self._print(f"unknown command {command!r} (try 'help')")

    # ------------------------------------------------------------------
    def _cmd_load(self, args: List[str]) -> None:
        if len(args) != 1:
            self._print("usage: load <workflow.json>")
            return
        try:
            workflow = Workflow.from_json(args[0])
        except (OSError, ValueError, BenchmarkError) as error:
            self._print(f"cannot load {args[0]}: {error}")
            return
        self._queue.extend(workflow.interactions)
        self._print(
            f"queued {len(workflow.interactions)} interactions from "
            f"{workflow.name!r} ({len(self._queue)} total)"
        )

    def _cmd_send(self, client: NetClient, args: List[str]) -> None:
        count = 1
        if args:
            try:
                count = int(args[0])
            except ValueError:
                self._print("usage: send [n]")
                return
        if not self._queue:
            self._print("nothing queued (use 'load <workflow.json>')")
            return
        count = max(0, min(count, len(self._queue)))
        for _ in range(count):
            client.send_interaction(self._queue.pop(0))
            self._sent += 1
        self._absorb(client.drain(DRAIN_TIMEOUT))
        self._print(
            f"sent {count} ({len(self._queue)} queued, "
            f"{len(self.records)} records so far)"
        )

    def _cmd_detach(self, client: NetClient, session_id: str) -> int:
        client.detach()
        records, summary = client.collect()
        self.records.extend(records)
        self._show_records()
        self._print(
            f"session {summary.session_id or session_id} done: "
            f"{summary.queries} queries, makespan {summary.makespan:.2f}s"
        )
        return 0

    # ------------------------------------------------------------------
    def _absorb(self, messages) -> None:
        for message in messages:
            if isinstance(message, Record):
                self.records.append(message.record)
            elif isinstance(message, (Progress, Detach)):
                pass  # lifecycle chatter; summaries print on detach

    def _show_records(self) -> None:
        if not self.records:
            self._print("no records yet")
            return
        for record in self.records:
            status = "VIOLATED" if record.tr_violated else "ok"
            self._print(
                f"  [{record.end_time:8.2f}s] q{record.query_id} "
                f"{record.viz_name}: {status}"
            )
