"""``repro top`` — a live terminal view of a serving run's telemetry.

Subscribes to a shared-engine server's streaming telemetry
(STATS_SUBSCRIBE, :mod:`repro.net.protocol`) and renders each pushed
virtual-time window as one dashboard line — active sessions, records/s
(the paper's §4.7 throughput axis), TR-violation rate, queue depth,
kernel-cache hit rate — plus any SLO alerts the window raised.

Two-axis discipline, same as everywhere else in the observability layer:
the *payloads* are virtual-axis data and byte-deterministic, while the
*rendering cadence* is a wall-clock courtesy to the terminal —
:class:`TopView` drops intermediate frames when they arrive faster than
``interval`` wall seconds (clocked via
:func:`repro.common.clock.perf_seconds`, so tests swap in a fake clock
and never sleep). Alert frames and the final frame always render.
"""

from __future__ import annotations

import sys
from typing import Callable, List, Optional

from repro.common.clock import perf_seconds
from repro.net.client import DEFAULT_TIMEOUT, NetClient

_HEADER = (
    "     vt  active  rec/s   %viol  q-depth  cache-hit  alerts"
)


def format_window(window: dict, alerts=()) -> str:
    """One deterministic dashboard line for a flushed window."""
    flags = ",".join(str(alert.get("rule", "?")) for alert in alerts)
    return (
        f"{window.get('vt_end', 0.0):7.1f}"
        f"  {window.get('active_sessions', 0):6d}"
        f"  {window.get('records_per_s', 0.0):5.1f}"
        f"  {window.get('pct_tr_violated', 0.0):6.1f}"
        f"  {window.get('queue_depth', 0):7d}"
        f"  {window.get('kernel_hit_rate', 0.0):9.2f}"
        f"  {flags or '-'}"
    )


class TopView:
    """Rate-limited renderer for the pushed window stream.

    ``out`` and ``clock`` are injectable for tests. A frame renders when
    it is the first one, raises an alert, or arrives at least
    ``interval`` wall seconds after the last rendered frame; dropped
    frames are counted so :meth:`close` can say what the terminal never
    saw. Rendering never alters the stream — the payload bytes stay the
    deterministic ones the server pushed.
    """

    def __init__(
        self,
        *,
        interval: float = 1.0,
        out=None,
        clock: Callable[[], float] = perf_seconds,
    ):
        self.interval = interval
        self.rendered = 0
        self.dropped = 0
        self.alerts_seen = 0
        self._last: Optional[dict] = None
        self._last_emit: Optional[float] = None
        self._out = out
        self._clock = clock

    def _emit(self, line: str) -> None:
        out = self._out if self._out is not None else sys.stdout
        print(line, file=out, flush=True)

    def observe(self, window: dict, alerts=()) -> bool:
        """Feed one pushed window; returns True if it rendered."""
        self.alerts_seen += len(alerts)
        self._last = window
        now = self._clock()
        throttled = (
            not alerts
            and self._last_emit is not None
            and now - self._last_emit < self.interval
        )
        if throttled:
            self.dropped += 1
            return False
        if self.rendered == 0:
            self._emit(_HEADER)
        self._last_emit = now
        self.rendered += 1
        self._emit(format_window(window, alerts))
        return True

    def close(self) -> None:
        """Final render: the last window always reaches the terminal."""
        if self._last is not None and self.dropped:
            self._emit(format_window(self._last))
            self.rendered += 1
        self._emit(
            f"-- stream ended: {self.rendered} rendered, "
            f"{self.dropped} dropped, {self.alerts_seen} alerts --"
        )


def run_top(
    host: str,
    port: int,
    *,
    interval: float = 1.0,
    timeout: float = DEFAULT_TIMEOUT,
    out=None,
    clock: Callable[[], float] = perf_seconds,
) -> List[dict]:
    """Subscribe to ``host:port`` and render the stream until it ends.

    Returns the full list of window dicts received (every pushed frame,
    rendered or not) so callers — and tests — can compare the payloads
    against an in-process series byte-for-byte.
    """
    view = TopView(interval=interval, out=out, clock=clock)
    windows: List[dict] = []
    with NetClient(host, port, timeout=timeout) as client:
        client.hello()
        client.subscribe_stats()
        try:
            for push in client.iter_stats():
                windows.append(push.window)
                view.observe(push.window, push.alerts)
        finally:
            view.close()
    return windows
