"""The versioned wire protocol of the network front-end.

What crosses the wire is exactly the paper's vocabulary: §4.3
interactions and visualizations outbound, §4.7-metric records inbound,
under the §3 interactive session lifecycle.

Frames
------
A frame is a 4-byte big-endian unsigned body length followed by a UTF-8
JSON object (the *body*). Bodies are encoded canonically — sorted keys,
minimal separators — so a message's bytes are a pure function of its
content, which is what lets the golden transcript in ``tests/golden/``
pin an entire server→client session byte-for-byte. Bodies above
:data:`MAX_FRAME_BYTES` are rejected on both ends (a malformed or
malicious length prefix must not allocate unbounded memory).

Messages
--------
Every body carries ``{"v": PROTOCOL_VERSION, "type": <tag>, ...}``. The
typed catalog (one dataclass per tag) mirrors the session lifecycle:

==============  ======================================================
``hello``       version/role handshake; both sides send one first
``attach``      client joins as a session: ``scripted`` (server-side
                suite or policy) or ``client`` (frontend-driven)
``submit_viz``  client-driven: create a visualization (a
                :class:`~repro.workflow.spec.VizSpec` payload)
``interact``    client-driven: any §4.3 interaction
``record``      server → client: one evaluated
                :class:`~repro.bench.driver.QueryRecord`
``progress``    server → client: lifecycle events (attached, workflow
                transitions)
``detach``      client → server: end the session (the deadline tail
                still drains); server → client: final summary
``error``       protocol violation or session failure; sender closes
==============  ======================================================

Payloads reuse the existing ``to_dict``/``from_dict`` machinery of
:mod:`repro.workflow.spec` for visualizations and interactions, and
:func:`record_to_dict`/:func:`record_from_dict` (defined here) for
metric records, so everything that crosses the wire round-trips through
exactly the serialization the on-disk formats already trust. JSON floats
round-trip exactly (``repr``-based encoding), including the NaN values a
TR-violated record carries — byte-identical reports on the far side are
therefore possible, and ``tests/test_net_protocol.py`` fuzzes the
encode→decode→encode fixpoint to keep it that way.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.bench.driver import QueryRecord
from repro.bench.metrics import QueryMetrics
from repro.common.errors import ProtocolError, WorkflowError
from repro.workflow.spec import Interaction, VizSpec

#: Version tag carried in every message; bumped on incompatible change.
PROTOCOL_VERSION = 1

#: Hard cap on a frame body (decoded JSON text), both directions.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: The 4-byte big-endian unsigned length prefix.
_HEADER = struct.Struct(">I")


# ----------------------------------------------------------------------
# Record serialization (QueryRecord + QueryMetrics round trip)
# ----------------------------------------------------------------------

#: QueryMetrics fields, in dataclass order (all JSON-primitive).
_METRIC_FIELDS = (
    "tr_violated",
    "bins_delivered",
    "bins_in_gt",
    "missing_bins",
    "rel_error_avg",
    "rel_error_stdev",
    "smape",
    "cosine_distance",
    "margin_avg",
    "margin_stdev",
    "bins_out_of_margin",
    "bias",
)

#: QueryRecord fields except ``metrics`` (all JSON-primitive).
_RECORD_FIELDS = (
    "query_id",
    "interaction_id",
    "viz_name",
    "driver",
    "data_size",
    "think_time",
    "time_requirement",
    "workflow",
    "workflow_type",
    "start_time",
    "end_time",
    "bin_dims",
    "binning_type",
    "agg_type",
    "rows_processed",
    "fraction",
    "num_concurrent",
    "qualifying_fraction",
)


def record_to_dict(record: QueryRecord) -> dict:
    """One detailed-report row as a plain dict (Table-1 fidelity)."""
    data = {name: getattr(record, name) for name in _RECORD_FIELDS}
    data["metrics"] = {
        name: getattr(record.metrics, name) for name in _METRIC_FIELDS
    }
    return data


def record_from_dict(data: dict) -> QueryRecord:
    """Rebuild the exact :class:`QueryRecord` a server evaluated."""
    try:
        metrics = QueryMetrics(
            **{name: data["metrics"][name] for name in _METRIC_FIELDS}
        )
        return QueryRecord(
            metrics=metrics,
            **{name: data[name] for name in _RECORD_FIELDS},
        )
    except (KeyError, TypeError) as error:
        raise ProtocolError(f"malformed record payload: {error}") from error


# ----------------------------------------------------------------------
# Message catalog
# ----------------------------------------------------------------------

class Message:
    """Base of all wire messages; subclasses set :attr:`TYPE`."""

    TYPE: str = ""

    def to_payload(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: dict) -> "Message":
        raise NotImplementedError


@dataclass(frozen=True)
class Hello(Message):
    """Handshake: each side announces its protocol version and role."""

    version: int = PROTOCOL_VERSION
    role: str = "client"  # "client" | "server"
    software: str = "idebench-repro"
    engine: Optional[str] = None  # server → client: engine being served

    TYPE = "hello"

    def to_payload(self) -> dict:
        return {
            "version": self.version,
            "role": self.role,
            "software": self.software,
            "engine": self.engine,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Hello":
        return cls(
            version=int(payload["version"]),
            role=payload["role"],
            software=payload.get("software", ""),
            engine=payload.get("engine"),
        )


#: Session modes a client may attach in.
ATTACH_MODES = ("scripted", "client")


@dataclass(frozen=True)
class Attach(Message):
    """Join the server as one session.

    ``scripted`` mode runs server-side: session ``session_index``'s
    seeded workflow suite (or, with ``policy`` set, its adaptive policy)
    exactly as ``repro serve`` would — which is what makes the scripted
    TCP report byte-identical to the in-process one. ``client`` mode
    turns the connection into the interaction source: the server stalls
    on the think-time grid until the frontend sends SUBMIT_VIZ/INTERACT
    frames.
    """

    mode: str = "scripted"
    session_index: int = 0
    per_session: int = 1
    workflow_type: str = "mixed"
    policy: Optional[str] = None
    accel: Optional[float] = None
    name: Optional[str] = None  # client mode: session id override

    TYPE = "attach"

    def __post_init__(self):
        if self.mode not in ATTACH_MODES:
            raise ProtocolError(
                f"unknown attach mode {self.mode!r} "
                f"(choose from: {', '.join(ATTACH_MODES)})"
            )
        if self.mode == "client" and self.policy is not None:
            raise ProtocolError(
                "client-driven sessions are their own interaction source; "
                "policy= applies to scripted mode only"
            )

    def to_payload(self) -> dict:
        return {
            "mode": self.mode,
            "session_index": self.session_index,
            "per_session": self.per_session,
            "workflow_type": self.workflow_type,
            "policy": self.policy,
            "accel": self.accel,
            "name": self.name,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Attach":
        return cls(
            mode=payload.get("mode", "scripted"),
            session_index=int(payload.get("session_index", 0)),
            per_session=int(payload.get("per_session", 1)),
            workflow_type=payload.get("workflow_type", "mixed"),
            policy=payload.get("policy"),
            accel=payload.get("accel"),
            name=payload.get("name"),
        )


@dataclass(frozen=True)
class SubmitViz(Message):
    """Client-driven: create a visualization (sugar for INTERACT)."""

    viz: VizSpec

    TYPE = "submit_viz"

    def to_payload(self) -> dict:
        return {"viz": self.viz.to_dict()}

    @classmethod
    def from_payload(cls, payload: dict) -> "SubmitViz":
        try:
            return cls(viz=VizSpec.from_dict(payload["viz"]))
        except (KeyError, TypeError, WorkflowError) as error:
            raise ProtocolError(f"malformed viz payload: {error}") from error


@dataclass(frozen=True)
class Interact(Message):
    """Client-driven: one §4.3 interaction (the on-disk dict format)."""

    interaction: Interaction

    TYPE = "interact"

    def to_payload(self) -> dict:
        return {"interaction": self.interaction.to_dict()}

    @classmethod
    def from_payload(cls, payload: dict) -> "Interact":
        try:
            return cls(interaction=Interaction.from_dict(payload["interaction"]))
        except (KeyError, TypeError, WorkflowError) as error:
            raise ProtocolError(
                f"malformed interaction payload: {error}"
            ) from error


@dataclass(frozen=True)
class Record(Message):
    """Server → client: one evaluated query record, in deadline order."""

    session_id: str
    seq: int
    record: QueryRecord

    TYPE = "record"

    def to_payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "seq": self.seq,
            "record": record_to_dict(self.record),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Record":
        try:
            return cls(
                session_id=payload["session_id"],
                seq=int(payload["seq"]),
                record=record_from_dict(payload["record"]),
            )
        except KeyError as error:
            raise ProtocolError(f"malformed record frame: {error}") from error


@dataclass(frozen=True)
class Progress(Message):
    """Server → client: session lifecycle events.

    ``event`` is ``attached`` (session accepted; payload names the
    session id, mode and engine) or ``workflow`` (a workflow boundary;
    payload carries the new workflow index).
    """

    session_id: str
    event: str
    payload: dict

    TYPE = "progress"

    def to_payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "event": self.event,
            "payload": self.payload,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Progress":
        try:
            return cls(
                session_id=payload["session_id"],
                event=payload["event"],
                payload=dict(payload.get("payload", {})),
            )
        except KeyError as error:
            raise ProtocolError(f"malformed progress frame: {error}") from error


@dataclass(frozen=True)
class Detach(Message):
    """Session end.

    Client → server: "no more interactions" (fields unset; the deadline
    tail still drains and its records still stream). Server → client:
    the final summary — record count and virtual makespan.
    """

    session_id: Optional[str] = None
    queries: Optional[int] = None
    makespan: Optional[float] = None

    TYPE = "detach"

    def to_payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "queries": self.queries,
            "makespan": self.makespan,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Detach":
        return cls(
            session_id=payload.get("session_id"),
            queries=payload.get("queries"),
            makespan=payload.get("makespan"),
        )


@dataclass(frozen=True)
class ErrorMessage(Message):
    """A protocol violation or session failure; the sender closes."""

    code: str
    message: str

    TYPE = "error"

    def to_payload(self) -> dict:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_payload(cls, payload: dict) -> "ErrorMessage":
        return cls(
            code=payload.get("code", "error"),
            message=payload.get("message", ""),
        )


#: Tag → message class; the complete catalog.
MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.TYPE: cls
    for cls in (
        Hello,
        Attach,
        SubmitViz,
        Interact,
        Record,
        Progress,
        Detach,
        ErrorMessage,
    )
}


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------

def encode_body(message: Message) -> bytes:
    """The canonical JSON body of ``message`` (no length prefix).

    Canonical means sorted keys and minimal separators: the bytes are a
    pure function of the message content, which the golden transcript
    test relies on. ``allow_nan`` stays on — TR-violated records carry
    NaN metrics and must cross the wire unchanged.
    """
    body = {"v": PROTOCOL_VERSION, "type": message.TYPE}
    body.update(message.to_payload())
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=True
    ).encode("utf-8")


def encode_message(message: Message) -> bytes:
    """``message`` as a complete frame (length prefix + canonical body)."""
    body = encode_body(message)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Message:
    """Parse one frame body back into its typed message."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    return decode_message(data)


def decode_message(data: object) -> Message:
    """Parse a decoded JSON body (a dict) into its typed message."""
    if not isinstance(data, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    tag = data.get("type")
    message_cls = MESSAGE_TYPES.get(tag)
    if message_cls is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    return message_cls.from_payload(data)


def split_frame(buffer: bytes) -> Optional[tuple]:
    """Split ``(body, rest)`` off a byte buffer, or None if incomplete.

    The incremental decoder for blocking sockets: feed accumulated bytes,
    get back the first complete frame body and the unconsumed remainder.
    Raises :class:`ProtocolError` on an oversized length prefix.
    """
    if len(buffer) < _HEADER.size:
        return None
    (length,) = _HEADER.unpack_from(buffer)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    end = _HEADER.size + length
    if len(buffer) < end:
        return None
    return buffer[_HEADER.size:end], buffer[end:]


async def read_frame_async(reader) -> bytes:
    """Read one frame body from an :class:`asyncio.StreamReader`.

    Raises :class:`asyncio.IncompleteReadError` on EOF mid-frame and
    :class:`ProtocolError` on an oversized length prefix.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return await reader.readexactly(length)


async def read_message_async(reader) -> Message:
    """Read and decode one typed message from a stream reader."""
    return decode_body(await read_frame_async(reader))
