"""The versioned wire protocol of the network front-end.

What crosses the wire is exactly the paper's vocabulary: §4.3
interactions and visualizations outbound, §4.7-metric records inbound,
under the §3 interactive session lifecycle.

Frames
------
A frame is a 4-byte big-endian unsigned body length followed by a UTF-8
JSON object (the *body*). Bodies are encoded canonically — sorted keys,
minimal separators — so a message's bytes are a pure function of its
content, which is what lets the golden transcript in ``tests/golden/``
pin an entire server→client session byte-for-byte. Bodies above
:data:`MAX_FRAME_BYTES` are rejected on both ends (a malformed or
malicious length prefix must not allocate unbounded memory).

Messages
--------
Every body carries ``{"v": PROTOCOL_VERSION, "type": <tag>, ...}``. The
typed catalog (one dataclass per tag) mirrors the session lifecycle:

==============  ======================================================
``hello``       version/role/capability handshake; both sides send one
                first. Decodes across protocol versions so a mismatch
                can be answered with a typed ``error`` frame.
``attach``      client joins as a session: ``scripted`` (server-side
                suite or policy) or ``client`` (frontend-driven)
``submit_viz``  client-driven: create a visualization (a
                :class:`~repro.workflow.spec.VizSpec` payload)
``interact``    client-driven: any §4.3 interaction
``record``      server → client: one evaluated
                :class:`~repro.bench.driver.QueryRecord`
``progress``    server → client: lifecycle events (attached, workflow
                transitions)
``barrier``     server → client (shared-engine serving): all expected
                sessions have attached; the shared run starts now
``turn_grant``  server → client (shared-engine serving): this session
                won the global virtual timeline and is stepping
``turn_done``   client → server: acknowledge a grant, releasing the
                shared timeline for the next globally minimal event
``detach``      client → server: end the session (the deadline tail
                still drains); server → client: final summary
``stats_request``  client → server (instead of ``attach``): ask for the
                server's live observability snapshot
``stats``       server → client: the snapshot — metrics registry
                (counters/gauges/histograms) plus per-stage wall-time
                profile, as produced by :func:`repro.obs.stats_payload`
``stats_subscribe``  client → server (instead of ``attach``): stream the
                windowed virtual-time series; like ``stats_request`` the
                probe never joins the timeline. Requires the server's
                streaming telemetry to be enabled (``--stats-window``)
``stats_push``  server → client: one flushed telemetry window
                (:mod:`repro.obs.timeseries` fields) plus any SLO alerts
                it raised; a final frame (``final=true``, no window)
                marks the end of the run's stream. Entirely virtual-axis
                data — pushed bytes are deterministic
``stats_unsubscribe``  client → server: stop the stream early; the
                server confirms with a final ``stats_push`` and closes
``error``       protocol violation or session failure; sender closes.
                Decodes across protocol versions; a version-mismatch
                error carries ``data.supported_versions``.
==============  ======================================================

Payloads reuse the existing ``to_dict``/``from_dict`` machinery of
:mod:`repro.workflow.spec` for visualizations and interactions, and
:func:`record_to_dict`/:func:`record_from_dict` (defined here) for
metric records, so everything that crosses the wire round-trips through
exactly the serialization the on-disk formats already trust. JSON floats
round-trip exactly (``repr``-based encoding), including the NaN values a
TR-violated record carries — byte-identical reports on the far side are
therefore possible, and ``tests/test_net_protocol.py`` fuzzes the
encode→decode→encode fixpoint to keep it that way.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.bench.driver import QueryRecord
from repro.bench.metrics import QueryMetrics
from repro.common.errors import ProtocolError, WorkflowError
from repro.workflow.spec import Interaction, VizSpec

#: Version tag carried in every message; bumped on incompatible change.
#: v2 added the shared-engine turn protocol (BARRIER/TURN_GRANT/TURN_DONE),
#: HELLO capability negotiation, and typed version-mismatch errors.
PROTOCOL_VERSION = 2

#: Versions this side can speak. A peer announcing anything else gets a
#: typed ERROR frame carrying this tuple (see :func:`version_error`).
SUPPORTED_VERSIONS = (2,)

#: Message tags that decode regardless of the frame's version tag, so
#: mismatched peers can still exchange a handshake and a typed error
#: instead of failing with a generic decode exception.
VERSION_EXEMPT_TYPES = frozenset({"hello", "error"})

#: HELLO capability advertised by servers that grant wire-level step
#: turns (shared-engine serving over TCP).
CAP_SHARED_ENGINE = "shared-engine"

#: Hard cap on a frame body (decoded JSON text), both directions.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: The 4-byte big-endian unsigned length prefix.
_HEADER = struct.Struct(">I")


# ----------------------------------------------------------------------
# Record serialization (QueryRecord + QueryMetrics round trip)
# ----------------------------------------------------------------------

#: QueryMetrics fields, in dataclass order (all JSON-primitive).
_METRIC_FIELDS = (
    "tr_violated",
    "bins_delivered",
    "bins_in_gt",
    "missing_bins",
    "rel_error_avg",
    "rel_error_stdev",
    "smape",
    "cosine_distance",
    "margin_avg",
    "margin_stdev",
    "bins_out_of_margin",
    "bias",
)

#: QueryRecord fields except ``metrics`` (all JSON-primitive).
_RECORD_FIELDS = (
    "query_id",
    "interaction_id",
    "viz_name",
    "driver",
    "data_size",
    "think_time",
    "time_requirement",
    "workflow",
    "workflow_type",
    "start_time",
    "end_time",
    "bin_dims",
    "binning_type",
    "agg_type",
    "rows_processed",
    "fraction",
    "num_concurrent",
    "qualifying_fraction",
)


def record_to_dict(record: QueryRecord) -> dict:
    """One detailed-report row as a plain dict (Table-1 fidelity)."""
    data = {name: getattr(record, name) for name in _RECORD_FIELDS}
    data["metrics"] = {
        name: getattr(record.metrics, name) for name in _METRIC_FIELDS
    }
    return data


def record_from_dict(data: dict) -> QueryRecord:
    """Rebuild the exact :class:`QueryRecord` a server evaluated."""
    try:
        metrics = QueryMetrics(
            **{name: data["metrics"][name] for name in _METRIC_FIELDS}
        )
        return QueryRecord(
            metrics=metrics,
            **{name: data[name] for name in _RECORD_FIELDS},
        )
    except (KeyError, TypeError) as error:
        raise ProtocolError(f"malformed record payload: {error}") from error


# ----------------------------------------------------------------------
# Message catalog
# ----------------------------------------------------------------------

class Message:
    """Base of all wire messages; subclasses set :attr:`TYPE`."""

    TYPE: str = ""

    def to_payload(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: dict) -> "Message":
        raise NotImplementedError


@dataclass(frozen=True)
class Hello(Message):
    """Handshake: each side announces version, role and capabilities.

    ``capabilities`` is the v2 negotiation hook: the server advertises
    optional serving modes (currently :data:`CAP_SHARED_ENGINE` when it
    grants wire-level step turns) so clients can fail fast instead of
    discovering an unsupported mode mid-session. v1 peers never sent the
    field; it decodes as an empty tuple.
    """

    version: int = PROTOCOL_VERSION
    role: str = "client"  # "client" | "server"
    software: str = "idebench-repro"
    engine: Optional[str] = None  # server → client: engine being served
    capabilities: Tuple[str, ...] = ()
    #: Cross-host trace correlation (optional): the server's HELLO names
    #: the run (``run``, a stable digest of its configuration) and each
    #: side may name itself (``host``). Clients stamp both onto their
    #: trace entries so ``repro trace merge`` can stitch per-host files
    #: into one timeline. Empty strings are omitted from the payload —
    #: handshake bytes without correlation are unchanged from v2.0.
    run: str = ""
    host: str = ""

    TYPE = "hello"

    def to_payload(self) -> dict:
        payload = {
            "version": self.version,
            "role": self.role,
            "software": self.software,
            "engine": self.engine,
            "capabilities": list(self.capabilities),
        }
        if self.run:
            payload["run"] = self.run
        if self.host:
            payload["host"] = self.host
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Hello":
        try:
            # Fall back to the frame's version tag so a bare cross-version
            # hello (no explicit "version" field) still reports what the
            # peer speaks instead of failing the handshake with a KeyError.
            version = payload.get("version", payload.get("v"))
            return cls(
                version=int(version) if version is not None else 0,
                role=payload["role"],
                software=payload.get("software", ""),
                engine=payload.get("engine"),
                capabilities=tuple(payload.get("capabilities") or ()),
                run=str(payload.get("run", "") or ""),
                host=str(payload.get("host", "") or ""),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"malformed hello payload: {error}") from error


#: Session modes a client may attach in.
ATTACH_MODES = ("scripted", "client")


@dataclass(frozen=True)
class Attach(Message):
    """Join the server as one session.

    ``scripted`` mode runs server-side: session ``session_index``'s
    seeded workflow suite (or, with ``policy`` set, its adaptive policy)
    exactly as ``repro serve`` would — which is what makes the scripted
    TCP report byte-identical to the in-process one. ``client`` mode
    turns the connection into the interaction source: the server stalls
    on the think-time grid until the frontend sends SUBMIT_VIZ/INTERACT
    frames.
    """

    mode: str = "scripted"
    session_index: int = 0
    per_session: int = 1
    workflow_type: str = "mixed"
    policy: Optional[str] = None
    accel: Optional[float] = None
    name: Optional[str] = None  # client mode: session id override

    TYPE = "attach"

    def __post_init__(self):
        if self.mode not in ATTACH_MODES:
            raise ProtocolError(
                f"unknown attach mode {self.mode!r} "
                f"(choose from: {', '.join(ATTACH_MODES)})"
            )
        if self.mode == "client" and self.policy is not None:
            raise ProtocolError(
                "client-driven sessions are their own interaction source; "
                "policy= applies to scripted mode only"
            )

    def to_payload(self) -> dict:
        return {
            "mode": self.mode,
            "session_index": self.session_index,
            "per_session": self.per_session,
            "workflow_type": self.workflow_type,
            "policy": self.policy,
            "accel": self.accel,
            "name": self.name,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Attach":
        return cls(
            mode=payload.get("mode", "scripted"),
            session_index=int(payload.get("session_index", 0)),
            per_session=int(payload.get("per_session", 1)),
            workflow_type=payload.get("workflow_type", "mixed"),
            policy=payload.get("policy"),
            accel=payload.get("accel"),
            name=payload.get("name"),
        )


@dataclass(frozen=True)
class SubmitViz(Message):
    """Client-driven: create a visualization (sugar for INTERACT)."""

    viz: VizSpec

    TYPE = "submit_viz"

    def to_payload(self) -> dict:
        return {"viz": self.viz.to_dict()}

    @classmethod
    def from_payload(cls, payload: dict) -> "SubmitViz":
        try:
            return cls(viz=VizSpec.from_dict(payload["viz"]))
        except (KeyError, TypeError, WorkflowError) as error:
            raise ProtocolError(f"malformed viz payload: {error}") from error


@dataclass(frozen=True)
class Interact(Message):
    """Client-driven: one §4.3 interaction (the on-disk dict format)."""

    interaction: Interaction

    TYPE = "interact"

    def to_payload(self) -> dict:
        return {"interaction": self.interaction.to_dict()}

    @classmethod
    def from_payload(cls, payload: dict) -> "Interact":
        try:
            return cls(interaction=Interaction.from_dict(payload["interaction"]))
        except (KeyError, TypeError, WorkflowError) as error:
            raise ProtocolError(
                f"malformed interaction payload: {error}"
            ) from error


@dataclass(frozen=True)
class Record(Message):
    """Server → client: one evaluated query record, in deadline order."""

    session_id: str
    seq: int
    record: QueryRecord

    TYPE = "record"

    def to_payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "seq": self.seq,
            "record": record_to_dict(self.record),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Record":
        try:
            return cls(
                session_id=payload["session_id"],
                seq=int(payload["seq"]),
                record=record_from_dict(payload["record"]),
            )
        except KeyError as error:
            raise ProtocolError(f"malformed record frame: {error}") from error


@dataclass(frozen=True)
class Progress(Message):
    """Server → client: session lifecycle events.

    ``event`` is ``attached`` (session accepted; payload names the
    session id, mode and engine) or ``workflow`` (a workflow boundary;
    payload carries the new workflow index).
    """

    session_id: str
    event: str
    payload: dict

    TYPE = "progress"

    def to_payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "event": self.event,
            "payload": self.payload,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Progress":
        try:
            return cls(
                session_id=payload["session_id"],
                event=payload["event"],
                payload=dict(payload.get("payload", {})),
            )
        except KeyError as error:
            raise ProtocolError(f"malformed progress frame: {error}") from error


@dataclass(frozen=True)
class Barrier(Message):
    """Server → client (shared-engine serving): the shared run starts.

    Sent to every attached session once all ``sessions`` expected
    participants have joined; no ``turn_grant`` precedes it. The barrier
    is what lets the server register the whole population with the
    global virtual timeline *before* the first grant — the same
    all-declared-before-any-grant rule the in-process
    :class:`~repro.server.manager.SessionManager` enforces.
    """

    sessions: int
    event: str = "start"

    TYPE = "barrier"

    def to_payload(self) -> dict:
        return {"sessions": self.sessions, "event": self.event}

    @classmethod
    def from_payload(cls, payload: dict) -> "Barrier":
        try:
            return cls(
                sessions=int(payload["sessions"]),
                event=payload.get("event", "start"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"malformed barrier frame: {error}") from error


@dataclass(frozen=True)
class TurnGrant(Message):
    """Server → client (shared-engine serving): your session steps now.

    The session holding the globally minimal ``(event_time, slot)`` pair
    is granted its step; the RECORD frames that step produced follow,
    and the server then waits for the matching :class:`TurnDone` before
    declaring the session's next event. ``turn`` counts grants per
    session from 0 — the acknowledgement must echo it exactly.
    """

    session_id: str
    turn: int
    event_time: float

    TYPE = "turn_grant"

    def to_payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "turn": self.turn,
            "event_time": self.event_time,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TurnGrant":
        try:
            return cls(
                session_id=payload["session_id"],
                turn=int(payload["turn"]),
                event_time=float(payload["event_time"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"malformed turn_grant frame: {error}"
            ) from error


@dataclass(frozen=True)
class TurnDone(Message):
    """Client → server: acknowledge :class:`TurnGrant` number ``turn``.

    Releases the shared timeline: until the acknowledgement arrives, no
    session is granted another step — a slow client therefore blocks
    only *virtual* time (every session waits, order unchanged), never
    corrupts it. An out-of-order or unsolicited ``turn_done`` is a
    protocol violation and abandons the sending session.
    """

    turn: int
    session_id: Optional[str] = None

    TYPE = "turn_done"

    def to_payload(self) -> dict:
        return {"turn": self.turn, "session_id": self.session_id}

    @classmethod
    def from_payload(cls, payload: dict) -> "TurnDone":
        try:
            return cls(
                turn=int(payload["turn"]),
                session_id=payload.get("session_id"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"malformed turn_done frame: {error}"
            ) from error


@dataclass(frozen=True)
class Detach(Message):
    """Session end.

    Client → server: "no more interactions" (fields unset; the deadline
    tail still drains and its records still stream). Server → client:
    the final summary — record count and virtual makespan.
    """

    session_id: Optional[str] = None
    queries: Optional[int] = None
    makespan: Optional[float] = None

    TYPE = "detach"

    def to_payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "queries": self.queries,
            "makespan": self.makespan,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Detach":
        return cls(
            session_id=payload.get("session_id"),
            queries=payload.get("queries"),
            makespan=payload.get("makespan"),
        )


@dataclass(frozen=True)
class StatsRequest(Message):
    """Client → server: pull the live observability snapshot.

    Sent after the HELLO exchange *instead of* an ATTACH — a stats
    probe is not a session: it never joins the timeline, so probing a
    busy server cannot perturb any running session's bytes. The server
    answers with one :class:`Stats` frame and the conversation ends.
    """

    TYPE = "stats_request"

    def to_payload(self) -> dict:
        return {}

    @classmethod
    def from_payload(cls, payload: dict) -> "StatsRequest":
        return cls()


@dataclass(frozen=True)
class Stats(Message):
    """Server → client: live metrics + stage profile (``repro connect
    --stats``).

    ``data`` is :func:`repro.obs.stats_payload` output: the canonical
    metrics snapshot (``data["metrics"]``, reloadable via
    :meth:`repro.obs.MetricsRegistry.from_snapshot`) and the wall-time
    stage attribution (``data["profile"]``). Wall-time values are
    inherently nondeterministic — STATS frames are therefore never part
    of the golden transcripts.
    """

    data: dict
    sessions_served: int = 0

    TYPE = "stats"

    def to_payload(self) -> dict:
        return {"data": self.data, "sessions_served": self.sessions_served}

    @classmethod
    def from_payload(cls, payload: dict) -> "Stats":
        try:
            data = payload["data"]
            if not isinstance(data, dict):
                raise TypeError(f"stats data must be an object, got {type(data).__name__}")
            return cls(
                data=data,
                sessions_served=int(payload.get("sessions_served", 0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"malformed stats frame: {error}") from error


class StatsSubscribe(Message):
    """Client → server: stream windowed telemetry (``repro top``).

    Sent after the HELLO exchange *instead of* an ATTACH — a subscriber
    is a probe, not a session: it never joins the timeline, so watching
    a busy server cannot perturb any running session's bytes. The
    server answers with a :class:`StatsPush` per flushed virtual-time
    window (see :mod:`repro.obs.timeseries`); windows flushed before the
    subscription are replayed first, so a late subscriber still sees the
    whole deterministic stream. Requires the server's streaming
    telemetry to be enabled (``repro serve --tcp --stats-window``);
    otherwise the server answers with a typed ``error`` frame.
    """

    TYPE = "stats_subscribe"

    def to_payload(self) -> dict:
        return {}

    @classmethod
    def from_payload(cls, payload: dict) -> "StatsSubscribe":
        return cls()


@dataclass(frozen=True)
class StatsPush(Message):
    """Server → subscriber: one flushed telemetry window (+ SLO alerts).

    ``window`` is a :mod:`repro.obs.timeseries` window dict; ``alerts``
    are the typed SLO alerts that window raised (``repro.obs.slo``).
    The closing frame of a stream carries ``final=True`` and no window.
    Every field is virtual-axis data — a pushed stream's bytes are a
    pure function of the run configuration (the two-axis contract), so
    over-the-wire windows compare byte-for-byte with the in-process
    series.
    """

    seq: int
    window: Optional[dict] = None
    alerts: Tuple[dict, ...] = ()
    final: bool = False

    TYPE = "stats_push"

    def to_payload(self) -> dict:
        return {
            "seq": self.seq,
            "window": self.window,
            "alerts": list(self.alerts),
            "final": self.final,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StatsPush":
        try:
            window = payload.get("window")
            if window is not None and not isinstance(window, dict):
                raise TypeError(
                    f"stats_push window must be an object, "
                    f"got {type(window).__name__}"
                )
            alerts = payload.get("alerts") or ()
            if not all(isinstance(alert, dict) for alert in alerts):
                raise TypeError("stats_push alerts must be objects")
            return cls(
                seq=int(payload["seq"]),
                window=window,
                alerts=tuple(alerts),
                final=bool(payload.get("final", False)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"malformed stats_push frame: {error}"
            ) from error


class StatsUnsubscribe(Message):
    """Subscriber → server: stop the stream before the run ends.

    The server confirms with a final :class:`StatsPush` (``final=True``)
    and closes the connection; frames already in flight may still arrive
    first.
    """

    TYPE = "stats_unsubscribe"

    def to_payload(self) -> dict:
        return {}

    @classmethod
    def from_payload(cls, payload: dict) -> "StatsUnsubscribe":
        return cls()


@dataclass(frozen=True)
class ErrorMessage(Message):
    """A protocol violation or session failure; the sender closes.

    ``data`` carries optional machine-readable detail; a ``version``
    error (see :func:`version_error`) puts the sender's
    ``supported_versions`` there so a mismatched peer can report exactly
    what would have been accepted.
    """

    code: str
    message: str
    data: Optional[dict] = None

    TYPE = "error"

    def to_payload(self) -> dict:
        return {"code": self.code, "message": self.message, "data": self.data}

    @classmethod
    def from_payload(cls, payload: dict) -> "ErrorMessage":
        data = payload.get("data")
        return cls(
            code=payload.get("code", "error"),
            message=payload.get("message", ""),
            data=dict(data) if isinstance(data, dict) else None,
        )


def version_error(peer_version: object) -> ErrorMessage:
    """The typed ERROR frame answering an unsupported HELLO version.

    Satisfies the negotiation contract: a version mismatch is answered
    with a frame the peer can decode (``error`` is version-exempt) that
    names the versions this side accepts — never a generic decode
    failure on either end.
    """
    supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
    return ErrorMessage(
        code="version",
        message=(
            f"unsupported protocol version {peer_version!r} "
            f"(this side supports: {supported})"
        ),
        data={"supported_versions": list(SUPPORTED_VERSIONS)},
    )


#: Tag → message class; the complete catalog.
MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.TYPE: cls
    for cls in (
        Hello,
        Attach,
        SubmitViz,
        Interact,
        Record,
        Progress,
        Barrier,
        TurnGrant,
        TurnDone,
        Detach,
        StatsRequest,
        Stats,
        StatsSubscribe,
        StatsPush,
        StatsUnsubscribe,
        ErrorMessage,
    )
}


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------

def encode_body(message: Message) -> bytes:
    """The canonical JSON body of ``message`` (no length prefix).

    Canonical means sorted keys and minimal separators: the bytes are a
    pure function of the message content, which the golden transcript
    test relies on. ``allow_nan`` stays on — TR-violated records carry
    NaN metrics and must cross the wire unchanged.
    """
    body = {"v": PROTOCOL_VERSION, "type": message.TYPE}
    body.update(message.to_payload())
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=True
    ).encode("utf-8")


def encode_message(message: Message) -> bytes:
    """``message`` as a complete frame (length prefix + canonical body)."""
    body = encode_body(message)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Message:
    """Parse one frame body back into its typed message."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    return decode_message(data)


def decode_message(data: object) -> Message:
    """Parse a decoded JSON body (a dict) into its typed message."""
    if not isinstance(data, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("v")
    tag = data.get("type")
    if version not in SUPPORTED_VERSIONS and tag not in VERSION_EXEMPT_TYPES:
        # Handshake and error frames decode across versions so the
        # mismatch can be *negotiated* (typed version error, clear
        # client exception) instead of dying in the codec.
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side supports {supported}"
        )
    message_cls = MESSAGE_TYPES.get(tag)
    if message_cls is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    return message_cls.from_payload(data)


def split_frame(buffer: bytes) -> Optional[tuple]:
    """Split ``(body, rest)`` off a byte buffer, or None if incomplete.

    The incremental decoder for blocking sockets: feed accumulated bytes,
    get back the first complete frame body and the unconsumed remainder.
    Raises :class:`ProtocolError` on an oversized length prefix.
    """
    if len(buffer) < _HEADER.size:
        return None
    (length,) = _HEADER.unpack_from(buffer)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    end = _HEADER.size + length
    if len(buffer) < end:
        return None
    return buffer[_HEADER.size:end], buffer[end:]


async def read_frame_async(reader) -> bytes:
    """Read one frame body from an :class:`asyncio.StreamReader`.

    Raises :class:`asyncio.IncompleteReadError` on EOF mid-frame and
    :class:`ProtocolError` on an oversized length prefix.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return await reader.readexactly(length)


async def read_message_async(reader) -> Message:
    """Read and decode one typed message from a stream reader."""
    return decode_body(await read_frame_async(reader))
