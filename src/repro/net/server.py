"""The asyncio TCP server: real frontends driving simulated engines.

Each accepted connection becomes one simulated IDE session (§2.2's one
user). After the HELLO handshake the client ATTACHes in one of two modes:

* **scripted** — the server runs session ``session_index``'s seeded
  workflow suite (or, with ``policy`` set, its adaptive policy) through a
  :class:`~repro.bench.driver.SessionDriver` on a fresh engine over the
  shared dataset, streaming every evaluated record back as a RECORD
  frame. Because isolated serving is byte-identical to serial runs, the
  report a scripted client reassembles is **byte-identical** to the
  in-process ``repro serve`` report for the same configuration — the
  determinism guarantee extended across the wire (docs/protocol.md).
* **client** — the connection is the interaction source: SUBMIT_VIZ and
  INTERACT frames feed an
  :class:`~repro.workflow.policy.ExternalInteractionSource`, and the
  driver *stalls* on the think-time grid whenever the next interaction
  has not arrived (``driver.needs_input``). Interactions still fire at
  exact grid instants, so wall arrival time never leaks into results.

By default sessions are isolated (one engine per connection): concurrent
connections interleave freely on the event loop without affecting each
other's bytes.

**Shared-engine serving** (``share_engine=True``, ``repro serve --tcp
--share-engine``) attaches every connection to *one* shared-engine
:class:`~repro.server.manager.SessionManager` instead: the server waits
until all ``max_sessions`` expected participants have attached (each
ATTACH claims one ``session_index`` slot), broadcasts a BARRIER, and
then advances the global virtual timeline itself — each step turn is
announced to its session's frontend as a TURN_GRANT frame, the records
the step produced stream back, and the timeline is released only when
the client's TURN_DONE acknowledgement arrives. A slow (or stalled
client-driven) frontend therefore blocks only *virtual* time — every
session waits, the deterministic ``(time, slot)`` order is unchanged —
and never corrupts it; reports come out **byte-identical** to the
in-process ``repro serve --share-engine`` run of the same configuration
(docs/protocol.md's v2 contract). A frontend that disconnects while
holding the turn, times out on its acknowledgement, or violates the
turn protocol abandons exactly its own session (scheduler group swept
via ``cancel_group``), exactly like an open-system churn departure.

Wall pacing is per session (isolated mode only): an ATTACH with
``accel`` paces that session's events through an
:class:`~repro.server.clock.AsyncClock` (1.0 = real time, the original
IDEBench driver's behavior) without changing results.

:class:`ServerThread` runs a server on a background thread with its own
event loop — how the blocking client library, the benchmarks, and
``repro bench-net`` embed a loopback server in one process.
"""

from __future__ import annotations

import asyncio
import re
import threading
from typing import Dict, List, Optional, Set

from repro.bench.driver import SessionDriver
from repro.common.errors import BenchmarkError, ProtocolError
from repro.obs import stats_payload
from repro.obs.metrics import get_metrics
from repro.obs.profile import (
    STAGE_FRAME_IO,
    STAGE_TURN_GRANT,
    get_profiler,
)
from repro.obs.slo import SloWatchdog
from repro.obs.timeseries import TimeSeries, set_timeseries
from repro.server.clock import AsyncClock
from repro.server.manager import (
    SessionAbandoned,
    SessionManager,
    SessionTurnHook,
    make_session,
    shared_policy_generator,
)
from repro.server.session import SessionSpec
from repro.net.protocol import (
    CAP_SHARED_ENGINE,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Attach,
    Barrier,
    Detach,
    ErrorMessage,
    Hello,
    Interact,
    Message,
    Progress,
    Record,
    Stats,
    StatsPush,
    StatsRequest,
    StatsSubscribe,
    StatsUnsubscribe,
    SubmitViz,
    TurnDone,
    TurnGrant,
    encode_message,
    read_message_async,
    version_error,
)
from repro.workflow.policy import ExternalInteractionSource
from repro.workflow.spec import CreateViz, WorkflowType

#: Software tag announced in the server's HELLO.
SERVER_SOFTWARE = "idebench-repro"

#: Wall-clock seconds a shared-engine server waits for a client's
#: TURN_DONE (or, for a stalled client-driven session, its next
#: interaction frame) before abandoning the session. Also bounds every
#: server→client send of the turn protocol, so a client that
#: acknowledges but stops *reading* cannot jam the run once the socket
#: buffers fill.
DEFAULT_TURN_TIMEOUT = 30.0

#: Wall-clock seconds a shared-engine server waits for the whole
#: population to attach. A client that attached and died before the
#: barrier is undetectable without reading its socket (which may hold
#: legitimately pipelined frames), so an incomplete population would
#: otherwise wedge the server forever — this bound turns that into a
#: typed error on every waiting connection and a clean server exit.
DEFAULT_BARRIER_TIMEOUT = 120.0

#: Scripted shared-run slots own ids of this shape; client-driven
#: sessions may not squat on them.
_SCRIPTED_ID = re.compile(r"session-\d+")

#: Stream-queue sentinels: the run finished (drain and send the final
#: frame) vs. the subscriber asked to stop (send the final frame now).
_STREAM_END = object()
_STREAM_STOP = object()


class TcpSessionServer:
    """Serves simulated IDE sessions over length-prefixed JSON frames.

    Parameters
    ----------
    ctx:
        The :class:`~repro.bench.experiments.ExperimentContext` providing
        settings, dataset, oracle and column profiles (shared across all
        connections; engines are per-connection).
    engine_name:
        Engine simulator each session runs against.
    host, port:
        Bind address. Port ``0`` picks an ephemeral port; the bound port
        is on :attr:`port` once running (and passed to ``on_ready``).
    max_sessions:
        Stop serving after this many sessions end (``None`` = serve until
        :meth:`request_stop`). What ``repro serve --tcp --sessions N``
        uses so benchmarks and tests terminate deterministically.
        **Required** in shared mode: it is the shared run's population.
    speculation:
        Enable speculative execution on engines that support it.
    share_engine:
        Serve ONE shared-engine run instead of isolated sessions: all
        ``max_sessions`` connections contend on a single engine under
        per-session fair scheduling, paced by the wire-level turn
        protocol. ``per_session``/``workflow_type``/``policy`` then fix
        the scripted workload server-side (ATTACH frames must match),
        exactly as ``repro serve --share-engine`` would; the server
        serves this one run and stops.
    turn_timeout:
        Shared mode: wall seconds to wait for a client's TURN_DONE (or a
        stalled client-driven session's next frame) before abandoning
        it; also bounds each turn-protocol send to a non-reading peer.
    barrier_timeout:
        Shared mode: wall seconds to wait for all ``max_sessions``
        participants to attach before aborting the run with typed
        errors (an attached-then-dead client would otherwise wedge the
        barrier forever).
    stats_window:
        Enable streaming telemetry: the shared run folds a
        :class:`~repro.obs.timeseries.TimeSeries` with this virtual
        window width, and ``stats_subscribe`` probes receive one
        STATS_PUSH per flushed window (``repro top``). Shared mode only
        — windows ride the global virtual timeline. ``None`` (default)
        disables streaming; subscribers get a typed error.
    slo_rules:
        ``METRIC>THRESHOLD`` strings (:func:`repro.obs.slo.parse_rule`)
        the streaming watchdog evaluates per window; alerts ride the
        pushed frames (and the trace, when tracing is on).
    run_id:
        Optional deterministic run correlation id. When set, the
        server's HELLO carries ``run``/``host`` fields that clients
        stamp onto their trace entries (``repro trace merge``). Empty
        (default) keeps handshake bytes identical to pre-correlation
        servers.
    on_ready:
        Optional callback ``(host, port)`` invoked once listening.
    """

    def __init__(
        self,
        ctx,
        engine_name: str = "idea-sim",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: Optional[int] = None,
        speculation: bool = False,
        normalized: bool = False,
        share_engine: bool = False,
        per_session: int = 1,
        workflow_type: WorkflowType = WorkflowType.MIXED,
        policy: Optional[str] = None,
        turn_timeout: float = DEFAULT_TURN_TIMEOUT,
        barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
        stats_window: Optional[float] = None,
        slo_rules=(),
        run_id: str = "",
        on_ready=None,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise BenchmarkError(
                f"max_sessions must be >= 1 or None, got {max_sessions!r}"
            )
        self.ctx = ctx
        self.engine_name = engine_name
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.speculation = speculation
        self.normalized = normalized
        self.share_engine = share_engine
        self.per_session = per_session
        self.workflow_type = (
            workflow_type
            if isinstance(workflow_type, WorkflowType)
            else WorkflowType(workflow_type)
        )
        self.policy = policy
        if turn_timeout <= 0:
            raise BenchmarkError(
                f"turn_timeout must be positive, got {turn_timeout!r}"
            )
        if barrier_timeout <= 0:
            raise BenchmarkError(
                f"barrier_timeout must be positive, got {barrier_timeout!r}"
            )
        self.turn_timeout = turn_timeout
        self.barrier_timeout = barrier_timeout
        self.run_id = run_id
        if stats_window is not None and not share_engine:
            raise BenchmarkError(
                "streaming telemetry (stats_window) requires shared-"
                "engine serving: windows are folded on the shared run's "
                "global virtual timeline"
            )
        self._series: Optional[TimeSeries] = None
        self._watchdog: Optional[SloWatchdog] = None
        #: ``(window, alerts)`` pairs in flush order — the deterministic
        #: stream every subscriber receives (late ones replay it first).
        self._push_log: List[tuple] = []
        self._push_queues: Set[asyncio.Queue] = set()
        self._push_done = False
        if stats_window is not None:
            self._series = TimeSeries(window=stats_window)
            self._watchdog = SloWatchdog(slo_rules)
            self._series.add_listener(self._on_window)
        self.sessions_served = 0
        self._on_ready = on_ready
        self._dataset = ctx.dataset(ctx.settings.data_size, normalized)
        self._oracle = ctx.oracle(ctx.settings.data_size, normalized)
        self._client_counter = 0
        self._done: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._handlers: Set[asyncio.Task] = set()
        self._shared_run: Optional[_SharedRun] = None
        if share_engine:
            if max_sessions is None:
                raise BenchmarkError(
                    "shared-engine serving needs a fixed session count "
                    "(max_sessions): the global virtual timeline must "
                    "know its whole population before the first grant"
                )
            # One engine, one run: the population contends on it exactly
            # as the in-process shared SessionManager would arrange.
            self._shared_engine = self._make_engine()
            self._policy_generator = (
                shared_policy_generator(ctx) if policy is not None else None
            )
            self._shared_run = _SharedRun(self, max_sessions)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until ``max_sessions`` end or stop is requested.

        Returns the number of sessions served.
        """
        return asyncio.run(self.run_async())

    async def run_async(self) -> int:
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        server = await asyncio.start_server(self._accept, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        if self._on_ready is not None:
            self._on_ready(self.host, self.port)
        async with server:
            await self._done.wait()
        if self._shared_run is not None:
            # A stop before the whole population attached means the run
            # will never start: release the waiting handlers (they
            # answer with a typed error) instead of blocking shutdown.
            self._shared_run.shutdown()
        if self._handlers:
            await asyncio.gather(
                *list(self._handlers), return_exceptions=True
            )
        if self._shared_run is not None and self._shared_run.task is not None:
            await asyncio.gather(
                self._shared_run.task, return_exceptions=True
            )
        return self.sessions_served

    def request_stop(self) -> None:
        """Ask a running server to stop accepting and shut down (thread-safe)."""
        loop, done = self._loop, self._done
        if loop is None or done is None or loop.is_closed():
            return  # never started, or already torn down
        try:
            loop.call_soon_threadsafe(done.set)
        except RuntimeError:  # pragma: no cover - loop closed mid-call
            pass

    def _session_ended(self) -> None:
        self.sessions_served += 1
        if (
            self.max_sessions is not None
            and self.sessions_served >= self.max_sessions
        ):
            self._done.set()

    # ------------------------------------------------------------------
    # Streaming telemetry (stats_subscribe probes)
    # ------------------------------------------------------------------
    def _on_window(self, window: dict) -> None:
        """Series listener: evaluate SLO rules, log, fan to subscribers.

        Runs synchronously inside the shared run's event loop at each
        virtual-window flush, so the push order *is* the flush order.
        """
        alerts = tuple(self._watchdog.evaluate(window))
        item = (window, alerts)
        self._push_log.append(item)
        for queue in self._push_queues:
            queue.put_nowait(item)

    def _finish_stream(self) -> None:
        """Shared run over: flush the tail and release every subscriber."""
        if self._series is None or self._push_done:
            return
        self._series.finalize()  # no-op if the manager already did
        self._push_done = True
        for queue in self._push_queues:
            queue.put_nowait(_STREAM_END)

    async def _serve_stats_stream(self, reader, writer) -> None:
        if self._series is None:
            raise ProtocolError(
                "streaming telemetry is disabled on this server; start "
                "it with --stats-window to accept stats_subscribe probes"
            )
        queue: asyncio.Queue = asyncio.Queue()
        # Snapshot + register with no await in between (single-threaded
        # loop): a late subscriber replays every window already flushed,
        # then follows live — no gap, no duplicate.
        backlog = list(self._push_log)
        done = self._push_done
        if not done:
            self._push_queues.add(queue)
        watcher = asyncio.ensure_future(
            self._watch_unsubscribe(reader, queue)
        )
        seq = 0
        try:
            for window, alerts in backlog:
                await self._send(
                    writer, StatsPush(seq=seq, window=window, alerts=alerts)
                )
                seq += 1
            while not done:
                item = await queue.get()
                if item is _STREAM_END or item is _STREAM_STOP:
                    break
                window, alerts = item
                await self._send(
                    writer, StatsPush(seq=seq, window=window, alerts=alerts)
                )
                seq += 1
            await self._send(writer, StatsPush(seq=seq, final=True))
        except (ConnectionError, OSError):
            pass  # subscriber vanished; nothing to answer
        finally:
            self._push_queues.discard(queue)
            watcher.cancel()

    async def _watch_unsubscribe(self, reader, queue: asyncio.Queue) -> None:
        """Turn a STATS_UNSUBSCRIBE (or a dead socket) into a stop signal."""
        try:
            message = await read_message_async(reader)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            queue.put_nowait(_STREAM_STOP)
            return
        if isinstance(message, StatsUnsubscribe):
            queue.put_nowait(_STREAM_STOP)
        # Anything else is ignored: the probe's only defined follow-up
        # is an unsubscribe, and erroring mid-push would race the stream.

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _accept(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._handle(reader, writer)
        finally:
            # Deregister only after the socket is fully closed: the
            # shutdown gather in run_async must cover the close itself,
            # or the loop tears down mid-wait_closed and logs spurious
            # CancelledErrors.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
            finally:
                self._handlers.discard(task)

    async def _handle(self, reader, writer) -> None:
        attached = False
        try:
            hello = await self._recv(reader)
            if not isinstance(hello, Hello):
                raise ProtocolError(
                    f"expected hello, got {hello.TYPE!r}"
                )
            if hello.version not in SUPPORTED_VERSIONS:
                # Typed negotiation failure: the peer can decode this
                # (error frames are version-exempt) and learn exactly
                # which versions would have been accepted.
                await self._send(writer, version_error(hello.version))
                return
            await self._send(
                writer,
                Hello(
                    version=PROTOCOL_VERSION,
                    role="server",
                    software=SERVER_SOFTWARE,
                    engine=self.engine_name,
                    capabilities=(
                        (CAP_SHARED_ENGINE,) if self.share_engine else ()
                    ),
                    run=self.run_id,
                    host="server" if self.run_id else "",
                ),
            )
            attach = await self._recv(reader)
            if isinstance(attach, StatsSubscribe):
                # Streaming probe: push every flushed telemetry window
                # until the run ends or it unsubscribes. Like a stats
                # probe it never joins the timeline and is not counted
                # as a session.
                await self._serve_stats_stream(reader, writer)
                return
            if isinstance(attach, StatsRequest):
                # Observability probe: answer with the live metrics /
                # profile snapshot and hang up. The probe never joins
                # the timeline (no ATTACH), so it cannot perturb any
                # session's bytes — and it is not counted as a session.
                await self._send(
                    writer,
                    Stats(
                        data=stats_payload(),
                        sessions_served=self.sessions_served,
                    ),
                )
                return
            if not isinstance(attach, Attach):
                raise ProtocolError(
                    f"expected attach, got {attach.TYPE!r}"
                )
            if self.share_engine:
                # Shared-run sessions are counted by the run coordinator
                # (all at once, when the run ends), not per handler.
                await self._serve_shared(reader, writer, attach)
            elif attach.mode == "client":
                attached = True
                await self._serve_client_driven(reader, writer, attach)
            else:
                attached = True
                await self._serve_scripted(reader, writer, attach)
        except ProtocolError as error:
            await self._send_error(writer, "protocol", str(error))
        except BenchmarkError as error:
            await self._send_error(writer, "session", str(error))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            # Peer vanished (mid-session disconnect): nothing to answer.
            pass
        finally:
            if attached:
                self._session_ended()

    async def _send(self, writer, message: Message) -> None:
        profiler = get_profiler()
        if profiler.enabled:
            with profiler.stage(STAGE_FRAME_IO):
                payload = encode_message(message)
                writer.write(payload)
                await writer.drain()
            metrics = get_metrics()
            metrics.counter(
                "repro_frames_sent_total",
                labels={"type": message.TYPE},
                help="Wire frames sent by the server.",
            ).inc()
            metrics.counter(
                "repro_frame_bytes_sent_total",
                help="Wire bytes sent by the server (including prefixes).",
            ).inc(len(payload))
        else:
            writer.write(encode_message(message))
            await writer.drain()

    async def _recv(self, reader) -> Message:
        message = await read_message_async(reader)
        if get_profiler().enabled:
            get_metrics().counter(
                "repro_frames_received_total",
                labels={"type": message.TYPE},
                help="Wire frames received by the server.",
            ).inc()
        return message

    async def _send_error(self, writer, code: str, text: str) -> None:
        try:
            await self._send(writer, ErrorMessage(code=code, message=text))
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass

    def _make_engine(self):
        from repro.bench.experiments import make_engine
        from repro.common.clock import VirtualClock

        engine = make_engine(
            self.engine_name,
            self._dataset,
            self.ctx.settings,
            VirtualClock(),
            self.speculation,
        )
        engine.prepare()
        return engine

    # ------------------------------------------------------------------
    # Scripted / policy-driven sessions
    # ------------------------------------------------------------------
    async def _serve_scripted(self, reader, writer, attach: Attach) -> None:
        try:
            workflow_type = WorkflowType(attach.workflow_type)
        except ValueError as error:
            raise ProtocolError(
                f"unknown workflow type {attach.workflow_type!r}"
            ) from error
        spec, policy = make_session(
            self.ctx,
            attach.session_index,
            per_session=attach.per_session,
            workflow_type=workflow_type,
            policy=attach.policy,
        )
        driver = SessionDriver(
            self._make_engine(),
            self._oracle,
            self.ctx.settings,
            [] if policy is not None else list(spec.workflows),
            session_id=spec.session_id,
            policy=policy,
        )
        await self._send(
            writer,
            Progress(
                session_id=spec.session_id,
                event="attached",
                payload={
                    "mode": attach.mode,
                    "engine": self.engine_name,
                    "policy": attach.policy,
                    "per_session": attach.per_session,
                    "workflow_type": workflow_type.value,
                },
            ),
        )
        await self._stream_session(writer, driver, spec, attach)

    async def _stream_session(
        self, writer, driver: SessionDriver, spec: SessionSpec, attach: Attach
    ) -> None:
        pacer = AsyncClock(attach.accel) if attach.accel else None
        seq = 0
        last_workflow = driver.workflow_index
        while True:
            event_time = driver.next_event_time()
            if event_time is None:
                break
            if pacer is not None:
                await pacer.sleep_until(event_time)
            for record in driver.step():
                await self._send(
                    writer, Record(spec.session_id, seq, record)
                )
                seq += 1
            if driver.workflow_index != last_workflow and not driver.finished:
                last_workflow = driver.workflow_index
                await self._send(
                    writer,
                    Progress(
                        session_id=spec.session_id,
                        event="workflow",
                        payload={"index": last_workflow},
                    ),
                )
            # Let other connections interleave between events.
            await asyncio.sleep(0)
        await self._send(
            writer,
            Detach(
                session_id=spec.session_id,
                queries=len(driver.records),
                makespan=max(
                    (r.end_time for r in driver.records), default=0.0
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Client-driven sessions
    # ------------------------------------------------------------------
    async def _serve_client_driven(self, reader, writer, attach: Attach) -> None:
        try:
            workflow_type = WorkflowType(attach.workflow_type)
        except ValueError as error:
            raise ProtocolError(
                f"unknown workflow type {attach.workflow_type!r}"
            ) from error
        session_id = attach.name or f"client-{self._client_counter}"
        self._client_counter += 1
        source = ExternalInteractionSource(
            plan_name=session_id, workflow_type=workflow_type
        )
        spec = SessionSpec(session_id=session_id, policy="external")
        driver = SessionDriver(
            self._make_engine(),
            self._oracle,
            self.ctx.settings,
            [],
            session_id=session_id,
            policy=source,
        )
        await self._send(
            writer,
            Progress(
                session_id=session_id,
                event="attached",
                payload={
                    "mode": "client",
                    "engine": self.engine_name,
                    "workflow_type": workflow_type.value,
                },
            ),
        )
        pacer = AsyncClock(attach.accel) if attach.accel else None
        seq = 0
        try:
            while not driver.finished:
                while driver.needs_input:
                    message = await self._recv(reader)
                    if isinstance(message, Detach):
                        source.finish()
                        if not driver.interaction_counts and not source.buffered:
                            # The client detached without ever
                            # interacting — a legitimate no-op session
                            # (REPL `quit`, piped-stdin EOF). Nothing
                            # ran, so answer with an empty summary
                            # instead of the empty-workflow error
                            # resume() would raise.
                            driver.abandon()
                            break
                    elif isinstance(message, SubmitViz):
                        source.feed(CreateViz(message.viz))
                    elif isinstance(message, Interact):
                        source.feed(message.interaction)
                    else:
                        raise ProtocolError(
                            f"unexpected {message.TYPE!r} frame in a "
                            f"client-driven session"
                        )
                    driver.resume()
                if driver.finished:
                    break
                event_time = driver.next_event_time()
                if event_time is None:
                    break
                if pacer is not None:
                    await pacer.sleep_until(event_time)
                for record in driver.step():
                    await self._send(writer, Record(session_id, seq, record))
                    seq += 1
                await asyncio.sleep(0)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            # The frontend vanished mid-session: abandon cleanly —
            # cancel in-flight queries, free hints — and stop. No
            # records are produced for events the departed user never
            # saw, exactly like an open-system churn departure.
            driver.abandon()
            raise
        await self._send(
            writer,
            Detach(
                session_id=session_id,
                queries=len(driver.records),
                makespan=max(
                    (r.end_time for r in driver.records), default=0.0
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Shared-engine serving (wire-level turn protocol)
    # ------------------------------------------------------------------
    async def _serve_shared(self, reader, writer, attach: Attach) -> None:
        slot = self._shared_run.register(attach, reader, writer)
        await self._send(
            writer,
            Progress(
                session_id=slot.session_id,
                event="attached",
                payload={
                    "mode": attach.mode,
                    "engine": self.engine_name,
                    "shared": True,
                    "sessions": self._shared_run.expected,
                    "session_index": slot.index,
                    "per_session": self.per_session,
                    "workflow_type": self.workflow_type.value,
                    "policy": self.policy,
                },
            ),
        )
        self._shared_run.maybe_start()
        await slot.done.wait()
        if slot.error is not None:
            await self._send_error(writer, slot.error_code, slot.error)
            return
        if slot.abandoned:
            # The peer disconnected / timed out / violated the turn
            # protocol; the hook already said whatever could be said.
            return
        await self._send(
            writer,
            Detach(
                session_id=slot.session_id,
                queries=len(slot.records),
                makespan=max(
                    (r.end_time for r in slot.records), default=0.0
                ),
            ),
        )


class _SharedSlot:
    """One attached participant of a shared-engine run."""

    def __init__(self, index: int, attach: Attach, reader, writer,
                 session_id: str):
        self.index = index
        self.attach = attach
        self.reader = reader
        self.writer = writer
        self.session_id = session_id
        self.records: List = []
        self.done = asyncio.Event()
        self.abandoned = False
        self.error: Optional[str] = None
        self.error_code = "session"


class _SharedRun:
    """Coordinates exactly one shared-engine run over TCP.

    Connections claim ``session_index`` slots at ATTACH; once all
    ``expected`` slots are filled the coordinator broadcasts a BARRIER,
    builds the same shared-engine :class:`SessionManager` the in-process
    ``repro serve --share-engine`` path builds, and runs it with one
    :class:`_SharedTurnHook` per slot — which is precisely why the
    per-session reports come out byte-identical to the in-process run.
    """

    def __init__(self, server: "TcpSessionServer", expected: int):
        self.server = server
        self.expected = expected
        self.slots: Dict[int, _SharedSlot] = {}
        self.started = False
        self.aborted = False
        self.task: Optional[asyncio.Task] = None
        self._barrier_watchdog: Optional[asyncio.Task] = None

    # -- attachment ----------------------------------------------------
    def register(self, attach: Attach, reader, writer) -> _SharedSlot:
        server = self.server
        if self.aborted:
            raise ProtocolError(
                "the shared-engine run was aborted (barrier timeout); "
                "restart the server for a fresh run"
            )
        if self.started:
            raise ProtocolError(
                "the shared-engine run has already started; this server "
                "serves exactly one shared run per process"
            )
        if self._barrier_watchdog is None:
            # Arm on the first attach: a participant that dies before
            # the barrier is undetectable (its socket may hold
            # legitimately pipelined frames we must not consume early),
            # so an incomplete population must time out instead of
            # wedging every connected client forever.
            self._barrier_watchdog = asyncio.ensure_future(
                self._barrier_deadline()
            )
        index = attach.session_index
        if not 0 <= index < self.expected:
            raise ProtocolError(
                f"session_index {index} out of range for a "
                f"{self.expected}-session shared run"
            )
        if index in self.slots:
            raise ProtocolError(
                f"session_index {index} is already attached"
            )
        if attach.accel is not None:
            raise ProtocolError(
                "shared-engine sessions share one global virtual "
                "timeline; per-session accel pacing is not available"
            )
        if attach.mode == "scripted":
            mismatched = []
            if attach.per_session != server.per_session:
                mismatched.append(
                    f"per_session={attach.per_session} "
                    f"(server: {server.per_session})"
                )
            if attach.workflow_type != server.workflow_type.value:
                mismatched.append(
                    f"workflow_type={attach.workflow_type!r} "
                    f"(server: {server.workflow_type.value!r})"
                )
            if attach.policy != server.policy:
                mismatched.append(
                    f"policy={attach.policy!r} (server: {server.policy!r})"
                )
            if mismatched:
                raise ProtocolError(
                    "shared-engine serving fixes the scripted workload "
                    "server-side so every participant runs the exact "
                    "configuration the report is deterministic for; "
                    "mismatched attach fields: " + ", ".join(mismatched)
                )
            session_id = f"session-{index}"
        else:
            session_id = attach.name or f"client-{index}"
            if _SCRIPTED_ID.fullmatch(session_id):
                raise ProtocolError(
                    f"session name {session_id!r} is reserved for "
                    f"scripted slots"
                )
            taken = {slot.session_id for slot in self.slots.values()}
            if session_id in taken:
                raise ProtocolError(
                    f"session name {session_id!r} is already attached"
                )
        slot = _SharedSlot(index, attach, reader, writer, session_id)
        self.slots[index] = slot
        return slot

    def maybe_start(self) -> None:
        """Start the run once the whole population has attached."""
        if self.started or self.aborted or len(self.slots) < self.expected:
            return
        self.started = True
        if self._barrier_watchdog is not None:
            self._barrier_watchdog.cancel()
        self.task = asyncio.ensure_future(self._execute())

    async def _barrier_deadline(self) -> None:
        try:
            await asyncio.sleep(self.server.barrier_timeout)
        except asyncio.CancelledError:  # population completed in time
            return
        if self.started or self.aborted:
            return
        self.aborted = True
        for slot in self.slots.values():
            if not slot.done.is_set():
                slot.error = (
                    f"barrier timeout: only {len(self.slots)} of "
                    f"{self.expected} sessions attached within "
                    f"{self.server.barrier_timeout:g}s; the shared run "
                    f"was aborted"
                )
                slot.done.set()
        # No run can ever happen now; let the server exit cleanly.
        self.server.request_stop()

    def shutdown(self) -> None:
        """Server stopping: fail slots whose run can no longer happen.

        A run that already started finishes (or times out) on its own —
        its slots get their events from :meth:`_execute`. Only a
        never-started run leaves handlers waiting forever.
        """
        if self.started:
            return
        if self._barrier_watchdog is not None:
            self._barrier_watchdog.cancel()
        for slot in self.slots.values():
            if not slot.done.is_set():
                slot.error = (
                    f"server stopped with {len(self.slots)} of "
                    f"{self.expected} sessions attached; the shared run "
                    f"never started"
                )
                slot.done.set()
        # A run that never starts flushes no windows; release any
        # waiting subscribers with an empty (final-only) stream.
        self.server._finish_stream()

    # -- the run -------------------------------------------------------
    async def _execute(self) -> None:
        server = self.server
        previous_series = (
            set_timeseries(server._series)
            if server._series is not None
            else None
        )
        try:
            specs, policies, hooks = [], [], {}
            for index in range(self.expected):
                slot = self.slots[index]
                if slot.attach.mode == "scripted":
                    spec, policy = make_session(
                        server.ctx,
                        index,
                        per_session=server.per_session,
                        workflow_type=server.workflow_type,
                        policy=server.policy,
                        generator=server._policy_generator,
                    )
                    source = None
                else:
                    try:
                        workflow_type = WorkflowType(
                            slot.attach.workflow_type
                        )
                    except ValueError as error:
                        raise ProtocolError(
                            f"unknown workflow type "
                            f"{slot.attach.workflow_type!r}"
                        ) from error
                    source = ExternalInteractionSource(
                        plan_name=slot.session_id,
                        workflow_type=workflow_type,
                    )
                    spec = SessionSpec(
                        session_id=slot.session_id, policy="external"
                    )
                    policy = source
                specs.append(spec)
                policies.append(policy)
                hooks[index] = _SharedTurnHook(server, slot, source)
            for index in range(self.expected):
                await self._announce(self.slots[index])
            manager = SessionManager(
                specs,
                server._oracle,
                server.ctx.settings,
                engine=server._shared_engine,
                policies=policies,
                turn_hooks=hooks,
            )
            results = await manager.run_async()
        except Exception as error:  # noqa: BLE001 - reported to every peer
            for slot in self.slots.values():
                if not slot.done.is_set():
                    slot.error = f"shared run failed: {error}"
                    slot.done.set()
        else:
            for index, slot in self.slots.items():
                slot.records = results[index].records
                slot.done.set()
        finally:
            if server._series is not None:
                set_timeseries(previous_series)
                server._finish_stream()
            for _ in range(self.expected):
                server._session_ended()

    async def _announce(self, slot: _SharedSlot) -> None:
        try:
            await self.server._send(
                slot.writer, Barrier(sessions=self.expected)
            )
        except (ConnectionError, OSError):
            # Dead already; its first grant will notice and abandon it.
            pass


class _SharedTurnHook(SessionTurnHook):
    """Wires one shared-run session's turns to its TCP connection.

    Every callback runs while the session holds the global timeline, so
    a slow acknowledgement (or a stalled client-driven frontend) blocks
    virtual time for the whole run — order unchanged — and a dead or
    misbehaving peer abandons exactly this session via
    :class:`SessionAbandoned`.
    """

    def __init__(self, server: TcpSessionServer, slot: _SharedSlot,
                 source: Optional[ExternalInteractionSource]):
        self.server = server
        self.slot = slot
        self.source = source
        self.turn = 0
        self.seq = 0

    # -- SessionTurnHook interface -------------------------------------
    async def wait_input(self, driver) -> None:
        source = self.source
        if source is None:  # pragma: no cover - scripted sessions never stall
            raise BenchmarkError("scripted session unexpectedly stalled")
        if source.buffered or source.finished:
            # Frames absorbed while awaiting an earlier acknowledgement
            # (pipelined replay clients) are already queued; consume them
            # before reading the socket again.
            self._consume(driver)
            return
        message = await self._read()
        await self._absorb(message, driver)

    async def on_turn(self, event_time: float) -> None:
        await self._send_timed(
            TurnGrant(self.slot.session_id, self.turn, event_time)
        )

    async def on_step(self, event_time: float, records) -> None:
        for record in records:
            await self._send_timed(
                Record(self.slot.session_id, self.seq, record)
            )
            self.seq += 1
        # The grant→TURN_DONE round trip is where a shared run's wall
        # time goes when a frontend is slow; profile it as its own stage.
        with get_profiler().stage(STAGE_TURN_GRANT):
            await self._await_ack()
        self.turn += 1

    # -- internals -----------------------------------------------------
    async def _send_timed(self, message: Message) -> None:
        """Send with the turn timeout applied to the drain.

        The read side alone cannot bound a misbehaving peer: a client
        that pre-sends valid ascending TURN_DONE frames but stops
        *reading* satisfies every acknowledgement from the buffer while
        ``writer.drain()`` blocks forever once the socket fills. The
        session holds the global timeline during sends, so this must
        time out like any other turn-protocol wait — no error frame is
        attempted (the pipe is jammed); the session is simply abandoned.
        """
        try:
            await asyncio.wait_for(
                self.server._send(self.slot.writer, message),
                self.server.turn_timeout,
            )
        except asyncio.TimeoutError:
            self.slot.abandoned = True
            raise SessionAbandoned(
                f"session {self.slot.session_id!r} stopped reading; send "
                f"blocked past the {self.server.turn_timeout:g}s turn "
                f"timeout"
            ) from None
        except (ConnectionError, OSError):
            self._gone()

    async def _await_ack(self) -> None:
        while True:
            message = await self._read()
            if isinstance(message, TurnDone):
                if message.turn != self.turn:
                    await self._violate(
                        "turn",
                        f"out-of-order turn_done: expected turn "
                        f"{self.turn}, got {message.turn}",
                    )
                return
            if self.source is not None and isinstance(
                message, (SubmitViz, Interact, Detach)
            ):
                # A pipelining client-driven frontend may send its next
                # interactions (or its detach) before acknowledging the
                # turn; queue them for the grid, keep waiting.
                if isinstance(message, Detach):
                    self.source.finish()
                elif isinstance(message, SubmitViz):
                    self.source.feed(CreateViz(message.viz))
                else:
                    self.source.feed(message.interaction)
                continue
            await self._violate(
                "protocol",
                f"unexpected {message.TYPE!r} frame while awaiting "
                f"turn_done {self.turn}",
            )

    def _consume(self, driver) -> None:
        source = self.source
        if (
            source.finished
            and not source.buffered
            and not driver.interaction_counts
        ):
            # Detached without ever interacting: a legitimate no-op
            # session (same contract as isolated serving) — retire it
            # cleanly with a zero-query summary.
            driver.abandon()
        else:
            driver.resume()

    async def _absorb(self, message: Message, driver) -> None:
        source = self.source
        if isinstance(message, Detach):
            source.finish()
            self._consume(driver)
        elif isinstance(message, SubmitViz):
            source.feed(CreateViz(message.viz))
            driver.resume()
        elif isinstance(message, Interact):
            source.feed(message.interaction)
            driver.resume()
        elif isinstance(message, TurnDone):
            await self._violate(
                "turn",
                f"unsolicited turn_done (no grant outstanding for "
                f"session {self.slot.session_id!r})",
            )
        else:
            await self._violate(
                "protocol",
                f"unexpected {message.TYPE!r} frame in a client-driven "
                f"shared session",
            )

    async def _read(self) -> Message:
        try:
            return await asyncio.wait_for(
                self.server._recv(self.slot.reader),
                self.server.turn_timeout,
            )
        except asyncio.TimeoutError:
            await self._violate(
                "turn",
                f"session {self.slot.session_id!r} sent no frame within "
                f"the {self.server.turn_timeout:g}s turn timeout; "
                f"abandoning it (virtual time was stalled, never "
                f"corrupted)",
            )
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            self._gone()

    def _gone(self) -> None:
        self.slot.abandoned = True
        raise SessionAbandoned(
            f"session {self.slot.session_id!r} disconnected mid-run"
        )

    async def _violate(self, code: str, text: str) -> None:
        self.slot.abandoned = True
        self.slot.error_code = code
        await self.server._send_error(self.slot.writer, code, text)
        raise SessionAbandoned(text)


class ServerThread:
    """Run a :class:`TcpSessionServer` on a dedicated background thread.

    Context manager: entering starts the thread (with its own asyncio
    loop) and blocks until the server is listening, yielding
    ``(host, port)``; exiting requests a stop and joins. Lets blocking
    clients — the CLI, the benchmarks, the tests — talk to a loopback
    server inside one process::

        server = TcpSessionServer(ctx, "idea-sim", max_sessions=2)
        with ServerThread(server) as (host, port):
            records = fetch_scripted_session(host, port, 0)
    """

    def __init__(self, server: TcpSessionServer, join_timeout: float = 30.0):
        self.server = server
        self.join_timeout = join_timeout
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    def __enter__(self):
        previous_ready = self.server._on_ready

        def on_ready(host, port):
            if previous_ready is not None:
                previous_ready(host, port)
            self._ready.set()

        self.server._on_ready = on_ready

        def main():
            try:
                self.server.run()
            except BaseException as error:  # pragma: no cover - diagnostics
                self._failure = error
                self._ready.set()

        self._thread = threading.Thread(
            target=main, name="tcp-session-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.join_timeout):  # pragma: no cover
            raise BenchmarkError("TCP server failed to start listening")
        if self._failure is not None:
            raise BenchmarkError(
                f"TCP server failed to start: {self._failure}"
            ) from self._failure
        return self.server.host, self.server.port

    def __exit__(self, exc_type, exc, tb):
        self.server.request_stop()
        self._thread.join(self.join_timeout)
        return False
