"""The asyncio TCP server: real frontends driving simulated engines.

Each accepted connection becomes one simulated IDE session (§2.2's one
user). After the HELLO handshake the client ATTACHes in one of two modes:

* **scripted** — the server runs session ``session_index``'s seeded
  workflow suite (or, with ``policy`` set, its adaptive policy) through a
  :class:`~repro.bench.driver.SessionDriver` on a fresh engine over the
  shared dataset, streaming every evaluated record back as a RECORD
  frame. Because isolated serving is byte-identical to serial runs, the
  report a scripted client reassembles is **byte-identical** to the
  in-process ``repro serve`` report for the same configuration — the
  determinism guarantee extended across the wire (docs/protocol.md).
* **client** — the connection is the interaction source: SUBMIT_VIZ and
  INTERACT frames feed an
  :class:`~repro.workflow.policy.ExternalInteractionSource`, and the
  driver *stalls* on the think-time grid whenever the next interaction
  has not arrived (``driver.needs_input``). Interactions still fire at
  exact grid instants, so wall arrival time never leaks into results.

Sessions are isolated (one engine per connection): concurrent
connections interleave freely on the event loop without affecting each
other's bytes. Shared-engine contention remains an in-process mode —
global virtual-time ordering across independently-paced remote clients
would force the server to block every session on the slowest frontend.

Wall pacing is per session: an ATTACH with ``accel`` paces that session's
events through an :class:`~repro.server.clock.AsyncClock` (1.0 = real
time, the original IDEBench driver's behavior) without changing results.

:class:`ServerThread` runs a server on a background thread with its own
event loop — how the blocking client library, the benchmarks, and
``repro bench-net`` embed a loopback server in one process.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Set

from repro.bench.driver import SessionDriver
from repro.common.errors import BenchmarkError, ProtocolError
from repro.server.clock import AsyncClock
from repro.server.manager import make_session
from repro.server.session import SessionSpec
from repro.net.protocol import (
    PROTOCOL_VERSION,
    Attach,
    Detach,
    ErrorMessage,
    Hello,
    Interact,
    Message,
    Progress,
    Record,
    SubmitViz,
    encode_message,
    read_message_async,
)
from repro.workflow.policy import ExternalInteractionSource
from repro.workflow.spec import CreateViz, WorkflowType

#: Software tag announced in the server's HELLO.
SERVER_SOFTWARE = "idebench-repro"


class TcpSessionServer:
    """Serves simulated IDE sessions over length-prefixed JSON frames.

    Parameters
    ----------
    ctx:
        The :class:`~repro.bench.experiments.ExperimentContext` providing
        settings, dataset, oracle and column profiles (shared across all
        connections; engines are per-connection).
    engine_name:
        Engine simulator each session runs against.
    host, port:
        Bind address. Port ``0`` picks an ephemeral port; the bound port
        is on :attr:`port` once running (and passed to ``on_ready``).
    max_sessions:
        Stop serving after this many sessions end (``None`` = serve until
        :meth:`request_stop`). What ``repro serve --tcp --sessions N``
        uses so benchmarks and tests terminate deterministically.
    speculation:
        Enable speculative execution on engines that support it.
    on_ready:
        Optional callback ``(host, port)`` invoked once listening.
    """

    def __init__(
        self,
        ctx,
        engine_name: str = "idea-sim",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: Optional[int] = None,
        speculation: bool = False,
        normalized: bool = False,
        on_ready=None,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise BenchmarkError(
                f"max_sessions must be >= 1 or None, got {max_sessions!r}"
            )
        self.ctx = ctx
        self.engine_name = engine_name
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.speculation = speculation
        self.normalized = normalized
        self.sessions_served = 0
        self._on_ready = on_ready
        self._dataset = ctx.dataset(ctx.settings.data_size, normalized)
        self._oracle = ctx.oracle(ctx.settings.data_size, normalized)
        self._client_counter = 0
        self._done: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._handlers: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until ``max_sessions`` end or stop is requested.

        Returns the number of sessions served.
        """
        return asyncio.run(self.run_async())

    async def run_async(self) -> int:
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        server = await asyncio.start_server(self._accept, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        if self._on_ready is not None:
            self._on_ready(self.host, self.port)
        async with server:
            await self._done.wait()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        return self.sessions_served

    def request_stop(self) -> None:
        """Ask a running server to stop accepting and shut down (thread-safe)."""
        loop, done = self._loop, self._done
        if loop is None or done is None or loop.is_closed():
            return  # never started, or already torn down
        try:
            loop.call_soon_threadsafe(done.set)
        except RuntimeError:  # pragma: no cover - loop closed mid-call
            pass

    def _session_ended(self) -> None:
        self.sessions_served += 1
        if (
            self.max_sessions is not None
            and self.sessions_served >= self.max_sessions
        ):
            self._done.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _accept(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._handle(reader, writer)
        finally:
            self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _handle(self, reader, writer) -> None:
        attached = False
        try:
            hello = await read_message_async(reader)
            if not isinstance(hello, Hello):
                raise ProtocolError(
                    f"expected hello, got {hello.TYPE!r}"
                )
            await self._send(
                writer,
                Hello(
                    version=PROTOCOL_VERSION,
                    role="server",
                    software=SERVER_SOFTWARE,
                    engine=self.engine_name,
                ),
            )
            attach = await read_message_async(reader)
            if not isinstance(attach, Attach):
                raise ProtocolError(
                    f"expected attach, got {attach.TYPE!r}"
                )
            attached = True
            if attach.mode == "client":
                await self._serve_client_driven(reader, writer, attach)
            else:
                await self._serve_scripted(reader, writer, attach)
        except ProtocolError as error:
            await self._send_error(writer, "protocol", str(error))
        except BenchmarkError as error:
            await self._send_error(writer, "session", str(error))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            # Peer vanished (mid-session disconnect): nothing to answer.
            pass
        finally:
            if attached:
                self._session_ended()

    async def _send(self, writer, message: Message) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    async def _send_error(self, writer, code: str, text: str) -> None:
        try:
            await self._send(writer, ErrorMessage(code=code, message=text))
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass

    def _make_engine(self):
        from repro.bench.experiments import make_engine
        from repro.common.clock import VirtualClock

        engine = make_engine(
            self.engine_name,
            self._dataset,
            self.ctx.settings,
            VirtualClock(),
            self.speculation,
        )
        engine.prepare()
        return engine

    # ------------------------------------------------------------------
    # Scripted / policy-driven sessions
    # ------------------------------------------------------------------
    async def _serve_scripted(self, reader, writer, attach: Attach) -> None:
        try:
            workflow_type = WorkflowType(attach.workflow_type)
        except ValueError as error:
            raise ProtocolError(
                f"unknown workflow type {attach.workflow_type!r}"
            ) from error
        spec, policy = make_session(
            self.ctx,
            attach.session_index,
            per_session=attach.per_session,
            workflow_type=workflow_type,
            policy=attach.policy,
        )
        driver = SessionDriver(
            self._make_engine(),
            self._oracle,
            self.ctx.settings,
            [] if policy is not None else list(spec.workflows),
            session_id=spec.session_id,
            policy=policy,
        )
        await self._send(
            writer,
            Progress(
                session_id=spec.session_id,
                event="attached",
                payload={
                    "mode": attach.mode,
                    "engine": self.engine_name,
                    "policy": attach.policy,
                    "per_session": attach.per_session,
                    "workflow_type": workflow_type.value,
                },
            ),
        )
        await self._stream_session(writer, driver, spec, attach)

    async def _stream_session(
        self, writer, driver: SessionDriver, spec: SessionSpec, attach: Attach
    ) -> None:
        pacer = AsyncClock(attach.accel) if attach.accel else None
        seq = 0
        last_workflow = driver.workflow_index
        while True:
            event_time = driver.next_event_time()
            if event_time is None:
                break
            if pacer is not None:
                await pacer.sleep_until(event_time)
            for record in driver.step():
                await self._send(
                    writer, Record(spec.session_id, seq, record)
                )
                seq += 1
            if driver.workflow_index != last_workflow and not driver.finished:
                last_workflow = driver.workflow_index
                await self._send(
                    writer,
                    Progress(
                        session_id=spec.session_id,
                        event="workflow",
                        payload={"index": last_workflow},
                    ),
                )
            # Let other connections interleave between events.
            await asyncio.sleep(0)
        await self._send(
            writer,
            Detach(
                session_id=spec.session_id,
                queries=len(driver.records),
                makespan=max(
                    (r.end_time for r in driver.records), default=0.0
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Client-driven sessions
    # ------------------------------------------------------------------
    async def _serve_client_driven(self, reader, writer, attach: Attach) -> None:
        try:
            workflow_type = WorkflowType(attach.workflow_type)
        except ValueError as error:
            raise ProtocolError(
                f"unknown workflow type {attach.workflow_type!r}"
            ) from error
        session_id = attach.name or f"client-{self._client_counter}"
        self._client_counter += 1
        source = ExternalInteractionSource(
            plan_name=session_id, workflow_type=workflow_type
        )
        spec = SessionSpec(session_id=session_id, policy="external")
        driver = SessionDriver(
            self._make_engine(),
            self._oracle,
            self.ctx.settings,
            [],
            session_id=session_id,
            policy=source,
        )
        await self._send(
            writer,
            Progress(
                session_id=session_id,
                event="attached",
                payload={
                    "mode": "client",
                    "engine": self.engine_name,
                    "workflow_type": workflow_type.value,
                },
            ),
        )
        pacer = AsyncClock(attach.accel) if attach.accel else None
        seq = 0
        try:
            while not driver.finished:
                while driver.needs_input:
                    message = await read_message_async(reader)
                    if isinstance(message, Detach):
                        source.finish()
                        if not driver.interaction_counts and not source.buffered:
                            # The client detached without ever
                            # interacting — a legitimate no-op session
                            # (REPL `quit`, piped-stdin EOF). Nothing
                            # ran, so answer with an empty summary
                            # instead of the empty-workflow error
                            # resume() would raise.
                            driver.abandon()
                            break
                    elif isinstance(message, SubmitViz):
                        source.feed(CreateViz(message.viz))
                    elif isinstance(message, Interact):
                        source.feed(message.interaction)
                    else:
                        raise ProtocolError(
                            f"unexpected {message.TYPE!r} frame in a "
                            f"client-driven session"
                        )
                    driver.resume()
                if driver.finished:
                    break
                event_time = driver.next_event_time()
                if event_time is None:
                    break
                if pacer is not None:
                    await pacer.sleep_until(event_time)
                for record in driver.step():
                    await self._send(writer, Record(session_id, seq, record))
                    seq += 1
                await asyncio.sleep(0)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            # The frontend vanished mid-session: abandon cleanly —
            # cancel in-flight queries, free hints — and stop. No
            # records are produced for events the departed user never
            # saw, exactly like an open-system churn departure.
            driver.abandon()
            raise
        await self._send(
            writer,
            Detach(
                session_id=session_id,
                queries=len(driver.records),
                makespan=max(
                    (r.end_time for r in driver.records), default=0.0
                ),
            ),
        )


class ServerThread:
    """Run a :class:`TcpSessionServer` on a dedicated background thread.

    Context manager: entering starts the thread (with its own asyncio
    loop) and blocks until the server is listening, yielding
    ``(host, port)``; exiting requests a stop and joins. Lets blocking
    clients — the CLI, the benchmarks, the tests — talk to a loopback
    server inside one process::

        server = TcpSessionServer(ctx, "idea-sim", max_sessions=2)
        with ServerThread(server) as (host, port):
            records = fetch_scripted_session(host, port, 0)
    """

    def __init__(self, server: TcpSessionServer, join_timeout: float = 30.0):
        self.server = server
        self.join_timeout = join_timeout
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    def __enter__(self):
        previous_ready = self.server._on_ready

        def on_ready(host, port):
            if previous_ready is not None:
                previous_ready(host, port)
            self._ready.set()

        self.server._on_ready = on_ready

        def main():
            try:
                self.server.run()
            except BaseException as error:  # pragma: no cover - diagnostics
                self._failure = error
                self._ready.set()

        self._thread = threading.Thread(
            target=main, name="tcp-session-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.join_timeout):  # pragma: no cover
            raise BenchmarkError("TCP server failed to start listening")
        if self._failure is not None:
            raise BenchmarkError(
                f"TCP server failed to start: {self._failure}"
            ) from self._failure
        return self.server.host, self.server.port

    def __exit__(self, exc_type, exc, tb):
        self.server.request_stop()
        self._thread.join(self.join_timeout)
        return False
