"""Blocking client library for the network front-end.

:class:`NetClient` speaks the :mod:`repro.net.protocol` frames over a
plain socket — the dependency-free path a real IDE frontend (or remote
load generator, §3's "unpredictable and speed-dependent" user) would
take. On top of it:

* :func:`fetch_scripted_session` — attach in scripted mode, let the
  server run session *i*'s seeded suite (or adaptive policy), and
  reassemble the streamed records;
* :func:`replay_workflow` — drive a client-mode session by sending a
  pre-generated workflow's interactions over the wire (the scripted
  replay client of docs/protocol.md);
* :func:`scripted_csv_over_tcp` — the acceptance helper: the detailed
  CSV a scripted client reconstructs, compared byte-for-byte against
  in-process ``repro serve`` output by ``benchmarks/bench_net.py``.

Records cross the wire through :func:`repro.net.protocol.record_to_dict`
round trips, so the client-side
:class:`~repro.bench.report.DetailedReport` renders **byte-identical**
CSV to the server-side one — JSON preserves every float (NaN included)
exactly.
"""

from __future__ import annotations

import io
import socket
from typing import List, Optional, Tuple

from repro.bench.driver import QueryRecord
from repro.bench.report import DetailedReport
from repro.common.errors import ProtocolError
from repro.net.protocol import (
    SUPPORTED_VERSIONS,
    Attach,
    Detach,
    ErrorMessage,
    Hello,
    Interact,
    Message,
    Record,
    Stats,
    StatsPush,
    StatsRequest,
    StatsSubscribe,
    StatsUnsubscribe,
    SubmitViz,
    TurnDone,
    TurnGrant,
    encode_message,
    decode_body,
    split_frame,
)
from repro.obs.tracer import get_tracer
from repro.workflow.spec import CreateViz, Interaction, Workflow

#: Default socket timeout (seconds) — generous, but hangs must surface.
DEFAULT_TIMEOUT = 60.0


class NetClient:
    """One connection to a :class:`~repro.net.server.TcpSessionServer`.

    Usable as a context manager; :meth:`hello` performs the handshake,
    the ``attach_*`` methods join a session, and :meth:`read_message` /
    :meth:`collect` consume the server's stream. With ``log_frames``
    set, every received frame's canonical JSON text is appended to
    :attr:`frame_log` — how the golden transcript is captured.

    Shared-engine servers pace sessions with TURN_GRANT frames that must
    be acknowledged (docs/protocol.md's v2 turn protocol). By default
    the client acknowledges transparently inside :meth:`read_message`
    (grants are still logged to :attr:`frame_log`, never surfaced to
    callers), so scripted fetches, wire replays and the REPL work
    unchanged against both serving modes. Pass ``auto_ack=False`` to
    drive the turn protocol by hand — what the adversarial tests do.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = DEFAULT_TIMEOUT,
        log_frames: bool = False,
        auto_ack: bool = True,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.auto_ack = auto_ack
        self.frame_log: List[str] = [] if log_frames else None
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._correlated = False

    # ------------------------------------------------------------------
    def connect(self) -> "NetClient":
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "NetClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        if self._sock is None:
            raise ProtocolError("client is not connected")
        self._sock.sendall(encode_message(message))

    def read_message(self) -> Message:
        """Block until one complete frame arrives; decode it.

        With :attr:`auto_ack` on (the default), TURN_GRANT frames from a
        shared-engine server are acknowledged immediately and skipped —
        callers see the same stream an isolated server would send.
        """
        if self._sock is None:
            raise ProtocolError("client is not connected")
        while True:
            split = split_frame(self._buffer)
            if split is not None:
                body, self._buffer = split
                if self.frame_log is not None:
                    self.frame_log.append(body.decode("utf-8"))
                message = decode_body(body)
                if isinstance(message, ErrorMessage):
                    raise ProtocolError(
                        f"server error [{message.code}]: {message.message}"
                    )
                if isinstance(message, TurnGrant) and self.auto_ack:
                    self.send(
                        TurnDone(
                            turn=message.turn,
                            session_id=message.session_id,
                        )
                    )
                    continue
                return message
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("connection closed mid-frame")
            self._buffer += chunk

    def drain(self, timeout: float = 0.2) -> List[Message]:
        """Read whatever frames are already in flight (REPL convenience)."""
        messages: List[Message] = []
        if self._sock is None:
            return messages
        self._sock.settimeout(timeout)
        try:
            while True:
                messages.append(self.read_message())
        except socket.timeout:
            pass
        finally:
            self._sock.settimeout(self.timeout)
        return messages

    # ------------------------------------------------------------------
    def hello(self, client_host: str = "") -> Hello:
        """Handshake; returns the server's HELLO.

        ``client_host`` names this client for cross-host trace
        correlation: it rides the outgoing HELLO, and when tracing is
        enabled the server's ``run`` id (plus ``client_host``) is
        stamped onto every local trace entry, so per-host trace files
        stitch into one timeline with ``repro trace merge``.

        Raises a clear :class:`ProtocolError` on a version mismatch in
        either direction: a newer server's typed ``version`` ERROR frame
        surfaces with its ``supported_versions``, and an older server's
        HELLO (decodable across versions) is rejected here by name
        instead of dying in the codec.
        """
        self.send(Hello(role="client", host=client_host))
        answer = self.read_message()
        if not isinstance(answer, Hello):
            raise ProtocolError(f"expected hello, got {answer.TYPE!r}")
        if answer.version not in SUPPORTED_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
            raise ProtocolError(
                f"server speaks protocol version {answer.version}; "
                f"this client supports {supported}"
            )
        tracer = get_tracer()
        if tracer.enabled:
            context = {}
            if answer.run:
                context["run"] = answer.run
            if client_host:
                context["host"] = client_host
            if context:
                tracer.set_context(**context)
                self._correlated = True
        return answer

    def attach_scripted(
        self,
        session_index: int,
        *,
        per_session: int = 1,
        workflow_type: str = "mixed",
        policy: Optional[str] = None,
        accel: Optional[float] = None,
    ) -> Message:
        """Join as a server-side scripted (or policy-driven) session."""
        self.send(
            Attach(
                mode="scripted",
                session_index=session_index,
                per_session=per_session,
                workflow_type=workflow_type,
                policy=policy,
                accel=accel,
            )
        )
        return self.read_message()  # Progress(attached)

    def attach_client(
        self,
        *,
        name: Optional[str] = None,
        workflow_type: str = "custom",
        accel: Optional[float] = None,
        session_index: int = 0,
    ) -> Message:
        """Join as a client-driven session (this connection is the user).

        ``session_index`` matters only on a shared-engine server, where
        it is the timeline slot this session claims.
        """
        self.send(
            Attach(
                mode="client",
                workflow_type=workflow_type,
                accel=accel,
                name=name,
                session_index=session_index,
            )
        )
        return self.read_message()  # Progress(attached)

    def stats(self) -> Stats:
        """Pull the server's live metrics / profile snapshot.

        Sent *instead of* an ATTACH after the HELLO exchange — a stats
        probe never joins the timeline, so it cannot perturb any
        session's bytes. The server answers with one STATS frame and
        closes the connection.
        """
        self.send(StatsRequest())
        answer = self.read_message()
        if not isinstance(answer, Stats):
            raise ProtocolError(f"expected stats, got {answer.TYPE!r}")
        return answer

    def send_interaction(self, interaction: Interaction) -> None:
        """Client-driven mode: submit one §4.3 interaction."""
        if isinstance(interaction, CreateViz):
            self.send(SubmitViz(interaction.viz))
        else:
            self.send(Interact(interaction))

    def detach(self) -> None:
        """Client-driven mode: no more interactions (tail still drains)."""
        self.send(Detach())

    def collect(self) -> Tuple[List[QueryRecord], Detach]:
        """Read until the server's DETACH; returns (records, summary)."""
        records: List[QueryRecord] = []
        tracer = get_tracer()
        while True:
            message = self.read_message()
            if isinstance(message, Record):
                records.append(message.record)
                if tracer.enabled and self._correlated:
                    # The client-side trace of a *correlated* session:
                    # one event per reassembled record at its evaluation
                    # instant, so a per-client trace file has a virtual
                    # timeline to merge on (repro trace merge). Gated on
                    # correlation so uncorrelated traced runs keep their
                    # pinned bytes (trace_tcp_shared.jsonl).
                    tracer.event(
                        "client.record",
                        message.record.end_time,
                        session=message.session_id,
                        seq=message.seq,
                    )
            elif isinstance(message, Detach):
                return records, message
            # Progress frames are informational; skip.

    # ------------------------------------------------------------------
    # Streaming telemetry (stats_subscribe)
    # ------------------------------------------------------------------
    def subscribe_stats(self) -> None:
        """Subscribe to pushed telemetry windows (instead of an ATTACH)."""
        self.send(StatsSubscribe())

    def unsubscribe_stats(self) -> None:
        """Ask the server to end the stream (a final frame follows)."""
        self.send(StatsUnsubscribe())

    def iter_stats(self):
        """Yield :class:`StatsPush` frames until the final one (excluded).

        The generator returns when the server sends its ``final=True``
        frame — after the shared run ends, or in answer to
        :meth:`unsubscribe_stats`.
        """
        while True:
            message = self.read_message()
            if not isinstance(message, StatsPush):
                raise ProtocolError(
                    f"expected stats_push, got {message.TYPE!r}"
                )
            if message.final:
                return
            yield message


# ----------------------------------------------------------------------
# High-level helpers
# ----------------------------------------------------------------------

def fetch_server_stats(
    host: str, port: int, *, timeout: float = DEFAULT_TIMEOUT
) -> Stats:
    """One-shot stats probe: connect, HELLO, STATS_REQUEST, disconnect."""
    with NetClient(host, port, timeout=timeout) as client:
        client.hello()
        return client.stats()


def stream_server_stats(
    host: str, port: int, *, timeout: float = DEFAULT_TIMEOUT
) -> List[StatsPush]:
    """Subscribe and collect the full pushed window stream of one run.

    Blocks until the server's shared run ends (its final frame closes
    the stream); returns every non-final STATS_PUSH in push order. The
    frames are entirely virtual-axis data, so two runs of the same
    configuration return byte-identical payloads — the over-the-wire
    acceptance check of docs/observability.md.
    """
    with NetClient(host, port, timeout=timeout) as client:
        client.hello()
        client.subscribe_stats()
        return list(client.iter_stats())


def fetch_scripted_session(
    host: str,
    port: int,
    session_index: int,
    *,
    per_session: int = 1,
    workflow_type: str = "mixed",
    policy: Optional[str] = None,
    accel: Optional[float] = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> Tuple[str, List[QueryRecord], Detach]:
    """Run one scripted session over TCP; returns (id, records, summary)."""
    with NetClient(host, port, timeout=timeout) as client:
        client.hello()
        progress = client.attach_scripted(
            session_index,
            per_session=per_session,
            workflow_type=workflow_type,
            policy=policy,
            accel=accel,
        )
        records, summary = client.collect()
        return progress.session_id, records, summary


def replay_workflow(
    host: str,
    port: int,
    workflow: Workflow,
    *,
    name: Optional[str] = None,
    accel: Optional[float] = None,
    session_index: int = 0,
    timeout: float = DEFAULT_TIMEOUT,
) -> Tuple[str, List[QueryRecord], Detach]:
    """Drive a client-mode session with a pre-generated workflow.

    The scripted replay client: every interaction crosses the wire, the
    server fires it on the think-time grid, and the records that come
    back are byte-identical to a serial in-process run of the same
    workflow (``benchmarks/bench_net.py`` checks this). Against a
    shared-engine server the same call claims timeline slot
    ``session_index`` and rides the turn protocol transparently.
    """
    with NetClient(host, port, timeout=timeout) as client:
        client.hello()
        progress = client.attach_client(
            name=name or workflow.name,
            workflow_type=workflow.workflow_type.value,
            accel=accel,
            session_index=session_index,
        )
        for interaction in workflow.interactions:
            client.send_interaction(interaction)
        client.detach()
        records, summary = client.collect()
        return progress.session_id, records, summary


def records_csv_text(records: List[QueryRecord]) -> str:
    """The Table-1 detailed CSV of reassembled records, as a string."""
    buffer = io.StringIO()
    DetailedReport(records).to_csv(buffer)
    return buffer.getvalue()


def scripted_csv_over_tcp(
    host: str,
    port: int,
    session_index: int,
    *,
    per_session: int = 1,
    workflow_type: str = "mixed",
    policy: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> Tuple[str, str]:
    """(session id, detailed CSV) of one scripted session fetched over TCP.

    The byte-equivalence acceptance path: this CSV must equal the
    corresponding in-process ``repro serve`` session's
    ``SessionResult.csv_text()`` exactly.
    """
    session_id, records, _ = fetch_scripted_session(
        host,
        port,
        session_index,
        per_session=per_session,
        workflow_type=workflow_type,
        policy=policy,
        timeout=timeout,
    )
    return session_id, records_csv_text(records)
