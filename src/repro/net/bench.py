"""The loopback acceptance harness shared by ``repro bench-net`` and CI.

One function, :func:`run_net_bench`, performs the network front-end's
acceptance checks (§3's frontend↔engine loop, with the wire in the
middle) against an in-process reference:

1. **scripted byte-equivalence** — every scripted TCP session's
   reassembled detailed CSV equals the in-process ``repro serve``
   session's bytes;
2. **client-driven replay equivalence** — session 0's first workflow,
   sent interaction by interaction over the wire, reproduces the serial
   records for that workflow;
3. **policy determinism over TCP** — a markov session fetched twice is
   byte-identical, and identical to the in-process policy run;
4. **overhead diagnostics** — wall time over TCP vs in-process and the
   per-query round-trip cost (never gated: wall time is machine noise).

Both entry points — the ``repro bench-net`` CLI command and
``benchmarks/bench_net.py`` (CI) — render the same
:class:`NetBenchResult`, so the equivalence criterion lives in exactly
one place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.net.client import (
    fetch_scripted_session,
    records_csv_text,
    replay_workflow,
)
from repro.net.server import ServerThread, TcpSessionServer
from repro.workflow.spec import WorkflowType


@dataclass
class NetBenchResult:
    """Outcome of one loopback acceptance run."""

    engine: str
    #: (session_id, byte-identical?, query count) per scripted session.
    scripted: List[Tuple[str, bool, int]] = field(default_factory=list)
    replay_workflow_name: str = ""
    replay_ok: bool = False
    markov_repeat_ok: bool = False
    markov_in_process_ok: bool = False
    in_process_wall: float = 0.0
    tcp_wall: float = 0.0

    @property
    def total_queries(self) -> int:
        return sum(queries for _, _, queries in self.scripted)

    @property
    def per_query_overhead_ms(self) -> float:
        if not self.total_queries:
            return float("nan")
        return (
            (self.tcp_wall - self.in_process_wall)
            / self.total_queries
            * 1000.0
        )

    @property
    def ok(self) -> bool:
        return (
            bool(self.scripted)
            and all(identical for _, identical, _ in self.scripted)
            and self.replay_ok
            and self.markov_repeat_ok
            and self.markov_in_process_ok
        )


def run_net_bench(
    ctx,
    engine: str = "idea-sim",
    sessions: int = 4,
    *,
    per_session: int = 1,
    workflow_type: WorkflowType = WorkflowType.MIXED,
) -> NetBenchResult:
    """Run the full loopback acceptance suite; see the module docstring."""
    from repro.server import SessionManager

    result = NetBenchResult(engine=engine)

    started = time.perf_counter()
    reference = SessionManager.for_engine(
        ctx, engine, sessions,
        per_session=per_session, workflow_type=workflow_type,
    ).run()
    result.in_process_wall = time.perf_counter() - started

    # sessions scripted fetches + markov × 2 + one client-driven replay.
    server = TcpSessionServer(ctx, engine, max_sessions=sessions + 3)
    with ServerThread(server) as (host, port):
        started = time.perf_counter()
        for index, expected in enumerate(reference):
            _, records, _ = fetch_scripted_session(
                host, port, index,
                per_session=per_session,
                workflow_type=workflow_type.value,
            )
            result.scripted.append((
                expected.session_id,
                records_csv_text(records) == expected.csv_text(),
                expected.num_queries,
            ))
        result.tcp_wall = time.perf_counter() - started

        workflow = reference[0].spec.workflows[0]
        result.replay_workflow_name = workflow.name
        _, replay_records, _ = replay_workflow(host, port, workflow)
        expected_records = [
            record
            for record in reference[0].records
            if record.workflow == workflow.name
        ]
        result.replay_ok = records_csv_text(replay_records) == records_csv_text(
            expected_records
        )

        _, first, _ = fetch_scripted_session(
            host, port, 0, per_session=per_session, policy="markov"
        )
        _, second, _ = fetch_scripted_session(
            host, port, 0, per_session=per_session, policy="markov"
        )
        result.markov_repeat_ok = (
            records_csv_text(first) == records_csv_text(second)
        )
        in_process_markov = SessionManager.for_engine(
            ctx, engine, 1, per_session=per_session, policy="markov"
        ).run()
        result.markov_in_process_ok = (
            records_csv_text(first) == in_process_markov[0].csv_text()
        )
    return result


def render_net_bench(result: NetBenchResult) -> List[str]:
    """The human-readable check lines both entry points print."""

    def mark(condition: bool, text: str) -> str:
        return ("PASS: " if condition else "FAIL: ") + text

    lines = []
    for session_id, identical, queries in result.scripted:
        lines.append(mark(
            identical,
            f"{session_id}: scripted TCP report byte-identical "
            f"({queries} queries)",
        ))
    lines.append(mark(
        result.replay_ok,
        f"client-driven wire replay of {result.replay_workflow_name!r} "
        f"byte-identical to the serial records",
    ))
    lines.append(mark(
        result.markov_repeat_ok,
        "markov session over TCP byte-identical across two fetches",
    ))
    lines.append(mark(
        result.markov_in_process_ok,
        "markov session over TCP byte-identical to in-process run",
    ))
    lines.append("")
    lines.append(
        f"wall: in-process {result.in_process_wall:.3f}s, over TCP "
        f"{result.tcp_wall:.3f}s for {result.total_queries} queries "
        f"({result.per_query_overhead_ms:+.3f} ms round-trip overhead "
        f"per query)"
    )
    return lines
