"""The loopback acceptance harness shared by ``repro bench-net`` and CI.

:func:`run_net_bench` performs the isolated network front-end's
acceptance checks (§3's frontend↔engine loop, with the wire in the
middle) against an in-process reference:

1. **scripted byte-equivalence** — every scripted TCP session's
   reassembled detailed CSV equals the in-process ``repro serve``
   session's bytes;
2. **client-driven replay equivalence** — session 0's first workflow,
   sent interaction by interaction over the wire, reproduces the serial
   records for that workflow;
3. **policy determinism over TCP** — a markov session fetched twice is
   byte-identical, and identical to the in-process policy run;
4. **overhead diagnostics** — wall time over TCP vs in-process and the
   per-query round-trip cost (never gated: wall time is machine noise).

:func:`run_shared_net_bench` is the shared-engine counterpart (the
paper's headline contention scenario, served over the v2 turn
protocol): every session of a shared loopback run — scripted clients
*and* a client-driven wire replay — must reassemble reports
**byte-identical** to the in-process ``repro serve --share-engine``
run.

:func:`run_remote_bench` is remote load generation: it spawns N real
``repro connect`` client *processes* against one shared-engine server
(loopback by default, or any remote ``host:port``) and aggregates
their client-side CSVs into one deterministic contention report —
many real processes, one shared simulated engine, same bytes every
run.

All entry points — the ``repro bench-net`` CLI command and
``benchmarks/bench_net.py`` (CI) — render the same result objects, so
each acceptance criterion lives in exactly one place.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.common.clock import perf_seconds
from repro.common.errors import BenchmarkError
from repro.common.log import get_logger
from repro.net.client import (
    fetch_scripted_session,
    records_csv_text,
    replay_workflow,
)
from repro.net.server import ServerThread, TcpSessionServer
from repro.workflow.spec import WorkflowType

_log = get_logger("net.bench")


@dataclass
class NetBenchResult:
    """Outcome of one loopback acceptance run."""

    engine: str
    #: (session_id, byte-identical?, query count) per scripted session.
    scripted: List[Tuple[str, bool, int]] = field(default_factory=list)
    replay_workflow_name: str = ""
    replay_ok: bool = False
    markov_repeat_ok: bool = False
    markov_in_process_ok: bool = False
    in_process_wall: float = 0.0
    tcp_wall: float = 0.0

    @property
    def total_queries(self) -> int:
        return sum(queries for _, _, queries in self.scripted)

    @property
    def per_query_overhead_ms(self) -> float:
        if not self.total_queries:
            return float("nan")
        return (
            (self.tcp_wall - self.in_process_wall)
            / self.total_queries
            * 1000.0
        )

    @property
    def ok(self) -> bool:
        return (
            bool(self.scripted)
            and all(identical for _, identical, _ in self.scripted)
            and self.replay_ok
            and self.markov_repeat_ok
            and self.markov_in_process_ok
        )


def run_net_bench(
    ctx,
    engine: str = "idea-sim",
    sessions: int = 4,
    *,
    per_session: int = 1,
    workflow_type: WorkflowType = WorkflowType.MIXED,
) -> NetBenchResult:
    """Run the full loopback acceptance suite; see the module docstring."""
    from repro.server import SessionManager

    result = NetBenchResult(engine=engine)

    started = perf_seconds()
    reference = SessionManager.for_engine(
        ctx, engine, sessions,
        per_session=per_session, workflow_type=workflow_type,
    ).run()
    result.in_process_wall = perf_seconds() - started

    # sessions scripted fetches + markov × 2 + one client-driven replay.
    server = TcpSessionServer(ctx, engine, max_sessions=sessions + 3)
    with ServerThread(server) as (host, port):
        started = perf_seconds()
        for index, expected in enumerate(reference):
            _, records, _ = fetch_scripted_session(
                host, port, index,
                per_session=per_session,
                workflow_type=workflow_type.value,
            )
            result.scripted.append((
                expected.session_id,
                records_csv_text(records) == expected.csv_text(),
                expected.num_queries,
            ))
        result.tcp_wall = perf_seconds() - started

        workflow = reference[0].spec.workflows[0]
        result.replay_workflow_name = workflow.name
        _, replay_records, _ = replay_workflow(host, port, workflow)
        expected_records = [
            record
            for record in reference[0].records
            if record.workflow == workflow.name
        ]
        result.replay_ok = records_csv_text(replay_records) == records_csv_text(
            expected_records
        )

        _, first, _ = fetch_scripted_session(
            host, port, 0, per_session=per_session, policy="markov"
        )
        _, second, _ = fetch_scripted_session(
            host, port, 0, per_session=per_session, policy="markov"
        )
        result.markov_repeat_ok = (
            records_csv_text(first) == records_csv_text(second)
        )
        in_process_markov = SessionManager.for_engine(
            ctx, engine, 1, per_session=per_session, policy="markov"
        ).run()
        result.markov_in_process_ok = (
            records_csv_text(first) == in_process_markov[0].csv_text()
        )
    return result


# ----------------------------------------------------------------------
# Shared-engine serving over TCP (v2 turn protocol)
# ----------------------------------------------------------------------

@dataclass
class SharedNetBenchResult:
    """Outcome of the shared-engine loopback acceptance run."""

    engine: str
    #: (session_id, byte-identical?, query count) per scripted session.
    scripted: List[Tuple[str, bool, int]] = field(default_factory=list)
    #: Session replayed client-driven over the wire in the second pass.
    replay_session: str = ""
    #: Replayed session AND its scripted neighbors all byte-identical.
    replay_ok: bool = False
    replay_skipped: bool = False

    @property
    def ok(self) -> bool:
        return (
            bool(self.scripted)
            and all(identical for _, identical, _ in self.scripted)
            and (self.replay_ok or self.replay_skipped)
        )


def _shared_server(ctx, engine, sessions, per_session, workflow_type,
                   **kwargs) -> TcpSessionServer:
    return TcpSessionServer(
        ctx,
        engine,
        share_engine=True,
        max_sessions=sessions,
        per_session=per_session,
        workflow_type=workflow_type,
        **kwargs,
    )


def _concurrent_sessions(jobs) -> List[str]:
    """Run one blocking client job per session concurrently; CSVs in order.

    ``jobs`` maps session index → zero-arg callable returning that
    session's reassembled detailed CSV. All clients of a shared run must
    be live at once (the run starts at the attach barrier), hence one
    thread each.
    """
    results: dict = {}
    failures: List[BaseException] = []

    def run(index, job):
        try:
            results[index] = job()
        except BaseException as error:  # noqa: BLE001 - reraised below
            failures.append(error)

    threads = {
        index: threading.Thread(target=run, args=(index, job), daemon=True)
        for index, job in jobs.items()
    }
    for thread in threads.values():
        thread.start()
    for thread in threads.values():
        thread.join(300)
    stuck = sorted(i for i, thread in threads.items() if thread.is_alive())
    if stuck:
        raise BenchmarkError(
            f"shared-run client(s) {stuck} still blocked after 300s"
        )
    if failures:
        raise failures[0]
    return [results[index] for index in sorted(results)]


def run_shared_net_bench(
    ctx,
    engine: str = "idea-sim",
    sessions: int = 2,
    *,
    per_session: int = 1,
    workflow_type: WorkflowType = WorkflowType.MIXED,
) -> SharedNetBenchResult:
    """The shared-engine acceptance suite; see the module docstring."""
    from repro.server import SessionManager

    result = SharedNetBenchResult(engine=engine)
    reference = SessionManager.for_engine(
        ctx, engine, sessions,
        per_session=per_session, workflow_type=workflow_type,
        share_engine=True,
    ).run()

    def scripted_job(host, port, index):
        def job():
            _, records, _ = fetch_scripted_session(
                host, port, index,
                per_session=per_session,
                workflow_type=workflow_type.value,
            )
            return records_csv_text(records)
        return job

    # Pass 1: every session a scripted TCP client, attached concurrently.
    server = _shared_server(ctx, engine, sessions, per_session, workflow_type)
    with ServerThread(server) as (host, port):
        csvs = _concurrent_sessions(
            {i: scripted_job(host, port, i) for i in range(sessions)}
        )
    for index, expected in enumerate(reference):
        result.scripted.append((
            expected.session_id,
            csvs[index] == expected.csv_text(),
            expected.num_queries,
        ))

    # Pass 2: session 0 client-driven — its scripted workflow crosses the
    # wire interaction by interaction — the rest scripted. Equivalence
    # requires the client session to be exactly one workflow, so this
    # pass only runs at per_session=1.
    if per_session != 1:
        result.replay_skipped = True
        return result
    workflow = reference[0].spec.workflows[0]
    result.replay_session = reference[0].session_id
    server = _shared_server(ctx, engine, sessions, per_session, workflow_type)
    with ServerThread(server) as (host, port):
        def replay_job():
            _, records, _ = replay_workflow(
                host, port, workflow, session_index=0
            )
            return records_csv_text(records)

        jobs = {0: replay_job}
        for index in range(1, sessions):
            jobs[index] = scripted_job(host, port, index)
        replay_csvs = _concurrent_sessions(jobs)
    result.replay_ok = all(
        replay_csvs[index] == reference[index].csv_text()
        for index in range(sessions)
    )
    return result


# ----------------------------------------------------------------------
# Remote load generation (bench-net --remote)
# ----------------------------------------------------------------------

@dataclass
class RemoteNetBenchResult:
    """Outcome of a remote load-generation run (client processes)."""

    clients: int
    #: The aggregated contention report (per-session CSVs under banners).
    report: str
    runs: int = 1
    #: Loopback only: every repeated run produced identical bytes.
    deterministic: Optional[bool] = None
    #: Loopback only: the aggregate equals the in-process shared run.
    matches_reference: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.deterministic is not False and (
            self.matches_reference is not False
        )


def aggregate_session_reports(named: Sequence[Tuple[str, str]]) -> str:
    """Concatenate per-session CSVs under stable banners (one report).

    The same ``== session-id ==`` banner format the golden corpus uses,
    so aggregated remote reports diff cleanly against in-process ones.
    """
    return "".join(f"== {name} ==\n{text}" for name, text in named)


def _client_env() -> dict:
    """Subprocess environment with this package importable."""
    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    return env


def _spawn_clients(
    host: str,
    port: int,
    clients: int,
    per_session: int,
    workflow_type: WorkflowType,
    timeout: float,
    trace_dir: Optional[Path] = None,
) -> str:
    """Run N real ``repro connect`` processes; aggregate their CSVs."""
    env = _client_env()
    with tempfile.TemporaryDirectory(prefix="repro-bench-net-") as tmp:
        outs = [Path(tmp) / f"session-{i}.csv" for i in range(clients)]
        procs = []
        try:
            for index, out in enumerate(outs):
                argv = [
                    sys.executable, "-m", "repro.cli", "connect",
                    f"{host}:{port}",
                    "--session", str(index),
                    "--per-session", str(per_session),
                    "--workflow-type", workflow_type.value,
                    "--timeout", str(timeout),
                    "--out", str(out),
                ]
                if trace_dir is not None:
                    # One trace JSONL per client process, stamped with
                    # the run/host context from the server's HELLO —
                    # the inputs of `repro trace merge`.
                    argv += [
                        "--trace",
                        str(trace_dir / f"client-{index}.jsonl"),
                    ]
                procs.append(subprocess.Popen(
                    argv,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                    env=env,
                ))
            _log.debug(
                "spawned remote load clients",
                clients=clients, host=host, port=port,
            )
            failures = []
            for index, proc in enumerate(procs):
                try:
                    output, _ = proc.communicate(timeout=timeout)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    output, _ = proc.communicate()
                    _log.warning(
                        "remote load client timed out",
                        client=index, timeout=timeout,
                    )
                    failures.append(f"client {index} timed out:\n{output}")
                    continue
                if proc.returncode != 0:
                    _log.warning(
                        "remote load client failed",
                        client=index, returncode=proc.returncode,
                    )
                    failures.append(
                        f"client {index} exited {proc.returncode}:\n{output}"
                    )
            if failures:
                raise BenchmarkError(
                    "remote load generation failed: " + "\n".join(failures)
                )
        finally:
            for proc in procs:
                if proc.poll() is None:  # pragma: no cover - cleanup
                    proc.kill()
        # Bytes, not read_text: universal-newline translation would fold
        # the CSVs' \r\n and silently break byte-equality with the
        # in-process report.
        return aggregate_session_reports([
            (f"session-{i}", outs[i].read_bytes().decode("utf-8"))
            for i in range(clients)
        ])


def remote_run_id(
    engine: str,
    clients: int,
    per_session: int,
    workflow_type: WorkflowType,
) -> str:
    """Deterministic correlation id of a remote load-generation run.

    A stable digest of the run configuration, so every process of the
    run (server + N clients) stamps the *same* id — and a repeat of the
    same configuration stamps it again, keeping merged traces
    byte-deterministic.
    """
    from repro.common.fingerprint import stable_digest

    return stable_digest({
        "kind": "remote-bench",
        "engine": engine,
        "clients": clients,
        "per_session": per_session,
        "workflow_type": workflow_type.value,
    })


def run_remote_bench(
    ctx,
    engine: str = "idea-sim",
    clients: int = 3,
    *,
    per_session: int = 1,
    workflow_type: WorkflowType = WorkflowType.MIXED,
    host: Optional[str] = None,
    port: Optional[int] = None,
    runs: int = 2,
    timeout: float = 300.0,
    trace_dir: Optional[Path] = None,
) -> RemoteNetBenchResult:
    """Remote load generation: N client processes, one shared engine.

    With ``host`` given, the clients target that already-running
    ``repro serve --tcp --share-engine`` server (real remote load; one
    run, no reference available). Without it, a loopback shared server
    is started per run, the whole thing repeats ``runs`` times, and the
    aggregated report is checked for byte-determinism across runs and
    byte-equality with the in-process ``serve --share-engine`` report.

    ``trace_dir`` makes every client process write its own trace JSONL
    (``client-N.jsonl``) there, stamped with the shared run id — the
    per-host inputs ``repro trace merge`` stitches into one timeline.
    Repeated loopback runs overwrite the same files; the traces are
    virtual-axis data, so the bytes are identical run to run anyway.
    """
    if clients < 1:
        raise BenchmarkError(f"need at least one client, got {clients!r}")
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    if host is not None:
        if port is None:
            raise BenchmarkError("remote host needs a port")
        report = _spawn_clients(
            host, port, clients, per_session, workflow_type, timeout,
            trace_dir=trace_dir,
        )
        return RemoteNetBenchResult(clients=clients, report=report, runs=1)

    from repro.server import SessionManager

    reference = SessionManager.for_engine(
        ctx, engine, clients,
        per_session=per_session, workflow_type=workflow_type,
        share_engine=True,
    ).run()
    expected = aggregate_session_reports(
        [(r.session_id, r.csv_text()) for r in reference]
    )
    run_id = (
        remote_run_id(engine, clients, per_session, workflow_type)
        if trace_dir is not None
        else ""
    )
    reports = []
    for _ in range(max(1, runs)):
        server = _shared_server(
            ctx, engine, clients, per_session, workflow_type,
            run_id=run_id,
        )
        with ServerThread(server) as (bound_host, bound_port):
            reports.append(_spawn_clients(
                bound_host, bound_port, clients, per_session,
                workflow_type, timeout, trace_dir=trace_dir,
            ))
    return RemoteNetBenchResult(
        clients=clients,
        report=reports[0],
        runs=len(reports),
        deterministic=all(report == reports[0] for report in reports),
        matches_reference=(reports[0] == expected),
    )


def render_net_bench(result: NetBenchResult) -> List[str]:
    """The human-readable check lines both entry points print."""

    def mark(condition: bool, text: str) -> str:
        return ("PASS: " if condition else "FAIL: ") + text

    lines = []
    for session_id, identical, queries in result.scripted:
        lines.append(mark(
            identical,
            f"{session_id}: scripted TCP report byte-identical "
            f"({queries} queries)",
        ))
    lines.append(mark(
        result.replay_ok,
        f"client-driven wire replay of {result.replay_workflow_name!r} "
        f"byte-identical to the serial records",
    ))
    lines.append(mark(
        result.markov_repeat_ok,
        "markov session over TCP byte-identical across two fetches",
    ))
    lines.append(mark(
        result.markov_in_process_ok,
        "markov session over TCP byte-identical to in-process run",
    ))
    lines.append("")
    lines.append(
        f"wall: in-process {result.in_process_wall:.3f}s, over TCP "
        f"{result.tcp_wall:.3f}s for {result.total_queries} queries "
        f"({result.per_query_overhead_ms:+.3f} ms round-trip overhead "
        f"per query)"
    )
    return lines


def render_shared_net_bench(result: SharedNetBenchResult) -> List[str]:
    """Check lines for the shared-engine (turn protocol) suite."""

    def mark(condition: bool, text: str) -> str:
        return ("PASS: " if condition else "FAIL: ") + text

    lines = []
    for session_id, identical, queries in result.scripted:
        lines.append(mark(
            identical,
            f"{session_id}: shared-TCP report byte-identical to "
            f"in-process serve --share-engine ({queries} queries)",
        ))
    if result.replay_skipped:
        lines.append(
            "skip: shared wire-replay equivalence needs per_session=1"
        )
    else:
        lines.append(mark(
            result.replay_ok,
            f"shared run with {result.replay_session} replayed over the "
            f"wire (client-driven) byte-identical, neighbors unchanged",
        ))
    return lines


def render_remote_bench(result: RemoteNetBenchResult) -> List[str]:
    """Check lines for the remote load-generation mode."""

    def mark(condition: bool, text: str) -> str:
        return ("PASS: " if condition else "FAIL: ") + text

    lines = [
        f"remote load generation: {result.clients} client processes, "
        f"{result.runs} run(s), aggregated report "
        f"{len(result.report)} bytes"
    ]
    if result.deterministic is not None:
        lines.append(mark(
            result.deterministic,
            f"aggregated report byte-identical across {result.runs} "
            f"repeated runs",
        ))
    if result.matches_reference is not None:
        lines.append(mark(
            result.matches_reference,
            "aggregated report byte-identical to the in-process "
            "serve --share-engine report",
        ))
    return lines
