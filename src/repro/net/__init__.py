"""Network front-end: TCP protocol server, client library, and REPL.

IDEBench's premise is an IDE *frontend* issuing unpredictable query
streams against an engine under think-time constraints (§3). Until this
package, the reproduction could only simulate that loop in-process; the
network front-end exposes the session server over a socket so real
frontends — or remote load generators — can drive simulated engines
interactively:

* :mod:`repro.net.protocol` — the versioned wire protocol: length-
  prefixed JSON frames carrying a typed message catalog (HELLO, ATTACH,
  SUBMIT_VIZ, INTERACT, RECORD, PROGRESS, DETACH, ERROR) that round-trips
  every :class:`~repro.workflow.spec.VizSpec`, interaction, and
  :class:`~repro.bench.driver.QueryRecord` through the existing
  ``to_dict``/``from_dict`` machinery;
* :mod:`repro.net.server` — :class:`TcpSessionServer`, the asyncio TCP
  server mapping each connection to a
  :class:`~repro.bench.driver.SessionDriver` (scripted, policy-driven, or
  client-driven via the
  :class:`~repro.workflow.policy.ExternalInteractionSource` adapter) and
  streaming per-viz :class:`~repro.net.protocol.Record` frames back, with
  :class:`~repro.server.clock.AsyncClock` wall pacing; plus
  :class:`ServerThread` for loopback embedding;
* :mod:`repro.net.client` — the blocking client library
  (:class:`NetClient`, :func:`fetch_scripted_session`,
  :func:`replay_workflow`) used by ``repro connect``, the benchmarks and
  the tests;
* :mod:`repro.net.repl` — the interactive ``repro connect --repl`` shell.

Determinism contract (docs/protocol.md): a scripted client over loopback
produces a session report **byte-identical** to the equivalent
in-process ``repro serve`` run — the subsystem's determinism guarantee
extended across the wire, enforced by ``benchmarks/bench_net.py`` and
the golden transcript in ``tests/golden/``.
"""

from repro.net.bench import (
    NetBenchResult,
    RemoteNetBenchResult,
    SharedNetBenchResult,
    aggregate_session_reports,
    render_net_bench,
    render_remote_bench,
    render_shared_net_bench,
    run_net_bench,
    run_remote_bench,
    run_shared_net_bench,
)
from repro.net.client import (
    NetClient,
    fetch_scripted_session,
    replay_workflow,
    scripted_csv_over_tcp,
)
from repro.net.protocol import (
    CAP_SHARED_ENGINE,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Attach,
    Barrier,
    Detach,
    ErrorMessage,
    Hello,
    Interact,
    Progress,
    Record,
    SubmitViz,
    TurnDone,
    TurnGrant,
    decode_message,
    encode_message,
    record_from_dict,
    record_to_dict,
    version_error,
)
from repro.net.server import ServerThread, TcpSessionServer

__all__ = [
    "CAP_SHARED_ENGINE",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "Attach",
    "Barrier",
    "Detach",
    "ErrorMessage",
    "Hello",
    "Interact",
    "NetBenchResult",
    "NetClient",
    "Progress",
    "Record",
    "RemoteNetBenchResult",
    "ServerThread",
    "SharedNetBenchResult",
    "SubmitViz",
    "TcpSessionServer",
    "TurnDone",
    "TurnGrant",
    "aggregate_session_reports",
    "decode_message",
    "encode_message",
    "fetch_scripted_session",
    "record_from_dict",
    "record_to_dict",
    "render_net_bench",
    "render_remote_bench",
    "render_shared_net_bench",
    "replay_workflow",
    "run_net_bench",
    "run_remote_bench",
    "run_shared_net_bench",
    "scripted_csv_over_tcp",
    "version_error",
]
