"""Async pacing clock: real-time / accelerated stepping for sessions.

The paper's original driver runs against live systems in real time —
think times are genuinely slept (§4.6). The reproduction's virtual clock
collapses that waiting so a full run finishes in seconds. The session
server supports both, and a continuum in between, through one mechanism:

*simulation time is always exact; wall time only gates when events are
allowed to happen.*

A :class:`AsyncClock` maps virtual seconds onto wall seconds through an
acceleration factor (``accel=1`` → real time, ``accel=60`` → one virtual
minute per wall second). Before a session steps an event at virtual time
``t``, the server awaits :meth:`sleep_until`, which sleeps until the wall
deadline ``origin + t / accel`` — but the session's own
:class:`~repro.common.clock.VirtualClock` is still advanced to exactly
``t``. Engines therefore compute with precise event times in every mode,
which is why paced runs produce byte-identical reports to unpaced ones
(docs/server.md).
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.common.errors import ConfigurationError


class AsyncClock:
    """Wall-clock pacer for virtual-time event schedules.

    Parameters
    ----------
    accel:
        Virtual seconds per wall second; must be positive. ``1.0`` paces
        the simulation to real time (like the original IDEBench driver),
        larger values accelerate it.
    """

    def __init__(self, accel: float = 1.0):
        if accel <= 0:
            raise ConfigurationError(f"accel must be positive, got {accel!r}")
        self.accel = float(accel)
        self._origin: Optional[float] = None

    async def sleep_until(self, virtual_time: float) -> None:
        """Sleep until the wall deadline of ``virtual_time`` (no-op if past).

        The first call anchors virtual time 0 to the current wall time,
        so the first event is never delayed by setup cost.
        """
        if self._origin is None:
            # repro: allow[DET001] -- pacing only: anchors wall sleep scheduling; no result, report or trace byte derives from this read
            self._origin = time.monotonic() - virtual_time / self.accel
        target = self._origin + virtual_time / self.accel
        # repro: allow[DET001] -- pacing only: computes how long to sleep; results are a pure function of virtual time regardless of accel
        delay = target - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
