"""Constant-memory record handling for population-scale serving (§2.2).

The serving stack's default bookkeeping keeps every evaluated
:class:`~repro.bench.driver.QueryRecord` in memory (per-session
``SessionStream.records``) so per-session detailed reports can be
rendered byte-for-byte after the run. That is the right trade for tens
of sessions and the wrong one for 10⁵: an open-system run at population
scale (ROADMAP: "100k+ concurrent sessions in one process") must hold
memory proportional to the *active* population, never the total one.

This module holds the two pieces that make that possible:

* :class:`RecordSpool` — a streaming record sink. Each record is
  serialized the instant its deadline is evaluated and appended to a
  JSONL spill file (one canonical-JSON object per line, the same
  interchange discipline as :mod:`repro.obs.sink`), then dropped from
  memory. ``path=None`` counts records without writing anywhere — the
  aggregate-only mode the scale benchmark uses.
* :class:`ServingAggregate` — the incremental aggregation of a serving
  run: every quantity the load reports
  (:mod:`repro.server.report`) derive from a full record list is folded
  one record at a time — counts and maxima exactly, float sums in
  record-arrival order — so ``repro bench-sessions`` /
  ``bench-adaptive`` cells and the ``repro serve`` aggregate report are
  produced without ever materializing all sessions.

Both are deterministic: a spill file's bytes and an aggregate's derived
metrics are pure functions of the run configuration, because records
arrive in global virtual-time order (the scheduler's grant order) and
serialization is canonical JSON.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.common.errors import BenchmarkError
from repro.common.fingerprint import canonical_json
from repro.obs.timeseries import get_timeseries


def _record_to_dict(record) -> dict:
    # Lazy import: repro.net pulls in repro.server at package import
    # time, so a module-level import here would be circular.
    from repro.net.protocol import record_to_dict

    return record_to_dict(record)


class RecordSpool:
    """Stream per-session query records to a JSONL spill file.

    One line per record::

        {"record": {...Table-1 row...}, "session": "session-17"}

    written in binary mode (no platform newline translation), in the
    exact order deadlines were evaluated — the global virtual-time
    order. With ``path=None`` the spool only counts: records flow
    through attached aggregates and are then dropped, which is the
    cheapest constant-memory configuration.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path is not None else None
        self.count = 0
        self._closed = False
        self._handle = open(self.path, "wb") if self.path is not None else None

    def append(self, session_id: str, record) -> None:
        """Spill one record; called from the session's metric stream."""
        if self._closed:
            raise BenchmarkError(f"record spool {self.path} is closed")
        if self._handle is not None:
            line = canonical_json(
                {"record": _record_to_dict(record), "session": session_id}
            )
            self._handle.write(line.encode("utf-8"))
            self._handle.write(b"\n")
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True

    def __enter__(self) -> "RecordSpool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_spool(path: Union[str, Path]) -> Iterator[Tuple[str, object]]:
    """Stream ``(session_id, QueryRecord)`` pairs back out of a spill file.

    The inverse of :meth:`RecordSpool.append`: yields records one at a
    time in spill order, never holding the whole file. Post-hoc analysis
    of a population-scale run (per-session slicing, re-aggregation)
    starts here.
    """
    import json

    from repro.net.protocol import record_from_dict

    with open(path, "rb") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
                yield str(entry["session"]), record_from_dict(entry["record"])
            except (ValueError, KeyError, TypeError) as exc:
                raise BenchmarkError(
                    f"{path}:{lineno}: not a record-spool line: {exc}"
                )


class ServingAggregate:
    """Incremental, constant-size aggregation of one serving run.

    Folds records and session completions as they happen; exposes the
    derived metrics the server reports are built from. Counts, integer
    sums and maxima are exact regardless of fold order; the float
    latency sum folds in record-arrival order (global virtual-time
    order), which is deterministic for a fixed configuration.
    """

    def __init__(self) -> None:
        self.num_queries = 0
        self.tr_violations = 0
        self.missing_bins_sum = 0.0
        self.latency_sum = 0.0
        self.answered = 0
        #: Latest evaluated deadline (virtual seconds) — the run's makespan.
        self.virtual_makespan = 0.0
        self.sessions_served = 0
        self.sessions_departed = 0
        self.total_steps = 0
        self.interaction_counts: Dict[str, int] = {}
        #: Concurrency accounting: sessions currently live, and the
        #: high-water mark — the "O(active sessions)" the memory model
        #: is bounded by.
        self.active_sessions = 0
        self.peak_active = 0

    # -- folding hooks --------------------------------------------------
    def observe_record(self, session_id: str, record) -> None:
        """Fold one evaluated record (metric-stream subscriber)."""
        self.num_queries += 1
        if record.tr_violated:
            self.tr_violations += 1
        else:
            self.latency_sum += record.end_time - record.start_time
            self.answered += 1
        self.missing_bins_sum += record.metrics.missing_bins
        if record.end_time > self.virtual_makespan:
            self.virtual_makespan = record.end_time
        series = get_timeseries()
        if series.enabled:
            # In spool mode the aggregate is the record fan-out point, so
            # the windowed series (repro.obs.timeseries) folds here too.
            series.observe_record(
                record.end_time,
                record.tr_violated,
                latency=record.end_time - record.start_time,
            )

    def session_started(self) -> None:
        self.active_sessions += 1
        if self.active_sessions > self.peak_active:
            self.peak_active = self.active_sessions

    def session_finished(
        self,
        steps: int,
        interaction_counts: Dict[str, int],
        departed: bool = False,
    ) -> None:
        """Fold a finished session's footprint, then let it be freed."""
        self.active_sessions -= 1
        self.sessions_served += 1
        if departed:
            self.sessions_departed += 1
        self.total_steps += steps
        for kind, count in sorted(interaction_counts.items()):
            self.interaction_counts[kind] = (
                self.interaction_counts.get(kind, 0) + count
            )

    # -- derived metrics (the report columns) ---------------------------
    @property
    def pct_tr_violated(self) -> float:
        if self.num_queries == 0:
            return float("nan")
        return 100.0 * self.tr_violations / self.num_queries

    @property
    def mean_missing_bins(self) -> float:
        if self.num_queries == 0:
            return float("nan")
        return self.missing_bins_sum / self.num_queries

    @property
    def mean_latency_answered(self) -> float:
        if self.answered == 0:
            return float("nan")
        return self.latency_sum / self.answered

    @property
    def queries_per_virtual_second(self) -> float:
        if self.virtual_makespan <= 0:
            return float("nan")
        return self.num_queries / self.virtual_makespan

    @property
    def total_interactions(self) -> int:
        return sum(self.interaction_counts.values())


def render_aggregate_report(
    aggregate: ServingAggregate,
    title: str = "aggregate serving report",
    spill_path: Optional[Union[str, Path]] = None,
) -> str:
    """The ``repro serve`` report for spooled (constant-memory) runs.

    Replaces the per-session table — 10⁵ rows would be noise — with the
    run-level §4.8 metrics. Every number is derived from virtual time
    and counts, so the rendering is deterministic.
    """
    pct = aggregate.pct_tr_violated
    latency = aggregate.mean_latency_answered
    lines = [
        title,
        "=" * len(title),
        f"sessions served      : {aggregate.sessions_served}"
        + (
            f" ({aggregate.sessions_departed} departed mid-run)"
            if aggregate.sessions_departed
            else ""
        ),
        f"peak active sessions : {aggregate.peak_active}",
        f"queries evaluated    : {aggregate.num_queries}",
        f"%TR violated         : "
        + ("—" if math.isnan(pct) else f"{pct:.1f}%"),
        f"mean latency (ans.)  : "
        + ("—" if math.isnan(latency) else f"{latency:.3f}s"),
        f"virtual makespan     : {aggregate.virtual_makespan:.1f}s",
        f"driver activity      : {aggregate.total_steps} steps, "
        f"{aggregate.total_interactions} interactions",
    ]
    if spill_path is not None:
        lines.append(f"records spilled to   : {spill_path}")
    return "\n".join(lines)
