"""Session-server reporting: per-session tables and the load report.

Two renderings:

* :func:`render_session_table` — one row per served session (the §4.8
  summary metrics, scoped per session), printed by ``repro serve``;
* the ``repro bench-sessions`` **load report** — a sessions × engine
  sweep measuring how per-session quality and aggregate throughput
  evolve as more simulated users share the process (and, in shared
  mode, one engine). Cells persist through the runtime
  :class:`~repro.runtime.store.ArtifactStore` under content keys, so
  re-running a sweep with ``--cache-dir`` restores finished cells
  exactly like ``repro run-matrix`` does.

Determinism split, mirroring :mod:`repro.runtime.report`: the CSV holds
only virtual-time quantities (stable bytes for a given configuration);
wall-clock measurements are diagnostics, printed but never persisted
into the deterministic columns.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.common.clock import perf_seconds
from repro.common.fingerprint import CACHE_SCHEMA_VERSION
from repro.common.fingerprint import fmt_cell as _fmt
from repro.server.manager import ArrivalProcess, OpenSystemManager, SessionManager
from repro.server.session import SessionResult
from repro.server.spool import RecordSpool, ServingAggregate
from repro.workflow.policy import interaction_mix
from repro.workflow.spec import WorkflowType

def _dash(value: float, spec: str) -> str:
    """Format a possibly-NaN float for a terminal table (NaN → em dash).

    The deterministic CSVs route every float through
    :func:`~repro.common.fingerprint.fmt_cell`; this is the matching
    guard for the human-readable renders, so an empty cell (a run with
    zero records, a cell whose every query violated its TR) prints
    ``—`` instead of a platform-spelled ``nan``.
    """
    if math.isnan(value):
        return "—"
    return format(value, spec)


#: Columns of the deterministic load-report CSV.
BENCH_COLUMNS = (
    "engine",
    "sessions",
    "mode",
    "workflows_per_session",
    "num_queries",
    "pct_tr_violated",
    "mean_missing_bins",
    "mean_latency_answered",
    "virtual_makespan",
    "queries_per_virtual_second",
)


# ----------------------------------------------------------------------
# Per-session table (repro serve)
# ----------------------------------------------------------------------

def session_makespan(result: SessionResult) -> float:
    """Virtual seconds from session start to its last evaluated deadline."""
    if not result.records:
        return 0.0
    return max(r.end_time for r in result.records)


def render_session_table(
    results: Sequence[SessionResult], title: str = "session server report"
) -> str:
    """One row per session: §4.8 summary metrics plus the virtual makespan."""
    header = (
        f"{'session':<12} {'workflows':>9} {'queries':>7} {'%TR viol':>9} "
        f"{'missing':>8} {'MRE med':>8} {'makespan':>9}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for result in results:
        if not result.records:
            # A churned-out session can depart before any deadline was
            # evaluated — nothing to summarize, but it still served.
            lines.append(
                f"{result.session_id:<12} {len(result.spec.workflows):>9} "
                f"{0:>7} {'—':>9} {'—':>8} {'—':>8} {0.0:>8.1f}s"
            )
            continue
        summary = result.summary()
        mre = "—" if math.isnan(summary.mre_median) else f"{summary.mre_median:.3f}"
        lines.append(
            f"{result.session_id:<12} {len(result.spec.workflows):>9} "
            f"{summary.num_queries:>7} {summary.pct_tr_violated:>8.1f}% "
            f"{summary.mean_missing_bins:>8.3f} {mre:>8} "
            f"{session_makespan(result):>8.1f}s"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Live --follow output (repro serve)
# ----------------------------------------------------------------------

#: Session count at or above which ``--follow`` switches from a line per
#: evaluated query to periodic aggregate lines. A population-scale run
#: (10⁵ sessions) evaluates millions of deadlines; per-query output
#: would dominate the run's wall time and scroll the terminal useless.
FOLLOW_AGGREGATE_THRESHOLD = 1000


class FollowPrinter:
    """Rate-limited live output for ``repro serve --follow``.

    Below :data:`FOLLOW_AGGREGATE_THRESHOLD` expected sessions this
    prints the familiar per-query line for every record, unchanged. At
    or above it, the printer switches to *aggregate mode*: at most one
    summary line per ``interval`` wall seconds (records seen, TR
    violations, latest virtual time), plus a final line on
    :meth:`close` so short runs still show their totals.

    ``clock`` and ``out`` are injectable for tests; the default clock is
    :func:`repro.common.clock.perf_seconds` (swappable process-wide via
    ``set_perf_source``) — rate limiting is a wall-clock courtesy to the
    terminal and never touches virtual time or report bytes.
    """

    def __init__(
        self,
        expected_sessions: int,
        *,
        threshold: int = FOLLOW_AGGREGATE_THRESHOLD,
        interval: float = 1.0,
        out=None,
        clock: Callable[[], float] = perf_seconds,
    ):
        self.aggregate_mode = expected_sessions >= threshold
        self.interval = interval
        self.records_seen = 0
        self.tr_violations = 0
        self.lines_emitted = 0
        self._latest_time = 0.0
        self._last_emit: Optional[float] = None
        self._out = out
        self._clock = clock

    def __call__(self, session_id: str, record) -> None:
        """The ``on_record`` subscriber: one call per evaluated deadline."""
        self.records_seen += 1
        if record.tr_violated:
            self.tr_violations += 1
        if record.end_time > self._latest_time:
            self._latest_time = record.end_time
        if not self.aggregate_mode:
            status = "VIOLATED" if record.tr_violated else "ok"
            self._emit(
                f"  [{record.end_time:8.2f}s] {session_id} "
                f"q{record.query_id} {record.viz_name}: {status}"
            )
            return
        now = self._clock()
        if self._last_emit is None or now - self._last_emit >= self.interval:
            self._last_emit = now
            self._emit(self._aggregate_line())

    def close(self) -> None:
        """Emit the final aggregate line (aggregate mode only)."""
        if self.aggregate_mode and self.records_seen:
            self._emit(self._aggregate_line())

    def _aggregate_line(self) -> str:
        return (
            f"  [follow] {self.records_seen} queries "
            f"({self.tr_violations} TR violated) "
            f"through t={self._latest_time:.1f}s virtual"
        )

    def _emit(self, line: str) -> None:
        self.lines_emitted += 1
        print(line, file=self._out)


# ----------------------------------------------------------------------
# Load report (repro bench-sessions)
# ----------------------------------------------------------------------

@dataclass
class SessionBenchCell:
    """One cell of the load report: (engine, session count, mode)."""

    engine: str
    sessions: int
    mode: str  # "isolated" | "shared"
    workflows_per_session: int
    num_queries: int
    pct_tr_violated: float
    mean_missing_bins: float
    #: Mean end-to-end latency of answered queries, virtual seconds.
    mean_latency_answered: float
    #: Virtual time from serving start to the last evaluated deadline.
    virtual_makespan: float
    #: Wall seconds of the serving run that produced this cell — a
    #: diagnostic (never part of the deterministic CSV); cache-restored
    #: cells carry the original run's measurement.
    wall_seconds: float = 0.0
    from_cache: bool = False

    @property
    def queries_per_virtual_second(self) -> float:
        if self.virtual_makespan <= 0:
            return float("nan")
        return self.num_queries / self.virtual_makespan

    def payload(self) -> dict:
        """The persistable (deterministic + diagnostic) cell content."""
        return {
            "engine": self.engine,
            "sessions": self.sessions,
            "mode": self.mode,
            "workflows_per_session": self.workflows_per_session,
            "num_queries": self.num_queries,
            "pct_tr_violated": self.pct_tr_violated,
            "mean_missing_bins": self.mean_missing_bins,
            "mean_latency_answered": self.mean_latency_answered,
            "virtual_makespan": self.virtual_makespan,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_payload(cls, payload: dict, from_cache: bool = False) -> "SessionBenchCell":
        return cls(from_cache=from_cache, **payload)


def bench_cell_key(
    settings,
    engine: str,
    sessions: int,
    mode: str,
    per_session: int,
    workflow_type: WorkflowType,
) -> tuple:
    """Artifact-store key of one load-report cell.

    Everything the cell's deterministic output depends on goes in; wall
    time and machine identity stay out, exactly like
    :meth:`~repro.runtime.spec.RunSpec.fingerprint`.
    """
    return (
        "session-bench",
        CACHE_SCHEMA_VERSION,
        settings.to_dict(),
        engine,
        sessions,
        mode,
        per_session,
        workflow_type.value,
    )


def _cell_from_results(
    engine: str,
    sessions: int,
    mode: str,
    per_session: int,
    results: Sequence[SessionResult],
    wall_seconds: float,
) -> SessionBenchCell:
    records = [record for result in results for record in result.records]
    answered = [r for r in records if not r.tr_violated]
    latencies = [r.end_time - r.start_time for r in answered]
    return SessionBenchCell(
        engine=engine,
        sessions=sessions,
        mode=mode,
        workflows_per_session=per_session,
        num_queries=len(records),
        pct_tr_violated=(
            100.0 * sum(r.tr_violated for r in records) / len(records)
            if records
            else float("nan")
        ),
        mean_missing_bins=(
            sum(r.metrics.missing_bins for r in records) / len(records)
            if records
            else float("nan")
        ),
        mean_latency_answered=(
            sum(latencies) / len(latencies) if latencies else float("nan")
        ),
        virtual_makespan=max((r.end_time for r in records), default=0.0),
        wall_seconds=wall_seconds,
    )


def _cell_from_aggregate(
    engine: str,
    sessions: int,
    mode: str,
    per_session: int,
    aggregate: ServingAggregate,
    wall_seconds: float,
) -> SessionBenchCell:
    """Build a load-report cell from an incremental aggregate.

    Counts and maxima match :func:`_cell_from_results` exactly; the
    float means fold in record-arrival order instead of grouped-by-
    session order, so they can differ from the retained path in the
    last ulp. Incremental cells therefore never enter the artifact
    store (the cache stays byte-pure).
    """
    return SessionBenchCell(
        engine=engine,
        sessions=sessions,
        mode=mode,
        workflows_per_session=per_session,
        num_queries=aggregate.num_queries,
        pct_tr_violated=aggregate.pct_tr_violated,
        mean_missing_bins=aggregate.mean_missing_bins,
        mean_latency_answered=aggregate.mean_latency_answered,
        virtual_makespan=aggregate.virtual_makespan,
        wall_seconds=wall_seconds,
    )


def run_session_bench(
    ctx,
    engines: Sequence[str],
    session_counts: Sequence[int],
    *,
    per_session: int = 2,
    workflow_type: WorkflowType = WorkflowType.MIXED,
    modes: Sequence[str] = ("isolated", "shared"),
    incremental: bool = False,
    store=None,
    reuse_results: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SessionBenchCell]:
    """Run the sessions × engine sweep; cells restore from ``store``.

    ``incremental=True`` folds each cell through a
    :class:`~repro.server.spool.ServingAggregate` instead of retaining
    every record — memory stays O(active sessions) per cell, which is
    what makes population-scale sweeps feasible. Integer columns match
    the retained path exactly; float means can differ in the last ulp
    (fold order), so incremental cells bypass the artifact store.
    """
    unknown_modes = [mode for mode in modes if mode not in ("isolated", "shared")]
    if unknown_modes:
        # Fail before any cell runs: a typo must not cost a sweep.
        raise ValueError(
            f"unknown serving mode(s) {unknown_modes!r} "
            f"(choose from: isolated, shared)"
        )
    cells: List[SessionBenchCell] = []
    for engine_name in engines:
        for sessions in session_counts:
            for mode in modes:
                key = bench_cell_key(
                    ctx.settings, engine_name, sessions, mode, per_session,
                    workflow_type,
                )
                if store is not None and reuse_results and not incremental:
                    payload = store.get(key)
                    if payload is not None:
                        cells.append(
                            SessionBenchCell.from_payload(payload, from_cache=True)
                        )
                        if progress:
                            progress(
                                f"[cache] {engine_name} ×{sessions} {mode}"
                            )
                        continue
                manager = SessionManager.for_engine(
                    ctx,
                    engine_name,
                    sessions,
                    per_session=per_session,
                    workflow_type=workflow_type,
                    share_engine=(mode == "shared"),
                    spool=RecordSpool() if incremental else None,
                )
                results = manager.run()
                if incremental:
                    cell = _cell_from_aggregate(
                        engine_name, sessions, mode, per_session,
                        manager.aggregate, manager.wall_seconds,
                    )
                else:
                    cell = _cell_from_results(
                        engine_name, sessions, mode, per_session, results,
                        manager.wall_seconds,
                    )
                if store is not None and not incremental:
                    store.put(key, cell.payload())
                cells.append(cell)
                if progress:
                    progress(
                        f"[ran {manager.wall_seconds:6.2f}s] "
                        f"{engine_name} ×{sessions} {mode}"
                    )
    return cells


def bench_rows(cells: Sequence[SessionBenchCell]) -> List[List[object]]:
    """Deterministic CSV rows (no wall-clock columns), in sweep order."""
    return [
        [
            cell.engine,
            cell.sessions,
            cell.mode,
            cell.workflows_per_session,
            cell.num_queries,
            _fmt(cell.pct_tr_violated),
            _fmt(cell.mean_missing_bins),
            _fmt(cell.mean_latency_answered),
            _fmt(cell.virtual_makespan),
            _fmt(cell.queries_per_virtual_second),
        ]
        for cell in cells
    ]


def write_session_bench_csv(
    path: Union[str, Path, io.TextIOBase], cells: Sequence[SessionBenchCell]
) -> None:
    """Write the load report CSV (stable bytes for a configuration)."""
    if isinstance(path, (str, Path)):
        with open(path, "w", encoding="utf-8", newline="") as handle:
            _write(handle, cells)
    else:
        _write(path, cells)


def _write(handle, cells: Sequence[SessionBenchCell]) -> None:
    writer = csv.writer(handle)
    writer.writerow(BENCH_COLUMNS)
    for row in bench_rows(cells):
        writer.writerow(row)


def session_bench_csv_text(cells: Sequence[SessionBenchCell]) -> str:
    """The load report CSV as a string (byte-identity comparisons)."""
    buffer = io.StringIO()
    _write(buffer, cells)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Adaptive/churn report (repro bench-adaptive)
# ----------------------------------------------------------------------

#: Interaction kinds reported as mix columns, in CSV order.
MIX_KINDS = ("create_viz", "set_filter", "select_bins", "link", "discard_viz")

#: Columns of the deterministic adaptive-report CSV.
ADAPTIVE_COLUMNS = (
    "engine",
    "policy",
    "sessions",
    "churn",
    "workflows_per_session",
    "sessions_served",
    "sessions_departed",
    "num_queries",
    "pct_tr_violated",
    "mean_latency_answered",
    "virtual_makespan",
) + tuple(f"mix_{kind}" for kind in MIX_KINDS)


@dataclass
class AdaptiveBenchCell:
    """One cell of the adaptive report: (policy, session count, churn)."""

    engine: str
    policy: str
    sessions: int
    churn: str  # "closed" | "open"
    workflows_per_session: int
    #: Sessions that actually ran (open cells serve what the Poisson
    #: schedule yields within the horizon, capped at ``sessions``).
    sessions_served: int
    #: Sessions that left mid-run, abandoning in-flight queries.
    sessions_departed: int
    num_queries: int
    pct_tr_violated: float
    mean_latency_answered: float
    virtual_makespan: float
    #: Fraction of fired interactions per kind — the behavioral
    #: fingerprint that separates adaptive policies from replay.
    mix: dict
    wall_seconds: float = 0.0
    from_cache: bool = False

    def payload(self) -> dict:
        data = {k: v for k, v in sorted(self.__dict__.items())
                if k != "from_cache"}
        return data

    @classmethod
    def from_payload(cls, payload: dict, from_cache: bool = False) -> "AdaptiveBenchCell":
        return cls(from_cache=from_cache, **payload)


def adaptive_cell_key(
    settings,
    engine: str,
    policy: str,
    sessions: int,
    churn: str,
    per_session: int,
    workflow_type: WorkflowType,
    arrival_rate: float,
    horizon: float,
    residence: Optional[float],
    share_engine: bool,
) -> tuple:
    """Artifact-store key of one adaptive-report cell (content-addressed).

    Closed cells never consult the arrival process, so its parameters are
    normalized out of their keys — tuning ``--arrivals``/``--residence``
    must not invalidate cached closed-system sweeps.
    """
    if churn == "closed":
        arrival_rate = horizon = residence = None
    return (
        "adaptive-bench",
        CACHE_SCHEMA_VERSION,
        settings.to_dict(),
        engine,
        policy,
        sessions,
        churn,
        per_session,
        workflow_type.value,
        arrival_rate,
        horizon,
        residence,
        share_engine,
    )


def _adaptive_cell(
    engine: str,
    policy: str,
    sessions: int,
    churn: str,
    per_session: int,
    results: Sequence[SessionResult],
    wall_seconds: float,
) -> AdaptiveBenchCell:
    records = [record for result in results for record in result.records]
    answered = [r for r in records if not r.tr_violated]
    latencies = [r.end_time - r.start_time for r in answered]
    counts: dict = {}
    for result in results:
        for kind, count in sorted(result.interaction_counts.items()):
            counts[kind] = counts.get(kind, 0) + count
    return AdaptiveBenchCell(
        engine=engine,
        policy=policy,
        sessions=sessions,
        churn=churn,
        workflows_per_session=per_session,
        sessions_served=len(results),
        sessions_departed=sum(r.departed_at is not None for r in results),
        num_queries=len(records),
        pct_tr_violated=(
            100.0 * sum(r.tr_violated for r in records) / len(records)
            if records
            else float("nan")
        ),
        mean_latency_answered=(
            sum(latencies) / len(latencies) if latencies else float("nan")
        ),
        virtual_makespan=max((r.end_time for r in records), default=0.0),
        mix=interaction_mix(counts),
        wall_seconds=wall_seconds,
    )


def _adaptive_cell_from_aggregate(
    engine: str,
    policy: str,
    sessions: int,
    churn: str,
    per_session: int,
    aggregate: ServingAggregate,
    wall_seconds: float,
) -> AdaptiveBenchCell:
    """Build an adaptive-report cell from an incremental aggregate.

    Same contract as :func:`_cell_from_aggregate`: integer columns and
    the interaction mix match :func:`_adaptive_cell` exactly, float
    means fold in record-arrival order.
    """
    return AdaptiveBenchCell(
        engine=engine,
        policy=policy,
        sessions=sessions,
        churn=churn,
        workflows_per_session=per_session,
        sessions_served=aggregate.sessions_served,
        sessions_departed=aggregate.sessions_departed,
        num_queries=aggregate.num_queries,
        pct_tr_violated=aggregate.pct_tr_violated,
        mean_latency_answered=aggregate.mean_latency_answered,
        virtual_makespan=aggregate.virtual_makespan,
        mix=interaction_mix(aggregate.interaction_counts),
        wall_seconds=wall_seconds,
    )


def run_adaptive_bench(
    ctx,
    engine: str,
    policies: Sequence[str],
    session_counts: Sequence[int],
    *,
    per_session: int = 1,
    workflow_type: WorkflowType = WorkflowType.MIXED,
    churn_modes: Sequence[str] = ("closed", "open"),
    arrival_rate: float = 0.1,
    horizon: float = 60.0,
    residence: Optional[float] = 30.0,
    share_engine: bool = False,
    incremental: bool = False,
    store=None,
    reuse_results: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[AdaptiveBenchCell]:
    """Run the sessions × policy × churn sweep; cells restore from ``store``.

    ``closed`` cells serve exactly ``sessions`` concurrent users from
    time zero to workload completion; ``open`` cells draw a Poisson
    arrival schedule (``arrival_rate``/``horizon``/``residence``, capped
    at ``sessions``) and let users churn mid-run. Every cell's CSV row is
    deterministic, so cached restores are byte-identical to fresh runs.

    ``incremental=True`` aggregates each cell without retaining records
    (see :func:`run_session_bench`); such cells bypass the store.
    """
    unknown = [mode for mode in churn_modes if mode not in ("closed", "open")]
    if unknown:
        raise ValueError(
            f"unknown churn mode(s) {unknown!r} (choose from: closed, open)"
        )
    if "open" in churn_modes:
        # Validate the arrival parameters before any cell runs — a bad
        # rate must not surface halfway through an expensive sweep.
        ArrivalProcess(
            arrival_rate, horizon,
            seed=ctx.settings.seed, mean_residence=residence, max_sessions=1,
        )
    cells: List[AdaptiveBenchCell] = []
    for policy in policies:
        for sessions in session_counts:
            for churn in churn_modes:
                key = adaptive_cell_key(
                    ctx.settings, engine, policy, sessions, churn,
                    per_session, workflow_type, arrival_rate, horizon,
                    residence, share_engine,
                )
                if store is not None and reuse_results and not incremental:
                    payload = store.get(key)
                    if payload is not None:
                        cells.append(
                            AdaptiveBenchCell.from_payload(payload, from_cache=True)
                        )
                        if progress:
                            progress(f"[cache] {policy} ×{sessions} {churn}")
                        continue
                spool = RecordSpool() if incremental else None
                if churn == "closed":
                    manager = SessionManager.for_engine(
                        ctx, engine, sessions,
                        per_session=per_session,
                        workflow_type=workflow_type,
                        share_engine=share_engine,
                        policy=None if policy == "scripted" else policy,
                        spool=spool,
                    )
                else:
                    arrivals = ArrivalProcess(
                        arrival_rate, horizon,
                        seed=ctx.settings.seed,
                        mean_residence=residence,
                        max_sessions=sessions,
                    )
                    manager = OpenSystemManager.for_engine(
                        ctx, engine, arrivals,
                        policy=None if policy == "scripted" else policy,
                        per_session=per_session,
                        workflow_type=workflow_type,
                        share_engine=share_engine,
                        spool=spool,
                    )
                results = manager.run()
                wall = manager.wall_seconds
                if incremental:
                    cell = _adaptive_cell_from_aggregate(
                        engine, policy, sessions, churn, per_session,
                        manager.aggregate, wall,
                    )
                else:
                    cell = _adaptive_cell(
                        engine, policy, sessions, churn, per_session,
                        results, wall,
                    )
                if store is not None and not incremental:
                    store.put(key, cell.payload())
                cells.append(cell)
                if progress:
                    progress(f"[ran {wall:6.2f}s] {policy} ×{sessions} {churn}")
    return cells


def adaptive_rows(cells: Sequence[AdaptiveBenchCell]) -> List[List[object]]:
    """Deterministic CSV rows (no wall-clock columns), in sweep order."""
    return [
        [
            cell.engine,
            cell.policy,
            cell.sessions,
            cell.churn,
            cell.workflows_per_session,
            cell.sessions_served,
            cell.sessions_departed,
            cell.num_queries,
            _fmt(cell.pct_tr_violated),
            _fmt(cell.mean_latency_answered),
            _fmt(cell.virtual_makespan),
        ]
        + [_fmt(cell.mix.get(kind, 0.0)) for kind in MIX_KINDS]
        for cell in cells
    ]


def write_adaptive_bench_csv(
    path: Union[str, Path, io.TextIOBase], cells: Sequence[AdaptiveBenchCell]
) -> None:
    """Write the adaptive report CSV (stable bytes for a configuration)."""
    if isinstance(path, (str, Path)):
        with open(path, "w", encoding="utf-8", newline="") as handle:
            _write_adaptive(handle, cells)
    else:
        _write_adaptive(path, cells)


def _write_adaptive(handle, cells: Sequence[AdaptiveBenchCell]) -> None:
    writer = csv.writer(handle)
    writer.writerow(ADAPTIVE_COLUMNS)
    for row in adaptive_rows(cells):
        writer.writerow(row)


def adaptive_bench_csv_text(cells: Sequence[AdaptiveBenchCell]) -> str:
    """The adaptive report CSV as a string (byte-identity comparisons)."""
    buffer = io.StringIO()
    _write_adaptive(buffer, cells)
    return buffer.getvalue()


def render_adaptive_bench(
    cells: Sequence[AdaptiveBenchCell], title: str = "adaptive session report"
) -> str:
    """Plain-text sessions × policy × churn table for terminal output."""
    header = (
        f"{'policy':<12} {'sessions':>8} {'churn':<7} {'served':>6} "
        f"{'left':>5} {'queries':>7} {'%TR viol':>9} {'filter%':>8} "
        f"{'select%':>8} {'wall':>7} {'cached':>6}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for cell in cells:
        lines.append(
            f"{cell.policy:<12} {cell.sessions:>8} {cell.churn:<7} "
            f"{cell.sessions_served:>6} {cell.sessions_departed:>5} "
            f"{cell.num_queries:>7} {_dash(cell.pct_tr_violated, '8.1f'):>8}% "
            f"{100 * cell.mix.get('set_filter', 0.0):>7.1f}% "
            f"{100 * cell.mix.get('select_bins', 0.0):>7.1f}% "
            f"{cell.wall_seconds:>6.2f}s {'yes' if cell.from_cache else 'no':>6}"
        )
    return "\n".join(lines)


def render_session_bench(
    cells: Sequence[SessionBenchCell], title: str = "session load report"
) -> str:
    """Plain-text sessions × engine table for terminal output."""
    header = (
        f"{'engine':<14} {'sessions':>8} {'mode':<9} {'queries':>7} "
        f"{'%TR viol':>9} {'latency':>8} {'q/vs':>7} {'wall':>7} {'cached':>6}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for cell in cells:
        latency = (
            "—"
            if math.isnan(cell.mean_latency_answered)
            else f"{cell.mean_latency_answered:.2f}s"
        )
        lines.append(
            f"{cell.engine:<14} {cell.sessions:>8} {cell.mode:<9} "
            f"{cell.num_queries:>7} {_dash(cell.pct_tr_violated, '8.1f'):>8}% "
            f"{latency:>8} {_dash(cell.queries_per_virtual_second, '7.2f'):>7} "
            f"{cell.wall_seconds:>6.2f}s {'yes' if cell.from_cache else 'no':>6}"
        )
    return "\n".join(lines)
