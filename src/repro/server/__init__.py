"""Async session server: concurrent simulated IDE sessions (§2.2, §4.4).

The paper benchmarks *one* simulated user at a time; a deployed
interactive-exploration backend faces many at once (the Purich et al.
adaptive-benchmark direction — see PAPERS.md). This subpackage serves N
think-time-paced sessions concurrently from one process:

* :mod:`repro.server.session` — :class:`SessionSpec` (one user's seeded
  workflow suite or adaptive policy), :class:`SessionStream` (live
  per-session metric stream), :class:`SessionResult` (per-session
  Table-1/Fig.-5 reports plus the session's interaction mix);
* :mod:`repro.server.manager` — :class:`SessionManager`, the asyncio
  multiplexer stepping sessions in deterministic global virtual-time
  order, in *isolated* (byte-identical to serial) or *shared-engine*
  (fair-scheduled contention) topology; :class:`ArrivalProcess` and
  :class:`OpenSystemManager`, the open-system mode where seeded Poisson
  arrivals spawn sessions mid-run and churn them out again;
* :mod:`repro.server.clock` — :class:`AsyncClock`, wall-clock pacing for
  real-time/accelerated serving without losing determinism;
* :mod:`repro.server.report` — per-session tables, the
  ``bench-sessions`` sessions × engine load report and the
  ``bench-adaptive`` sessions × policy × churn report, persisted through
  the runtime artifact store.

Adaptive user models themselves (replay/markov/uncertainty) live in
:mod:`repro.workflow.policy`. Usage, guarantees and clock modes are
documented in docs/server.md; ``examples/session_server_demo.py`` is a
runnable three-session tour.
"""

from repro.server.clock import AsyncClock
from repro.server.manager import (
    ArrivalProcess,
    OpenSystemManager,
    RateSchedule,
    SessionAbandoned,
    SessionArrival,
    SessionManager,
    SessionTurnHook,
    make_session,
    resolve_scheduler,
    serial_baseline,
    session_specs,
)
from repro.server.spool import (
    RecordSpool,
    ServingAggregate,
    iter_spool,
    render_aggregate_report,
)
from repro.server.report import (
    FOLLOW_AGGREGATE_THRESHOLD,
    AdaptiveBenchCell,
    FollowPrinter,
    SessionBenchCell,
    adaptive_bench_csv_text,
    render_adaptive_bench,
    render_session_bench,
    render_session_table,
    run_adaptive_bench,
    run_session_bench,
    session_bench_csv_text,
    write_adaptive_bench_csv,
    write_session_bench_csv,
)
from repro.server.session import (
    SessionResult,
    SessionSpec,
    SessionStream,
    total_records,
)

__all__ = [
    "AdaptiveBenchCell",
    "ArrivalProcess",
    "AsyncClock",
    "FOLLOW_AGGREGATE_THRESHOLD",
    "FollowPrinter",
    "OpenSystemManager",
    "RateSchedule",
    "RecordSpool",
    "ServingAggregate",
    "SessionAbandoned",
    "SessionArrival",
    "SessionBenchCell",
    "SessionManager",
    "SessionResult",
    "SessionSpec",
    "SessionStream",
    "SessionTurnHook",
    "iter_spool",
    "make_session",
    "render_aggregate_report",
    "resolve_scheduler",
    "adaptive_bench_csv_text",
    "render_adaptive_bench",
    "render_session_bench",
    "render_session_table",
    "run_adaptive_bench",
    "run_session_bench",
    "serial_baseline",
    "session_bench_csv_text",
    "session_specs",
    "total_records",
    "write_adaptive_bench_csv",
    "write_session_bench_csv",
]
