"""The asyncio session server: N concurrent simulated IDE sessions.

IDEBench models interactive exploration as think-time-paced sessions
issuing concurrent queries (§2.2, §4.4). The serial driver simulates one
such session at a time; :class:`SessionManager` serves *many at once*
from a single process, the way a deployed exploration backend would face
its users. Each session is a :class:`~repro.bench.driver.SessionDriver`
(the steppable event machine factored out of the serial driver), run as
an asyncio task and coordinated by a :class:`_VirtualTimeline` that
grants step turns in **global virtual-time order** — the discrete-event
merge of all sessions' event queues, with ties broken by session index,
so a run's event order (and thus its output) is a pure function of its
inputs.

Two engine topologies:

* **isolated** (default): every session gets its own engine instance over
  the *shared* dataset/oracle/profiles. Sessions do not contend, so each
  session's report is byte-identical to running its workflows through the
  serial :class:`~repro.bench.driver.BenchmarkDriver` — the server's
  acceptance guarantee (``repro serve --verify`` and
  ``benchmarks/bench_session_server.py`` check it).
* **shared** (``engine=...``): all sessions share one engine instance and
  contend for its capacity. The engine's scheduler runs the
  :class:`~repro.engines.scheduler.FairSessionPolicy` with one group per
  session, so capacity splits fairly across sessions first and across
  each session's concurrent queries second. Results differ from serial
  (contention is the point) but remain deterministic: the same
  configuration always produces the same bytes.

Wall-clock pacing is orthogonal: with ``accel`` set, an
:class:`~repro.server.clock.AsyncClock` sleeps each event to its wall
deadline while the simulation still advances to exact virtual times —
paced runs are byte-identical to unpaced ones (docs/server.md).
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.driver import BenchmarkDriver, QueryRecord, SessionDriver
from repro.common.clock import VirtualClock
from repro.common.config import BenchmarkSettings
from repro.common.errors import BenchmarkError
from repro.common.rng import derive_session_seed
from repro.engines.scheduler import FairSessionPolicy, WeightedSharingPolicy
from repro.server.clock import AsyncClock
from repro.server.session import SessionResult, SessionSpec, SessionStream
from repro.workflow.generator import WorkflowGenerator
from repro.workflow.spec import WorkflowType

#: Sentinel: session is mid-step or has not declared its next event yet.
_UNKNOWN = object()


class _VirtualTimeline:
    """Grants step turns in global (time, session index) order.

    Every session task declares its next event time, then awaits its
    turn; the turn goes to the globally minimal ``(time, index)`` pair,
    but only once *every* live session has declared — a session that is
    mid-step (or about to re-declare) holds the timeline, because its
    next event might precede everyone else's. Exactly one session steps
    at a time, and the grant order is deterministic.
    """

    def __init__(self, pacer: Optional[AsyncClock] = None):
        self._cond = asyncio.Condition()
        self._declared: Dict[int, object] = {}
        self._pacer = pacer

    def register(self, index: int) -> None:
        """Pre-register a session so no grants happen before it declares."""
        self._declared[index] = _UNKNOWN

    async def acquire(self, index: int, event_time: float) -> None:
        """Declare the session's next event and wait for its turn."""
        async with self._cond:
            self._declared[index] = event_time
            self._cond.notify_all()
            while not self._granted(index):
                await self._cond.wait()
            # Hold the timeline while stepping: nobody else may be granted
            # until this session declares its *next* event (or retires),
            # since that event could be earlier than any other pending one.
            self._declared[index] = _UNKNOWN
        if self._pacer is not None:
            await self._pacer.sleep_until(event_time)

    def _granted(self, index: int) -> bool:
        best: Optional[Tuple[float, int]] = None
        for key, value in self._declared.items():
            if value is _UNKNOWN:
                return False
            if best is None or (value, key) < best:
                best = (value, key)
        return best is not None and best[1] == index

    async def retire(self, index: int) -> None:
        """Remove a finished session from the timeline."""
        async with self._cond:
            self._declared.pop(index, None)
            self._cond.notify_all()


class SessionManager:
    """Multiplexes N simulated IDE sessions over shared engine state.

    Parameters
    ----------
    specs:
        The sessions to serve (unique ids).
    oracle, settings:
        Shared ground-truth oracle and benchmark settings.
    engines:
        Isolated mode — one *prepared or fresh* engine per spec (the
        manager prepares any engine that is not yet prepared). Mutually
        exclusive with ``engine``.
    engine:
        Shared mode — a single engine all sessions contend on. If its
        scheduler still runs the default
        :class:`~repro.engines.scheduler.WeightedSharingPolicy`, the
        manager installs :class:`~repro.engines.scheduler.FairSessionPolicy`
        (one group per session) before preparing it.
    accel:
        Optional wall-clock pacing: virtual seconds per wall second
        (``1.0`` = real time). ``None`` steps as fast as possible.
    on_record:
        Optional callback ``(session_id, record)`` subscribed to every
        session's metric stream.

    A manager is single-shot: :meth:`run` (or :meth:`run_async`) may be
    called once; per-session streams are available on :attr:`streams`
    while it runs, results come back as :class:`SessionResult` in spec
    order. :attr:`trace` records the global step order ``(virtual time,
    session id)`` for interleaving diagnostics.
    """

    def __init__(
        self,
        specs: Sequence[SessionSpec],
        oracle,
        settings: BenchmarkSettings,
        *,
        engines: Optional[Sequence] = None,
        engine=None,
        accel: Optional[float] = None,
        on_record: Optional[Callable[[str, QueryRecord], None]] = None,
    ):
        self._specs = list(specs)
        if not self._specs:
            raise BenchmarkError("session manager needs at least one session")
        ids = [spec.session_id for spec in self._specs]
        if len(set(ids)) != len(ids):
            raise BenchmarkError(f"duplicate session ids: {ids}")
        if (engines is None) == (engine is None):
            raise BenchmarkError(
                "pass exactly one of engines= (isolated) or engine= (shared)"
            )
        self.oracle = oracle
        self.settings = settings
        self.shared = engine is not None
        if self.shared:
            if isinstance(engine.scheduler.policy, WeightedSharingPolicy):
                engine.scheduler.set_policy(FairSessionPolicy())
            self._engines = [engine] * len(self._specs)
            self._shared_engine = engine
        else:
            engines = list(engines)
            if len(engines) != len(self._specs):
                raise BenchmarkError(
                    f"{len(self._specs)} sessions need {len(self._specs)} "
                    f"engines, got {len(engines)}"
                )
            self._engines = engines
            self._shared_engine = None
        self.accel = accel
        self.streams: Dict[str, SessionStream] = {}
        for spec in self._specs:
            stream = SessionStream(spec.session_id)
            if on_record is not None:
                stream.subscribe(on_record)
            self.streams[spec.session_id] = stream
        self.trace: List[Tuple[float, str]] = []
        self.wall_seconds: float = 0.0
        self._timeline = _VirtualTimeline(
            pacer=AsyncClock(accel) if accel is not None else None
        )
        self._ran = False

    # ------------------------------------------------------------------
    @property
    def specs(self) -> List[SessionSpec]:
        return list(self._specs)

    @property
    def num_sessions(self) -> int:
        return len(self._specs)

    # ------------------------------------------------------------------
    def run(self) -> List[SessionResult]:
        """Serve all sessions to completion (blocking wrapper)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> List[SessionResult]:
        """Serve all sessions concurrently; results in spec order."""
        if self._ran:
            raise BenchmarkError("a SessionManager can only run once")
        self._ran = True
        for engine in self._unique_engines():
            if not engine.is_prepared:
                engine.prepare()
        drivers = [
            SessionDriver(
                self._engines[index],
                self.oracle,
                self.settings,
                list(spec.workflows),
                session_id=spec.session_id,
                lifecycle=not self.shared,
                on_record=self.streams[spec.session_id].push,
            )
            for index, spec in enumerate(self._specs)
        ]
        for index in range(len(self._specs)):
            self._timeline.register(index)
        if self.shared:
            # The shared engine lives for the whole serving run (Listing
            # 1's lifecycle, once per service session, not per workflow).
            self._shared_engine.workflow_start()
        started = time.perf_counter()
        await asyncio.gather(
            *(
                self._run_session(index, driver)
                for index, driver in enumerate(drivers)
            )
        )
        self.wall_seconds = time.perf_counter() - started
        if self.shared:
            self._shared_engine.workflow_end()
            # Confine the serving run's mutation of the caller's engine:
            # without this, later tasks submitted outside the server would
            # silently inherit the last-stepped session's group.
            self._shared_engine.scheduler.set_group(None)
        return [
            SessionResult(spec, self.streams[spec.session_id].records)
            for spec in self._specs
        ]

    # ------------------------------------------------------------------
    async def _run_session(self, index: int, driver: SessionDriver) -> None:
        # Records flow through the driver's on_record hook (wired to the
        # session's stream at construction) the moment each deadline is
        # evaluated — step() is the only delivery path.
        spec = self._specs[index]
        try:
            while True:
                event_time = driver.next_event_time()
                if event_time is None:
                    break
                await self._timeline.acquire(index, event_time)
                self.trace.append((event_time, spec.session_id))
                if self.shared:
                    self._shared_engine.scheduler.set_group(spec.session_id)
                driver.step()
        finally:
            await self._timeline.retire(index)

    def _unique_engines(self) -> List:
        unique: List = []
        seen = set()
        for engine in self._engines:
            if id(engine) not in seen:
                seen.add(id(engine))
                unique.append(engine)
        return unique

    # ------------------------------------------------------------------
    @classmethod
    def for_engine(
        cls,
        ctx,
        engine_name: str,
        num_sessions: int,
        *,
        per_session: int = 2,
        workflow_type: WorkflowType = WorkflowType.MIXED,
        share_engine: bool = False,
        accel: Optional[float] = None,
        speculation: bool = False,
        normalized: bool = False,
        on_record: Optional[Callable[[str, QueryRecord], None]] = None,
    ) -> "SessionManager":
        """Build a manager from an :class:`ExperimentContext`.

        Sessions get deterministic per-session workflow suites via
        :func:`session_specs`; engines come from the engine registry over
        the context's shared dataset.
        """
        from repro.bench.experiments import make_engine

        settings = ctx.settings
        dataset = ctx.dataset(settings.data_size, normalized)
        oracle = ctx.oracle(settings.data_size, normalized)
        specs = session_specs(
            ctx, num_sessions, per_session=per_session, workflow_type=workflow_type
        )
        if share_engine:
            engine = make_engine(
                engine_name, dataset, settings, VirtualClock(), speculation
            )
            return cls(
                specs, oracle, settings, engine=engine, accel=accel,
                on_record=on_record,
            )
        engines = [
            make_engine(engine_name, dataset, settings, VirtualClock(), speculation)
            for _ in specs
        ]
        return cls(
            specs, oracle, settings, engines=engines, accel=accel,
            on_record=on_record,
        )


def session_specs(
    ctx,
    num_sessions: int,
    per_session: int = 2,
    workflow_type: WorkflowType = WorkflowType.MIXED,
) -> List[SessionSpec]:
    """Deterministic per-session workflow suites from a context.

    Session *i*'s suite is generated with the seed
    :func:`~repro.common.rng.derive_session_seed`\\ ``(root, i)`` over the
    context's column profiles — a pure function of ``(root seed, i)``,
    independent of how many sessions run or in what order they step.
    """
    if num_sessions < 1:
        raise BenchmarkError(f"need at least one session, got {num_sessions!r}")
    profiles = ctx.profiles(ctx.settings.data_size)
    specs: List[SessionSpec] = []
    for index in range(num_sessions):
        seed = derive_session_seed(ctx.settings.seed, index)
        generator = WorkflowGenerator(
            profiles, table=ctx.settings.dataset, seed=seed
        )
        workflows = tuple(generator.generate_suite(workflow_type, per_session))
        specs.append(
            SessionSpec(
                session_id=f"session-{index}", workflows=workflows, seed=seed
            )
        )
    return specs


def serial_baseline(
    ctx,
    engine_name: str,
    specs: Sequence[SessionSpec],
    *,
    speculation: bool = False,
    normalized: bool = False,
) -> List[SessionResult]:
    """Run each session's workflows through the serial driver.

    The reference the server's isolated mode is compared against: one
    fresh engine per session, stepped to completion by
    :class:`~repro.bench.driver.BenchmarkDriver`. Per-session detailed
    reports must be byte-identical to the server's.
    """
    from repro.bench.experiments import make_engine

    settings = ctx.settings
    dataset = ctx.dataset(settings.data_size, normalized)
    oracle = ctx.oracle(settings.data_size, normalized)
    results: List[SessionResult] = []
    for spec in specs:
        engine = make_engine(
            engine_name, dataset, settings, VirtualClock(), speculation
        )
        engine.prepare()
        driver = BenchmarkDriver(engine, oracle, settings)
        results.append(SessionResult(spec, driver.run_suite(list(spec.workflows))))
    return results
