"""The asyncio session server: N concurrent simulated IDE sessions.

IDEBench models interactive exploration as think-time-paced sessions
issuing concurrent queries (§2.2, §4.4). The serial driver simulates one
such session at a time; :class:`SessionManager` serves *many at once*
from a single process, the way a deployed exploration backend would face
its users. Each session is a :class:`~repro.bench.driver.SessionDriver`
(the steppable event machine factored out of the serial driver), run as
an asyncio task and coordinated by a :class:`_VirtualTimeline` that
grants step turns in **global virtual-time order** — the discrete-event
merge of all sessions' event queues, with ties broken by session index,
so a run's event order (and thus its output) is a pure function of its
inputs.

Two engine topologies:

* **isolated** (default): every session gets its own engine instance over
  the *shared* dataset/oracle/profiles. Sessions do not contend, so each
  session's report is byte-identical to running its workflows through the
  serial :class:`~repro.bench.driver.BenchmarkDriver` — the server's
  acceptance guarantee (``repro serve --verify`` and
  ``benchmarks/bench_session_server.py`` check it).
* **shared** (``engine=...``): all sessions share one engine instance and
  contend for its capacity. The engine's scheduler runs the
  :class:`~repro.engines.scheduler.FairSessionPolicy` with one group per
  session, so capacity splits fairly across sessions first and across
  each session's concurrent queries second. Results differ from serial
  (contention is the point) but remain deterministic: the same
  configuration always produces the same bytes.

Wall-clock pacing is orthogonal: with ``accel`` set, an
:class:`~repro.server.clock.AsyncClock` sleeps each event to its wall
deadline while the simulation still advances to exact virtual times —
paced runs are byte-identical to unpaced ones (docs/server.md).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.bench.driver import BenchmarkDriver, QueryRecord, SessionDriver
from repro.common.clock import VirtualClock, perf_seconds
from repro.common.config import BenchmarkSettings
from repro.common.errors import BenchmarkError
from repro.common.rng import derive_rng, derive_session_seed
from repro.engines.kernel_cache import kernel_cache
from repro.engines.scheduler import FairSessionPolicy, WeightedSharingPolicy
from repro.obs.metrics import get_metrics
from repro.obs.profile import STAGE_PENDING_STALL, get_profiler
from repro.obs.sink import RingBuffer
from repro.obs.timeseries import get_timeseries
from repro.obs.tracer import get_tracer
from repro.server.clock import AsyncClock
from repro.server.session import SessionResult, SessionSpec, SessionStream
from repro.server.spool import RecordSpool, ServingAggregate
from repro.workflow.generator import WorkflowGenerator
from repro.workflow.policy import InteractionPolicy, make_policy
from repro.workflow.spec import WorkflowType

#: Sentinel: session is mid-step or has not declared its next event yet.
_UNKNOWN = object()

#: Environment variable selecting the step scheduler implementation.
SCHEDULER_ENV = "REPRO_SCHEDULER"
#: The event-calendar scheduler: one loop, a heap of (time, index)
#: entries, O(log N) per grant. The default.
SCHEDULER_CALENDAR = "calendar"
#: The legacy task-per-session scheduler, kept for A/B equivalence runs.
SCHEDULER_TASKS = "tasks"

#: Entries a trace ring keeps when ``trace_capture=True`` (satellite of
#: the event-calendar work: an always-growing trace list at 10⁵ sessions
#: is a memory leak, so capture is opt-in and bounded).
DEFAULT_TRACE_CAPACITY = 65536


def resolve_scheduler(choice: Optional[str] = None) -> str:
    """Resolve the scheduler implementation to use.

    Explicit ``choice`` wins; otherwise the ``REPRO_SCHEDULER``
    environment variable; otherwise the calendar. Both managers run
    either implementation and produce byte-identical output (pinned by
    tests/test_scheduler_equivalence.py against the golden corpus).
    """
    value = choice if choice is not None else os.environ.get(
        SCHEDULER_ENV, SCHEDULER_CALENDAR
    )
    if value not in (SCHEDULER_CALENDAR, SCHEDULER_TASKS):
        raise BenchmarkError(
            f"unknown scheduler {value!r} "
            f"(choose {SCHEDULER_CALENDAR!r} or {SCHEDULER_TASKS!r})"
        )
    return value


def _make_trace_ring(trace_capture: Union[bool, int]) -> Optional[RingBuffer]:
    """Build the opt-in bounded step-trace ring (None = capture off)."""
    if trace_capture is False or trace_capture is None:
        return None
    if trace_capture is True:
        return RingBuffer(DEFAULT_TRACE_CAPACITY)
    return RingBuffer(int(trace_capture))


class SessionAbandoned(Exception):
    """Control-flow signal: a :class:`SessionTurnHook` retires its session.

    Raised by hook callbacks (remote client disconnected mid-turn, turn
    acknowledgement timed out, protocol violation) to make the manager
    abandon exactly that session — in-flight queries cancelled, the
    scheduler's session group swept on a shared engine — while every
    other session keeps running. Not a :class:`BenchmarkError`: it is
    the *expected* path for remote churn, not a failure of the run.
    """


class SessionTurnHook:
    """Per-session pacing hook for externally driven (remote) sessions.

    The session server's wire-level turn protocol plugs in here: every
    callback is awaited **while the session holds the global virtual
    timeline**, so whatever the hook does (send a TURN_GRANT frame,
    stream records, wait for the client's TURN_DONE) cannot reorder the
    global event sequence — a slow remote frontend stalls virtual time
    for everyone, it never corrupts it. A run with no-op hooks is
    byte-identical to a run without hooks.

    Any callback may raise :class:`SessionAbandoned` to retire the
    session mid-run (the manager then cancels its in-flight queries and,
    on a shared engine, sweeps its scheduler group).
    """

    async def wait_input(self, driver) -> None:
        """Called while the session's driver ``needs_input`` (an
        external interaction source answered PENDING). Feed the source
        and ``driver.resume()``; the manager re-checks ``needs_input``
        after every call. Sessions without external sources never
        reach this."""
        raise BenchmarkError(
            "session stalled for external input but its turn hook does "
            "not implement wait_input"
        )

    async def on_turn(self, event_time: float) -> None:
        """Called after the session won the timeline, before it steps."""

    async def on_step(self, event_time: float, records) -> None:
        """Called after the step, with the records it produced; return
        only when the turn may be released (e.g. the remote client
        acknowledged)."""


class _VirtualTimeline:
    """Grants step turns in global (time, session index) order.

    Every session task declares its next event time, then awaits its
    turn; the turn goes to the globally minimal ``(time, index)`` pair,
    but only once *every* live session has declared — a session that is
    mid-step (or about to re-declare) holds the timeline, because its
    next event might precede everyone else's. Exactly one session steps
    at a time, and the grant order is deterministic.

    Wakeups are *targeted*: a grant sets only the winning session's
    event (one wakeup per grant, counted on :attr:`wakeups`), never a
    herd-waking ``notify_all`` that schedules every waiter just so N−1
    of them can re-scan and sleep again. Grant evaluation happens only
    when the declared set actually changes — a declare completing it, or
    a retire shrinking it — and all state mutation is synchronous within
    one event-loop step, so no lock is needed.
    """

    def __init__(self, pacer: Optional[AsyncClock] = None):
        self._declared: Dict[int, object] = {}
        self._events: Dict[int, asyncio.Event] = {}
        self._pacer = pacer
        #: Waiter wakeups signalled so far — exactly one per grant. The
        #: regression test pins this to the grant count (O(1) per step).
        self.wakeups = 0

    def register(self, index: int) -> None:
        """Pre-register a session so no grants happen before it declares."""
        self._declared[index] = _UNKNOWN

    async def acquire(self, index: int, event_time: float) -> None:
        """Declare the session's next event and wait for its turn."""
        self._declared[index] = event_time
        event = self._events.get(index)
        if event is None:
            event = self._events[index] = asyncio.Event()
        event.clear()
        self._maybe_grant()
        await event.wait()
        # Hold the timeline while stepping: nobody else may be granted
        # until this session declares its *next* event (or retires),
        # since that event could be earlier than any other pending one.
        self._declared[index] = _UNKNOWN
        if self._pacer is not None:
            await self._pacer.sleep_until(event_time)

    def _maybe_grant(self) -> None:
        best: Optional[Tuple[float, int]] = None
        for key, value in self._declared.items():
            if value is _UNKNOWN:
                return
            if best is None or (value, key) < best:
                best = (value, key)
        if best is not None:
            self.wakeups += 1
            self._events[best[1]].set()

    async def retire(self, index: int) -> None:
        """Remove a finished session from the timeline."""
        self._declared.pop(index, None)
        self._events.pop(index, None)
        self._maybe_grant()


class _ManagerCore:
    """Plumbing shared by the closed- and open-system managers.

    Holds the opt-in bounded step trace and the per-grant side-effect
    sequence, which must be byte-identical under both schedulers and
    both managers (the golden corpus pins the tracer event order).
    """

    shared: bool
    _shared_engine = None
    _trace_ring: Optional[RingBuffer]

    @property
    def trace(self) -> List[Tuple[float, str]]:
        """Captured ``(virtual time, session id)`` step marks (see
        ``trace_capture``); empty when capture is off."""
        if self._trace_ring is None:
            return []
        return list(self._trace_ring)

    def _trace_mark(self, time: float, label: str) -> None:
        if self._trace_ring is not None:
            self._trace_ring.append((time, label))

    def _turn_granted(
        self, event_time: float, session_id: str, queue_depth: int = 0
    ) -> None:
        """Per-grant side effects, identical under both schedulers."""
        self._trace_mark(event_time, session_id)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("manager.turn", event_time, session=session_id)
            get_metrics().counter(
                "repro_turns_total",
                help="Step turns granted by the global virtual timeline.",
            ).inc()
        series = get_timeseries()
        if series.enabled:
            # Windowed telemetry rides the grant sequence: scheduler
            # pressure (sessions waiting for a turn) and the compiled-
            # kernel cache's cumulative counters, both at deterministic
            # virtual instants (docs/observability.md).
            series.observe_turn(event_time, queue_depth=queue_depth)
            cache = kernel_cache()
            series.observe_kernel(event_time, cache.hits, cache.misses)
        if self.shared:
            self._shared_engine.scheduler.set_group(session_id)


def _timeseries_record(session_id: str, record) -> None:
    """Metric-stream subscriber folding evaluated deadlines into the
    global windowed series (spool mode feeds through the aggregate
    instead — see :class:`~repro.server.spool.ServingAggregate`)."""
    series = get_timeseries()
    if series.enabled:
        series.observe_record(
            record.end_time,
            record.tr_violated,
            latency=record.end_time - record.start_time,
        )


class SessionManager(_ManagerCore):
    """Multiplexes N simulated IDE sessions over shared engine state.

    Parameters
    ----------
    specs:
        The sessions to serve (unique ids).
    oracle, settings:
        Shared ground-truth oracle and benchmark settings.
    engines:
        Isolated mode — one *prepared or fresh* engine per spec (the
        manager prepares any engine that is not yet prepared). Mutually
        exclusive with ``engine``.
    engine:
        Shared mode — a single engine all sessions contend on. If its
        scheduler still runs the default
        :class:`~repro.engines.scheduler.WeightedSharingPolicy`, the
        manager installs :class:`~repro.engines.scheduler.FairSessionPolicy`
        (one group per session) before preparing it.
    accel:
        Optional wall-clock pacing: virtual seconds per wall second
        (``1.0`` = real time). ``None`` steps as fast as possible.
    on_record:
        Optional callback ``(session_id, record)`` subscribed to every
        session's metric stream.
    policies:
        Optional per-spec :class:`~repro.workflow.policy.InteractionPolicy`
        list (``None`` entries run scripted). A session with a policy
        chooses its interactions online from its observed records —
        adaptive users (docs/server.md).
    turn_hooks:
        Optional ``{spec index: SessionTurnHook}`` map. Hooked sessions
        pace their step turns through the hook (the TCP turn protocol);
        a hook raising :class:`SessionAbandoned` retires just that
        session. Abandoned session ids accumulate on :attr:`abandoned`.
    scheduler:
        ``"calendar"`` (default, O(log N) heap loop) or ``"tasks"`` (the
        legacy task-per-session model); ``None`` reads the
        ``REPRO_SCHEDULER`` environment variable. Both produce the same
        bytes — see :func:`resolve_scheduler`.
    trace_capture:
        Opt-in step tracing. ``False`` (default) records nothing; ``True``
        keeps the newest :data:`DEFAULT_TRACE_CAPACITY` entries in a
        bounded ring; an integer sets the ring capacity. :attr:`trace`
        then yields ``(virtual time, session id)`` marks.
    spool:
        Optional :class:`~repro.server.spool.RecordSpool` switching the
        run to constant-memory mode: records are spilled/aggregated the
        moment they are produced instead of retained, :attr:`aggregate`
        carries the incremental run totals, and :meth:`run_async`
        returns ``[]`` (there are no per-session record lists to build
        results from). Requires the calendar scheduler; incompatible
        with ``turn_hooks`` (the TCP layer needs retained records).

    A manager is single-shot: :meth:`run` (or :meth:`run_async`) may be
    called once; per-session streams are available on :attr:`streams`
    while it runs, results come back as :class:`SessionResult` in spec
    order. :attr:`trace` records the global step order ``(virtual time,
    session id)`` for interleaving diagnostics when ``trace_capture`` is
    enabled.
    """

    def __init__(
        self,
        specs: Sequence[SessionSpec],
        oracle,
        settings: BenchmarkSettings,
        *,
        engines: Optional[Sequence] = None,
        engine=None,
        accel: Optional[float] = None,
        on_record: Optional[Callable[[str, QueryRecord], None]] = None,
        policies: Optional[Sequence[Optional[InteractionPolicy]]] = None,
        turn_hooks: Optional[Dict[int, SessionTurnHook]] = None,
        scheduler: Optional[str] = None,
        trace_capture: Union[bool, int] = False,
        spool: Optional[RecordSpool] = None,
    ):
        self._specs = list(specs)
        if not self._specs:
            raise BenchmarkError("session manager needs at least one session")
        ids = [spec.session_id for spec in self._specs]
        if len(set(ids)) != len(ids):
            raise BenchmarkError(f"duplicate session ids: {ids}")
        self._policies = list(policies) if policies is not None else [None] * len(
            self._specs
        )
        if len(self._policies) != len(self._specs):
            raise BenchmarkError(
                f"{len(self._specs)} sessions need {len(self._specs)} "
                f"policies, got {len(self._policies)}"
            )
        for spec, policy in zip(self._specs, self._policies):
            if policy is None and not spec.workflows:
                raise BenchmarkError(
                    f"session {spec.session_id!r} declares policy "
                    f"{spec.policy!r} but no policy object was supplied"
                )
        if (engines is None) == (engine is None):
            raise BenchmarkError(
                "pass exactly one of engines= (isolated) or engine= (shared)"
            )
        self.oracle = oracle
        self.settings = settings
        self.shared = engine is not None
        if self.shared:
            if isinstance(engine.scheduler.policy, WeightedSharingPolicy):
                engine.scheduler.set_policy(FairSessionPolicy())
            self._engines = [engine] * len(self._specs)
            self._shared_engine = engine
        else:
            engines = list(engines)
            if len(engines) != len(self._specs):
                raise BenchmarkError(
                    f"{len(self._specs)} sessions need {len(self._specs)} "
                    f"engines, got {len(engines)}"
                )
            self._engines = engines
            self._shared_engine = None
        self.accel = accel
        self._scheduler = resolve_scheduler(scheduler)
        self.spool = spool
        self.aggregate: Optional[ServingAggregate] = (
            ServingAggregate() if spool is not None else None
        )
        if spool is not None and self._scheduler == SCHEDULER_TASKS:
            raise BenchmarkError(
                "record spooling requires the calendar scheduler "
                f"({SCHEDULER_ENV}={SCHEDULER_TASKS} cannot spool)"
            )
        if spool is not None and turn_hooks:
            raise BenchmarkError(
                "record spooling is incompatible with turn hooks: the "
                "wire protocol replays retained per-session records"
            )
        self.streams: Dict[str, SessionStream] = {}
        for spec in self._specs:
            stream = SessionStream(spec.session_id, retain=spool is None)
            if on_record is not None:
                stream.subscribe(on_record)
            if spool is not None:
                stream.subscribe(spool.append)
                stream.subscribe(self.aggregate.observe_record)
            else:
                stream.subscribe(_timeseries_record)
            self.streams[spec.session_id] = stream
        self._trace_ring = _make_trace_ring(trace_capture)
        self.wall_seconds: float = 0.0
        #: Session ids whose turn hook raised :class:`SessionAbandoned`.
        self.abandoned: List[str] = []
        self._hooks: Dict[int, SessionTurnHook] = dict(turn_hooks or {})
        unknown = [i for i in self._hooks if not 0 <= i < len(self._specs)]
        if unknown:
            raise BenchmarkError(
                f"turn hooks reference unknown session indexes {unknown!r}"
            )
        self._pacer = AsyncClock(accel) if accel is not None else None
        self._timeline = _VirtualTimeline(pacer=self._pacer)
        self._ran = False

    # ------------------------------------------------------------------
    @property
    def specs(self) -> List[SessionSpec]:
        return list(self._specs)

    @property
    def num_sessions(self) -> int:
        return len(self._specs)

    # ------------------------------------------------------------------
    def run(self) -> List[SessionResult]:
        """Serve all sessions to completion (blocking wrapper)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> List[SessionResult]:
        """Serve all sessions concurrently; results in spec order."""
        if self._ran:
            raise BenchmarkError("a SessionManager can only run once")
        self._ran = True
        for engine in self._unique_engines():
            if not engine.is_prepared:
                engine.prepare()
        drivers = [
            SessionDriver(
                self._engines[index],
                self.oracle,
                self.settings,
                [] if self._policies[index] is not None else list(spec.workflows),
                session_id=spec.session_id,
                lifecycle=not self.shared,
                on_record=self.streams[spec.session_id].push,
                policy=self._policies[index],
            )
            for index, spec in enumerate(self._specs)
        ]
        if self.shared:
            # The shared engine lives for the whole serving run (Listing
            # 1's lifecycle, once per service session, not per workflow).
            self._shared_engine.workflow_start()
        started = perf_seconds()
        if self._scheduler == SCHEDULER_TASKS:
            series = get_timeseries()
            if series.enabled:
                for _ in drivers:
                    series.session_started(0.0)
            for index in range(len(self._specs)):
                self._timeline.register(index)
            await asyncio.gather(
                *(
                    self._run_session(index, driver)
                    for index, driver in enumerate(drivers)
                )
            )
        else:
            await self._run_calendar(drivers)
        series = get_timeseries()
        if series.enabled:
            series.finalize()
        self.wall_seconds = perf_seconds() - started
        if self.shared:
            self._shared_engine.workflow_end()
            # Confine the serving run's mutation of the caller's engine:
            # without this, later tasks submitted outside the server would
            # silently inherit the last-stepped session's group.
            self._shared_engine.scheduler.set_group(None)
        if self.spool is not None:
            # Constant-memory mode: everything observable already went
            # through the spool/aggregate; no record lists exist.
            return []
        return [
            SessionResult(
                spec,
                self.streams[spec.session_id].records,
                interaction_counts=dict(driver.interaction_counts),
                steps=driver.steps,
            )
            for spec, driver in zip(self._specs, drivers)
        ]

    # ------------------------------------------------------------------
    # Event-calendar scheduler (the default)
    # ------------------------------------------------------------------
    async def _run_calendar(self, drivers: List[SessionDriver]) -> None:
        """One loop, a heap of ``(event_time, index)`` — no per-session task.

        Equivalence with the task scheduler is structural: the legacy
        timeline fully serializes stepping (a grant happens only when
        every live session has declared, and exactly the minimal
        ``(time, index)`` steps), so replaying the same
        declare → grant → side-effect sequence inline reproduces the
        identical global order — including hooked (TCP) sessions, whose
        callbacks are awaited while the calendar holds the turn, exactly
        as the timeline held it. Granting is the heap pop, O(log N).
        """
        heap: List[Tuple[float, int]] = []
        if self.aggregate is not None:
            for _ in drivers:
                self.aggregate.session_started()
        series = get_timeseries()
        if series.enabled:
            # A closed population is all live at vt 0; records fold via
            # the streams (or the aggregate in spool mode), lifecycle and
            # turns fold here in the grant loop.
            for _ in drivers:
                series.session_started(0.0)
        # Admission in index order — the same serialized declare order
        # the task path produces (no grant can precede full declaration).
        for index, driver in enumerate(drivers):
            await self._calendar_admit(index, driver, heap)
        while heap:
            event_time, index = heapq.heappop(heap)
            driver = drivers[index]
            spec = self._specs[index]
            hook = self._hooks.get(index)
            if self._pacer is not None:
                await self._pacer.sleep_until(event_time)
            self._turn_granted(
                event_time, spec.session_id, queue_depth=len(heap)
            )
            try:
                if hook is None:
                    driver.step()
                else:
                    await hook.on_turn(event_time)
                    records = driver.step()
                    await hook.on_step(event_time, records)
            except SessionAbandoned:
                self._calendar_abandon(index, driver, now=event_time)
                continue
            await self._calendar_admit(index, driver, heap, now=event_time)

    async def _calendar_admit(
        self,
        index: int,
        driver: SessionDriver,
        heap: List[Tuple[float, int]],
        now: float = 0.0,
    ) -> None:
        """Resolve input stalls, then declare the session's next event."""
        hook = self._hooks.get(index)
        try:
            if hook is not None:
                # An externally sourced session may be stalled on the
                # think-time grid (PENDING). It holds the calendar —
                # nobody advances — until its frontend supplies the
                # interaction: remote think time blocks virtual time for
                # everyone, exactly like a large think-time gap would,
                # and never reorders events.
                while driver.needs_input:
                    with get_profiler().stage(STAGE_PENDING_STALL):
                        await hook.wait_input(driver)
        except SessionAbandoned:
            self._calendar_abandon(index, driver, now=now)
            return
        event_time = driver.next_event_time()
        if event_time is None:
            self._calendar_finish(index, driver, now=now)
        else:
            heapq.heappush(heap, (event_time, index))

    def _calendar_abandon(
        self, index: int, driver: SessionDriver, now: float = 0.0
    ) -> None:
        # Mirror of the task path's SessionAbandoned handler: cancel the
        # session's in-flight queries and sweep its scheduler group.
        spec = self._specs[index]
        driver.abandon()
        if self.shared:
            self._shared_engine.scheduler.cancel_group(spec.session_id)
        self.abandoned.append(spec.session_id)
        self._calendar_finish(index, driver, now=now)

    def _calendar_finish(
        self, index: int, driver: SessionDriver, now: float = 0.0
    ) -> None:
        series = get_timeseries()
        if series.enabled:
            # Folded at the global processing instant, which keeps the
            # series' virtual-time axis monotone.
            series.session_finished(now)
        if self.aggregate is None:
            return
        self.aggregate.session_finished(
            driver.steps, dict(driver.interaction_counts)
        )

    # ------------------------------------------------------------------
    async def _run_session(self, index: int, driver: SessionDriver) -> None:
        # Records flow through the driver's on_record hook (wired to the
        # session's stream at construction) the moment each deadline is
        # evaluated — step() is the only delivery path.
        spec = self._specs[index]
        hook = self._hooks.get(index)
        last_event = 0.0
        try:
            while True:
                if hook is not None:
                    # An externally sourced session may be stalled on the
                    # think-time grid (PENDING). It holds the timeline
                    # undeclared — nobody advances — until its frontend
                    # supplies the interaction: remote think time blocks
                    # virtual time for everyone, exactly like a large
                    # think-time gap would, and never reorders events.
                    while driver.needs_input:
                        with get_profiler().stage(STAGE_PENDING_STALL):
                            await hook.wait_input(driver)
                event_time = driver.next_event_time()
                if event_time is None:
                    break
                await self._timeline.acquire(index, event_time)
                last_event = event_time
                # All other live sessions wait for this grant — the same
                # count the calendar path reads off its heap.
                self._turn_granted(
                    event_time,
                    spec.session_id,
                    queue_depth=len(self._timeline._declared) - 1,
                )
                if hook is None:
                    driver.step()
                else:
                    await hook.on_turn(event_time)
                    records = driver.step()
                    await hook.on_step(event_time, records)
        except SessionAbandoned:
            # The remote frontend vanished, timed out, or violated the
            # turn protocol mid-run. Retire exactly this session: cancel
            # its in-flight queries (never evaluated — the departed user
            # never saw them) and, on a shared engine, sweep its whole
            # scheduler group so ghost load cannot skew the survivors.
            # Identical to an open-system churn departure at this
            # session's last event time.
            driver.abandon()
            if self.shared:
                self._shared_engine.scheduler.cancel_group(spec.session_id)
            self.abandoned.append(spec.session_id)
        finally:
            series = get_timeseries()
            if series.enabled:
                series.session_finished(last_event)
            await self._timeline.retire(index)

    def _unique_engines(self) -> List:
        unique: List = []
        seen = set()
        for engine in self._engines:
            if id(engine) not in seen:
                seen.add(id(engine))
                unique.append(engine)
        return unique

    # ------------------------------------------------------------------
    @classmethod
    def for_engine(
        cls,
        ctx,
        engine_name: str,
        num_sessions: int,
        *,
        per_session: int = 2,
        workflow_type: WorkflowType = WorkflowType.MIXED,
        share_engine: bool = False,
        accel: Optional[float] = None,
        speculation: bool = False,
        normalized: bool = False,
        on_record: Optional[Callable[[str, QueryRecord], None]] = None,
        policy: Optional[str] = None,
        turn_hooks: Optional[Dict[int, SessionTurnHook]] = None,
        scheduler: Optional[str] = None,
        trace_capture: Union[bool, int] = False,
        spool: Optional[RecordSpool] = None,
    ) -> "SessionManager":
        """Build a manager from an :class:`ExperimentContext`.

        Sessions get deterministic per-session workflow suites via
        :func:`session_specs` (scripted and ``replay``) or adaptive
        per-session policies seeded from the same purpose strings
        (``markov``/``uncertainty``); engines come from the engine
        registry over the context's shared dataset.
        """
        from repro.bench.experiments import make_engine

        settings = ctx.settings
        dataset = ctx.dataset(settings.data_size, normalized)
        oracle = ctx.oracle(settings.data_size, normalized)
        if num_sessions < 1:
            raise BenchmarkError(
                f"need at least one session, got {num_sessions!r}"
            )
        generator = shared_policy_generator(ctx) if policy is not None else None
        pairs = [
            make_session(
                ctx,
                index,
                per_session=per_session,
                workflow_type=workflow_type,
                policy=policy,
                generator=generator,
            )
            for index in range(num_sessions)
        ]
        specs = [spec for spec, _ in pairs]
        policies = (
            [built for _, built in pairs] if policy is not None else None
        )
        if share_engine:
            engine = make_engine(
                engine_name, dataset, settings, VirtualClock(), speculation
            )
            return cls(
                specs, oracle, settings, engine=engine, accel=accel,
                on_record=on_record, policies=policies,
                turn_hooks=turn_hooks, scheduler=scheduler,
                trace_capture=trace_capture, spool=spool,
            )
        engines = [
            make_engine(engine_name, dataset, settings, VirtualClock(), speculation)
            for _ in specs
        ]
        return cls(
            specs, oracle, settings, engines=engines, accel=accel,
            on_record=on_record, policies=policies, turn_hooks=turn_hooks,
            scheduler=scheduler, trace_capture=trace_capture, spool=spool,
        )


def shared_policy_generator(ctx) -> WorkflowGenerator:
    """One sampling generator over the context's profiles (read-only).

    Adaptive policies of *every* session in a run share this generator
    (their randomness comes from per-session rng streams, never from
    generator state), so building it once per run — in-process manager
    or TCP shared run alike — keeps construction cost constant.
    """
    return WorkflowGenerator(
        ctx.profiles(ctx.settings.data_size),
        table=ctx.settings.dataset,
        seed=ctx.settings.seed,
    )


def make_session(
    ctx,
    index: int,
    *,
    per_session: int = 2,
    workflow_type: WorkflowType = WorkflowType.MIXED,
    policy: Optional[str] = None,
    generator: Optional[WorkflowGenerator] = None,
) -> Tuple[SessionSpec, Optional[InteractionPolicy]]:
    """The canonical constructor of session *index*'s spec and policy.

    Session *i*'s seed is
    :func:`~repro.common.rng.derive_session_seed`\\ ``(root, i)`` — a pure
    function of ``(root seed, i)``, independent of how many sessions run,
    of stepping order, and of whether the session starts at time zero
    (closed system) or arrives mid-run (open system): both managers call
    this one function, so the invariant cannot drift between them.
    Scripted sessions (and the ``replay`` policy) carry a workflow suite
    generated from that seed; adaptive policies carry only the seed —
    their interactions are chosen online. ``generator`` may pass a shared
    sampling generator for adaptive policies (built on demand otherwise).
    """
    seed = derive_session_seed(ctx.settings.seed, index)
    workflows: Tuple = ()
    if policy is None or policy == "replay":
        per_session_generator = WorkflowGenerator(
            ctx.profiles(ctx.settings.data_size),
            table=ctx.settings.dataset,
            seed=seed,
        )
        workflows = tuple(
            per_session_generator.generate_suite(workflow_type, per_session)
        )
    spec = SessionSpec(
        session_id=f"session-{index}",
        workflows=workflows,
        seed=seed,
        policy=policy,
    )
    if policy is None:
        return spec, None
    built = make_policy(
        policy,
        workflows=workflows or None,
        generator=generator if generator is not None else shared_policy_generator(ctx),
        per_session=per_session,
        workflow_type=workflow_type,
        seed=seed,
    )
    return spec, built


def session_specs(
    ctx,
    num_sessions: int,
    per_session: int = 2,
    workflow_type: WorkflowType = WorkflowType.MIXED,
    policy: Optional[str] = None,
) -> List[SessionSpec]:
    """Deterministic per-session workload specs (see :func:`make_session`)."""
    if num_sessions < 1:
        raise BenchmarkError(f"need at least one session, got {num_sessions!r}")
    generator = shared_policy_generator(ctx) if policy is not None else None
    return [
        make_session(
            ctx,
            index,
            per_session=per_session,
            workflow_type=workflow_type,
            policy=policy,
            generator=generator,
        )[0]
        for index in range(num_sessions)
    ]


# ----------------------------------------------------------------------
# Open-system serving: seeded arrivals and mid-run churn
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SessionArrival:
    """One scheduled session of an open-system run.

    ``departure_time`` is the virtual instant the user walks away
    (``inf`` = stays until their workload completes). A departing
    session abandons whatever is still in flight — queries are
    cancelled, never evaluated.
    """

    index: int
    arrival_time: float
    departure_time: float = math.inf

    def __post_init__(self):
        if self.arrival_time < 0:
            raise BenchmarkError(
                f"arrival time must be >= 0, got {self.arrival_time!r}"
            )
        if self.departure_time <= self.arrival_time:
            raise BenchmarkError(
                f"session {self.index} departs at {self.departure_time!r} "
                f"before arriving at {self.arrival_time!r}"
            )


class RateSchedule:
    """A piecewise-constant (optionally periodic) arrival-rate curve.

    The non-stationary extension of the open-system arrival process:
    instead of one flat rate, the rate is a deterministic function of
    virtual time — diurnal load, flash crowds, or any hand-written
    piecewise profile. ``points`` is an ascending sequence of
    ``(time, rate)`` pairs starting at time 0; each rate holds from its
    time until the next point (or forever). With ``period`` set the
    curve wraps, so a 60-second diurnal cycle covers any horizon.

    A schedule is pure data: :class:`ArrivalProcess` samples it by
    *thinning* a homogeneous Poisson stream at :attr:`max_rate`, which
    keeps churned runs byte-deterministic — the draw is still a pure
    function of the seed and the schedule.
    """

    def __init__(
        self,
        points: Sequence[Tuple[float, float]],
        period: Optional[float] = None,
    ):
        if not points:
            raise BenchmarkError("a rate schedule needs at least one point")
        times = [float(t) for t, _ in points]
        rates = [float(r) for _, r in points]
        if times[0] != 0.0:
            raise BenchmarkError(
                f"the first schedule point must be at time 0, got {times[0]!r}"
            )
        if any(b <= a for a, b in zip(times, times[1:])):
            raise BenchmarkError(
                f"schedule point times must be strictly ascending: {times!r}"
            )
        if any(rate < 0 for rate in rates):
            raise BenchmarkError(f"rates must be >= 0: {rates!r}")
        if max(rates) <= 0:
            raise BenchmarkError("at least one schedule rate must be positive")
        if period is not None and period <= times[-1]:
            raise BenchmarkError(
                f"period {period!r} must exceed the last point time "
                f"{times[-1]!r}"
            )
        self.points: List[Tuple[float, float]] = list(zip(times, rates))
        self.period = float(period) if period is not None else None

    @property
    def max_rate(self) -> float:
        """The thinning envelope: the largest rate anywhere on the curve."""
        return max(rate for _, rate in self.points)

    def rate_at(self, time: float) -> float:
        """The instantaneous arrival rate at virtual ``time``."""
        if time < 0:
            raise BenchmarkError(f"time must be >= 0, got {time!r}")
        if self.period is not None:
            time = time % self.period
        current = self.points[0][1]
        for point_time, rate in self.points:
            if point_time > time:
                break
            current = rate
        return current

    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, rate: float) -> "RateSchedule":
        """A flat schedule (equivalent to the homogeneous process)."""
        return cls([(0.0, rate)])

    @classmethod
    def diurnal(
        cls,
        base: float,
        *,
        amplitude: float = 0.8,
        period: float = 60.0,
        steps: int = 24,
    ) -> "RateSchedule":
        """A sinusoidal day/night cycle sampled into ``steps`` segments.

        ``rate(t) = base * (1 + amplitude * sin(2πt/period))``, clipped
        at 0 — quiet nights, busy middays, repeating every ``period``
        virtual seconds.
        """
        if not 0.0 < amplitude <= 1.0:
            raise BenchmarkError(
                f"amplitude must be in (0, 1], got {amplitude!r}"
            )
        if steps < 2:
            raise BenchmarkError(f"steps must be >= 2, got {steps!r}")
        points = []
        for i in range(steps):
            t = period * i / steps
            rate = base * (1.0 + amplitude * math.sin(2.0 * math.pi * i / steps))
            points.append((t, max(rate, 0.0)))
        return cls(points, period=period)

    @classmethod
    def flash_crowd(
        cls, base: float, *, peak: float, at: float, width: float
    ) -> "RateSchedule":
        """Baseline load with one burst: ``peak`` from ``at`` for ``width``."""
        if at <= 0 or width <= 0:
            raise BenchmarkError(
                f"flash crowd needs at > 0 and width > 0, got "
                f"at={at!r} width={width!r}"
            )
        return cls([(0.0, base), (at, peak), (at + width, base)])

    @classmethod
    def parse(cls, spec: str, base_rate: float, horizon: float) -> "RateSchedule":
        """Build a schedule from a CLI spec string.

        Grammar (``repro serve --arrival-schedule``)::

            constant
            diurnal[:amplitude=0.8][:period=60]
            flash[:peak=5x|RATE][:at=T][:width=W]
            piecewise:T=R,T=R,...

        ``base_rate`` is the ``--arrivals`` value; flash defaults put a
        5× burst one third into the ``horizon`` lasting a sixth of it.
        """
        head, _, tail = spec.partition(":")
        options: Dict[str, str] = {}
        if tail:
            for item in tail.split(","):
                key, sep, value = item.partition("=")
                if not sep or not key.strip():
                    raise BenchmarkError(
                        f"malformed schedule option {item!r} in {spec!r} "
                        f"(expected key=value)"
                    )
                options[key.strip()] = value.strip()
        def no_leftovers():
            if options:
                raise BenchmarkError(
                    f"unknown schedule option(s) {sorted(options)!r} "
                    f"in {spec!r}"
                )

        try:
            if head == "constant":
                no_leftovers()
                return cls.constant(base_rate)
            if head == "diurnal":
                amplitude = float(options.pop("amplitude", 0.8))
                period = float(options.pop("period", min(horizon, 60.0)))
                steps = int(options.pop("steps", 24))
                no_leftovers()
                return cls.diurnal(
                    base_rate, amplitude=amplitude, period=period, steps=steps
                )
            if head == "flash":
                peak_text = options.pop("peak", "5x")
                at = float(options.pop("at", horizon / 3.0))
                width = float(options.pop("width", horizon / 6.0))
                no_leftovers()
                peak = (
                    base_rate * float(peak_text[:-1])
                    if peak_text.endswith("x")
                    else float(peak_text)
                )
                return cls.flash_crowd(base_rate, peak=peak, at=at, width=width)
            if head == "piecewise":
                points = [
                    (float(t), float(r))
                    for t, r in (pair.split("=") for pair in tail.split(","))
                ]
                return cls(points)
        except (ValueError, IndexError) as error:
            # Bad numeric values / malformed pairs; unknown-option and
            # schedule-shape errors above are already BenchmarkErrors.
            raise BenchmarkError(
                f"malformed arrival schedule {spec!r}: {error}"
            ) from error
        raise BenchmarkError(
            f"unknown arrival schedule kind {head!r} "
            f"(choose from: constant, diurnal, flash, piecewise)"
        )


class ArrivalProcess:
    """Seeded Poisson arrivals (and exponential residences) over virtual time.

    The open-system counterpart of the closed N-session configuration:
    sessions join at rate ``rate`` per virtual second until ``horizon``,
    and — with ``mean_residence`` set — leave after an exponentially
    distributed stay, mid-workload if need be. With ``rate_schedule``
    set the process is *non-stationary*: candidate arrivals are drawn at
    the schedule's max rate and thinned to the instantaneous rate (the
    standard non-homogeneous Poisson construction), so diurnal cycles
    and flash crowds ride on the exact same machinery. Either way the
    whole schedule is a pure function of ``(seed, rate/schedule,
    horizon, mean_residence, max_sessions)``: it is drawn once, up
    front, from the ``("open-system-arrivals",)`` purpose stream, so
    churned runs stay byte-deterministic no matter how stepping
    interleaves (and a homogeneous process draws the exact same stream
    it always did).
    """

    def __init__(
        self,
        rate: float,
        horizon: float,
        *,
        seed: int = 42,
        mean_residence: Optional[float] = None,
        max_sessions: Optional[int] = None,
        rate_schedule: Optional[RateSchedule] = None,
    ):
        if rate <= 0:
            raise BenchmarkError(f"arrival rate must be positive, got {rate!r}")
        if horizon <= 0:
            raise BenchmarkError(f"horizon must be positive, got {horizon!r}")
        if mean_residence is not None and mean_residence <= 0:
            raise BenchmarkError(
                f"mean residence must be positive, got {mean_residence!r}"
            )
        if max_sessions is not None and max_sessions < 1:
            raise BenchmarkError(
                f"max sessions must be >= 1, got {max_sessions!r}"
            )
        self.rate = float(rate)
        self.horizon = float(horizon)
        self.seed = seed
        self.mean_residence = mean_residence
        self.max_sessions = max_sessions
        self.rate_schedule = rate_schedule

    def schedule(self) -> List[SessionArrival]:
        """The deterministic arrival/departure schedule of this process."""
        return list(self.iter_schedule())

    def iter_schedule(self) -> Iterator[SessionArrival]:
        """Stream the schedule one arrival at a time (same draw order).

        The RNG stream is consumed sequentially, so this yields exactly
        the arrivals :meth:`schedule` materializes — but a 10⁵-session
        serving run can consume them without ever holding the whole
        schedule in memory (the manager's constant-memory mode does).
        """
        rng = derive_rng(self.seed, "open-system-arrivals")
        envelope = (
            self.rate_schedule.max_rate
            if self.rate_schedule is not None
            else self.rate
        )
        produced = 0
        now = 0.0
        while self.max_sessions is None or produced < self.max_sessions:
            now += float(rng.exponential(1.0 / envelope))
            if now >= self.horizon:
                break
            if self.rate_schedule is not None:
                # Thinning: accept a candidate with probability
                # rate(t)/max_rate. The uniform draw happens for every
                # candidate, so the accepted set is a pure function of
                # the seed and the schedule.
                accept = float(rng.random()) * envelope
                if accept >= self.rate_schedule.rate_at(now):
                    continue
            departure = math.inf
            if self.mean_residence is not None:
                departure = now + float(rng.exponential(self.mean_residence))
            yield SessionArrival(
                index=produced,
                arrival_time=now,
                departure_time=departure,
            )
            produced += 1


#: Timeline slot of the arrival spawner — below every session index, so
#: at equal virtual times the arrival is processed first.
_SPAWNER = -1


class OpenSystemManager(_ManagerCore):
    """Serves an *open system*: sessions arrive and depart mid-run.

    Where :class:`SessionManager` steps a fixed population to
    completion, this manager follows an :class:`ArrivalProcess`: a
    spawner occupies one slot of the shared :class:`_VirtualTimeline`
    and, at each scheduled arrival instant, creates the session —
    deterministic per-session seed via
    :func:`~repro.common.rng.derive_session_seed`, scripted suite or
    adaptive policy via ``session_factory`` — registers it with the
    timeline and lets it compete for step turns. Sessions whose
    ``departure_time`` overtakes their next event *abandon*: in-flight
    queries are cancelled (never evaluated), speculation hints freed,
    and — on a shared engine — the scheduler's whole session group is
    cancelled (:meth:`~repro.engines.scheduler.ProcessorSharingScheduler.cancel_group`),
    so ghost load from churned-out users cannot skew the survivors.

    Determinism: the schedule is precomputed, every grant follows global
    ``(time, index)`` order with the spawner below all sessions, and
    abandonment happens at the departing session's own last event time —
    so a churned run's bytes are a pure function of its configuration,
    invariant to wall pacing (``accel``) and re-invocation.
    """

    def __init__(
        self,
        oracle,
        settings: BenchmarkSettings,
        arrivals: ArrivalProcess,
        session_factory: Callable[
            [int], Tuple[SessionSpec, Optional[InteractionPolicy]]
        ],
        *,
        engine_factory: Optional[Callable[[], object]] = None,
        engine=None,
        accel: Optional[float] = None,
        on_record: Optional[Callable[[str, QueryRecord], None]] = None,
        scheduler: Optional[str] = None,
        trace_capture: Union[bool, int] = False,
        spool: Optional[RecordSpool] = None,
    ):
        if (engine_factory is None) == (engine is None):
            raise BenchmarkError(
                "pass exactly one of engine_factory= (isolated) or "
                "engine= (shared)"
            )
        self.oracle = oracle
        self.settings = settings
        self.arrivals = arrivals
        self.shared = engine is not None
        self._engine_factory = engine_factory
        self._shared_engine = engine
        if self.shared and isinstance(
            engine.scheduler.policy, WeightedSharingPolicy
        ):
            engine.scheduler.set_policy(FairSessionPolicy())
        self._session_factory = session_factory
        self.accel = accel
        self._scheduler = resolve_scheduler(scheduler)
        self.spool = spool
        self.aggregate: Optional[ServingAggregate] = (
            ServingAggregate() if spool is not None else None
        )
        if spool is not None and self._scheduler == SCHEDULER_TASKS:
            raise BenchmarkError(
                "record spooling requires the calendar scheduler "
                f"({SCHEDULER_ENV}={SCHEDULER_TASKS} cannot spool)"
            )
        self._on_record = on_record
        self.streams: Dict[str, SessionStream] = {}
        self._trace_ring = _make_trace_ring(trace_capture)
        self.wall_seconds: float = 0.0
        self._pacer = AsyncClock(accel) if accel is not None else None
        self._timeline = _VirtualTimeline(pacer=self._pacer)
        self._results: Dict[int, SessionResult] = {}
        #: Materialized only on demand — a constant-memory run never
        #: holds the full arrival schedule (it streams iter_schedule()).
        self._schedule_cache: Optional[List[SessionArrival]] = None
        self._ran = False

    # ------------------------------------------------------------------
    @property
    def schedule(self) -> List[SessionArrival]:
        """The full (materialized) arrival schedule of this run."""
        if self._schedule_cache is None:
            self._schedule_cache = self.arrivals.schedule()
        return self._schedule_cache

    # ------------------------------------------------------------------
    def run(self) -> List[SessionResult]:
        """Serve the whole schedule to completion (blocking wrapper)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> List[SessionResult]:
        """Serve arrivals as they come; results in arrival order."""
        if self._ran:
            raise BenchmarkError("an OpenSystemManager can only run once")
        self._ran = True
        if self.spool is not None:
            # Constant-memory mode streams the schedule; everything else
            # materializes it once (results come back in arrival order).
            arrival_iter: Iterator[SessionArrival] = (
                self.arrivals.iter_schedule()
            )
        else:
            arrival_iter = iter(self.schedule)
        first = next(arrival_iter, None)
        if first is None:
            return []
        arrival_iter = itertools.chain([first], arrival_iter)
        if self.shared:
            if not self._shared_engine.is_prepared:
                self._shared_engine.prepare()
            self._shared_engine.workflow_start()
        started = perf_seconds()
        if self._scheduler == SCHEDULER_TASKS:
            tasks: List[asyncio.Task] = []
            self._timeline.register(_SPAWNER)
            await self._spawner(tasks)
            if tasks:
                await asyncio.gather(*tasks)
        else:
            await self._run_calendar(arrival_iter)
        series = get_timeseries()
        if series.enabled:
            series.finalize()
        self.wall_seconds = perf_seconds() - started
        if self.shared:
            self._shared_engine.workflow_end()
            self._shared_engine.scheduler.set_group(None)
        if self.spool is not None:
            return []
        return [self._results[arrival.index] for arrival in self.schedule]

    # ------------------------------------------------------------------
    # Event-calendar scheduler (the default)
    # ------------------------------------------------------------------
    async def _run_calendar(
        self, arrival_iter: Iterator[SessionArrival]
    ) -> None:
        """Heap-driven merge of the arrival stream and live sessions.

        The spawner is one calendar entry at slot :data:`_SPAWNER` (below
        every session index, so an arrival at an equal instant processes
        first — the task path's tie-break). Sessions are flyweights:
        ``(driver, spec, arrival)`` in a dict keyed by index, no
        coroutine each. A session whose next event would land past its
        departure time retires immediately, at the exact global order
        point the task path retires it.
        """
        heap: List[Tuple[float, int]] = []
        live: Dict[int, Tuple[SessionDriver, SessionSpec, SessionArrival]] = {}
        pending = next(arrival_iter, None)
        if pending is not None:
            heapq.heappush(heap, (pending.arrival_time, _SPAWNER))
        while heap:
            event_time, index = heapq.heappop(heap)
            if self._pacer is not None:
                await self._pacer.sleep_until(event_time)
            if index == _SPAWNER:
                arrival = pending
                self._trace_mark(arrival.arrival_time, "arrival")
                driver, spec = self._spawn(arrival)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "manager.arrival",
                        arrival.arrival_time,
                        session=spec.session_id,
                    )
                    get_metrics().counter(
                        "repro_sessions_spawned_total",
                        help="Open-system sessions spawned mid-run.",
                    ).inc()
                if self.aggregate is not None:
                    self.aggregate.session_started()
                series = get_timeseries()
                if series.enabled:
                    series.session_started(arrival.arrival_time)
                self._calendar_declare(
                    arrival, driver, spec, heap, live,
                    now=arrival.arrival_time,
                )
                pending = next(arrival_iter, None)
                if pending is not None:
                    heapq.heappush(heap, (pending.arrival_time, _SPAWNER))
            else:
                driver, spec, arrival = live[index]
                self._turn_granted(
                    event_time, spec.session_id, queue_depth=len(heap)
                )
                driver.step()
                self._calendar_declare(
                    arrival, driver, spec, heap, live, now=event_time
                )

    def _calendar_declare(
        self,
        arrival: SessionArrival,
        driver: SessionDriver,
        spec: SessionSpec,
        heap: List[Tuple[float, int]],
        live: Dict[int, Tuple[SessionDriver, SessionSpec, SessionArrival]],
        now: float = 0.0,
    ) -> None:
        """Declare a session's next event, or retire it (done/departed)."""
        event_time = driver.next_event_time()
        if event_time is not None and event_time < arrival.departure_time:
            live[arrival.index] = (driver, spec, arrival)
            heapq.heappush(heap, (event_time, arrival.index))
            return
        live.pop(arrival.index, None)
        # A remaining event at/past the departure instant means the user
        # walked away mid-workload (the task path's departure branch).
        self._retire_session(
            arrival, driver, spec, departed=event_time is not None, now=now
        )

    def _retire_session(
        self,
        arrival: SessionArrival,
        driver: SessionDriver,
        spec: SessionSpec,
        departed: bool,
        now: float = 0.0,
    ) -> None:
        if departed:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "manager.depart",
                    arrival.departure_time,
                    session=spec.session_id,
                )
            driver.abandon()
            if self.shared:
                self._shared_engine.scheduler.cancel_group(spec.session_id)
        series = get_timeseries()
        if series.enabled:
            # Folded at the global processing instant (monotone), even
            # for departures whose nominal instant lies earlier.
            series.session_finished(now)
        if self.spool is None:
            self._results[arrival.index] = SessionResult(
                spec,
                self.streams[spec.session_id].records,
                interaction_counts=dict(driver.interaction_counts),
                departed_at=arrival.departure_time if departed else None,
                steps=driver.steps,
            )
            return
        # Constant-memory mode: fold the session's footprint into the
        # aggregate, then free everything it owned — stream, driver and
        # (isolated mode) its whole engine go with it; a shared engine
        # sheds the session's settled scheduler tasks and handles.
        self.aggregate.session_finished(
            driver.steps,
            dict(driver.interaction_counts),
            departed=departed,
        )
        self.streams.pop(spec.session_id, None)
        if self.shared:
            self._shared_engine.release_settled()

    # ------------------------------------------------------------------
    async def _spawner(self, tasks: List[asyncio.Task]) -> None:
        try:
            for arrival in self.schedule:
                await self._timeline.acquire(_SPAWNER, arrival.arrival_time)
                self._trace_mark(arrival.arrival_time, "arrival")
                driver, spec = self._spawn(arrival)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "manager.arrival",
                        arrival.arrival_time,
                        session=spec.session_id,
                    )
                    get_metrics().counter(
                        "repro_sessions_spawned_total",
                        help="Open-system sessions spawned mid-run.",
                    ).inc()
                series = get_timeseries()
                if series.enabled:
                    series.session_started(arrival.arrival_time)
                self._timeline.register(arrival.index)
                tasks.append(
                    asyncio.ensure_future(
                        self._run_session(arrival, driver, spec)
                    )
                )
        finally:
            await self._timeline.retire(_SPAWNER)

    def _spawn(self, arrival: SessionArrival):
        spec, policy = self._session_factory(arrival.index)
        stream = SessionStream(spec.session_id, retain=self.spool is None)
        if self._on_record is not None:
            stream.subscribe(self._on_record)
        if self.spool is not None:
            stream.subscribe(self.spool.append)
            stream.subscribe(self.aggregate.observe_record)
        else:
            stream.subscribe(_timeseries_record)
        self.streams[spec.session_id] = stream
        if self.shared:
            engine = self._shared_engine
        else:
            engine = self._engine_factory()
            if not engine.is_prepared:
                engine.prepare()
        # The session's virtual life starts at its arrival instant. The
        # spawner holds the globally minimal timeline slot, so advancing
        # the engine clock here is monotone for every live session.
        if engine.clock.now() < arrival.arrival_time:
            engine.clock.advance_to(arrival.arrival_time)
            engine.advance_to(arrival.arrival_time)
        driver = SessionDriver(
            engine,
            self.oracle,
            self.settings,
            list(spec.workflows) if policy is None else [],
            session_id=spec.session_id,
            lifecycle=not self.shared,
            on_record=stream.push,
            policy=policy,
        )
        return driver, spec

    async def _run_session(
        self, arrival: SessionArrival, driver: SessionDriver, spec: SessionSpec
    ) -> None:
        departed = False
        last_event = arrival.arrival_time
        try:
            while True:
                event_time = driver.next_event_time()
                if event_time is None:
                    break
                if event_time >= arrival.departure_time:
                    departed = True
                    break
                await self._timeline.acquire(arrival.index, event_time)
                last_event = event_time
                self._turn_granted(
                    event_time,
                    spec.session_id,
                    queue_depth=len(self._timeline._declared) - 1,
                )
                driver.step()
        finally:
            self._retire_session(
                arrival, driver, spec, departed=departed, now=last_event
            )
            await self._timeline.retire(arrival.index)

    # ------------------------------------------------------------------
    @classmethod
    def for_engine(
        cls,
        ctx,
        engine_name: str,
        arrivals: ArrivalProcess,
        *,
        policy: Optional[str] = None,
        per_session: int = 2,
        workflow_type: WorkflowType = WorkflowType.MIXED,
        share_engine: bool = False,
        accel: Optional[float] = None,
        speculation: bool = False,
        normalized: bool = False,
        on_record: Optional[Callable[[str, QueryRecord], None]] = None,
        scheduler: Optional[str] = None,
        trace_capture: Union[bool, int] = False,
        spool: Optional[RecordSpool] = None,
    ) -> "OpenSystemManager":
        """Build an open-system manager from an :class:`ExperimentContext`.

        Arriving session *i* gets the same purpose-string seed
        (:func:`~repro.common.rng.derive_session_seed`\\ ``(root, i)``)
        closed-system session *i* would get, so its workload is
        identical whether it arrives mid-run or starts at time zero.
        """
        from repro.bench.experiments import make_engine

        settings = ctx.settings
        dataset = ctx.dataset(settings.data_size, normalized)
        oracle = ctx.oracle(settings.data_size, normalized)
        generator = shared_policy_generator(ctx) if policy is not None else None

        def session_factory(index: int):
            return make_session(
                ctx,
                index,
                per_session=per_session,
                workflow_type=workflow_type,
                policy=policy,
                generator=generator,
            )

        if share_engine:
            engine = make_engine(
                engine_name, dataset, settings, VirtualClock(), speculation
            )
            return cls(
                oracle, settings, arrivals, session_factory,
                engine=engine, accel=accel, on_record=on_record,
                scheduler=scheduler, trace_capture=trace_capture,
                spool=spool,
            )
        return cls(
            oracle, settings, arrivals, session_factory,
            engine_factory=lambda: make_engine(
                engine_name, dataset, settings, VirtualClock(), speculation
            ),
            accel=accel, on_record=on_record, scheduler=scheduler,
            trace_capture=trace_capture, spool=spool,
        )


def serial_baseline(
    ctx,
    engine_name: str,
    specs: Sequence[SessionSpec],
    *,
    speculation: bool = False,
    normalized: bool = False,
) -> List[SessionResult]:
    """Run each session's workflows through the serial driver.

    The reference the server's isolated mode is compared against: one
    fresh engine per session, stepped to completion by
    :class:`~repro.bench.driver.BenchmarkDriver`. Per-session detailed
    reports must be byte-identical to the server's.
    """
    from repro.bench.experiments import make_engine

    settings = ctx.settings
    dataset = ctx.dataset(settings.data_size, normalized)
    oracle = ctx.oracle(settings.data_size, normalized)
    results: List[SessionResult] = []
    for spec in specs:
        engine = make_engine(
            engine_name, dataset, settings, VirtualClock(), speculation
        )
        engine.prepare()
        driver = BenchmarkDriver(engine, oracle, settings)
        results.append(SessionResult(spec, driver.run_suite(list(spec.workflows))))
    return results
