"""Session descriptions, live metric streams, and per-session results.

One *session* models one user of §2.2's interactive exploration setting:
a think-time-paced sequence of workflows issuing concurrent queries. The
server (:mod:`repro.server.manager`) multiplexes many of them; this
module holds the passive data types:

* :class:`SessionSpec` — who the session is (id, seed) and what it runs
  (its workflow suite, derived from the seed);
* :class:`SessionStream` — the session's live metric stream: every
  evaluated query deadline pushes its :class:`~repro.bench.driver.QueryRecord`
  to subscribers the moment it is produced, in virtual-time order;
* :class:`SessionResult` — the finished session: records plus the same
  Table-1 detailed report and Fig.-5 summary the serial driver produces,
  so per-session output can be compared byte-for-byte against a serial
  run (the server's core guarantee, docs/server.md).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.driver import QueryRecord
from repro.bench.report import DetailedReport, SummaryRow, summarize_records
from repro.common.errors import BenchmarkError
from repro.workflow.spec import Workflow


@dataclass(frozen=True)
class SessionSpec:
    """One simulated user session: identity, seed, and workload source.

    A session runs either a pre-generated ``workflows`` suite (scripted —
    and, through :class:`~repro.workflow.policy.ReplayPolicy`, the
    ``replay`` policy) or an adaptive :attr:`policy` by name, in which
    case ``workflows`` is empty and the session chooses interactions
    online from what it observes (docs/server.md's adaptive mode).
    """

    session_id: str
    workflows: Tuple[Workflow, ...] = ()
    seed: int = 0
    policy: Optional[str] = None

    def __post_init__(self):
        if not self.session_id:
            raise BenchmarkError("session needs an id")
        if not self.workflows and self.policy is None:
            raise BenchmarkError(
                f"session {self.session_id!r} needs workflows or a policy"
            )

    @property
    def num_interactions(self) -> int:
        return sum(w.num_interactions for w in self.workflows)


class SessionStream:
    """Per-session metric stream: records in evaluation order, observable.

    The driver pushes each :class:`QueryRecord` the instant its deadline
    is evaluated; subscribers (live dashboards, progress printers, the
    CLI's ``--follow`` output) see it immediately while the session keeps
    running. ``records`` accumulates everything for end-of-run reporting
    — unless the stream is built with ``retain=False``, the server's
    constant-memory (spool) mode: records then exist only for the
    duration of the subscriber callbacks (which spill them to disk
    and/or fold them into an incremental aggregate) and are dropped.
    """

    def __init__(self, session_id: str, retain: bool = True):
        self.session_id = session_id
        self.retain = retain
        self.records: List[QueryRecord] = []
        self._subscribers: List[Callable[[str, QueryRecord], None]] = []

    def subscribe(self, callback: Callable[[str, QueryRecord], None]) -> None:
        """Register ``callback(session_id, record)`` for future pushes."""
        self._subscribers.append(callback)

    def push(self, record: QueryRecord) -> None:
        if self.retain:
            self.records.append(record)
        for callback in self._subscribers:
            callback(self.session_id, record)

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class SessionResult:
    """A finished session's records plus standard report renderings."""

    spec: SessionSpec
    records: List[QueryRecord] = field(default_factory=list)
    #: Interactions the session actually fired, by kind — the observable
    #: behavioral fingerprint adaptive policies are compared on
    #: (``repro bench-adaptive``'s interaction-mix columns).
    interaction_counts: Dict[str, int] = field(default_factory=dict)
    #: Virtual time the session left mid-run (open-system churn), or None
    #: when it ran to completion.
    departed_at: Optional[float] = None
    #: Driver step() invocations the session consumed (deadline + grid
    #: events) — the activity counter ``repro serve``'s footer reports.
    steps: int = 0

    @property
    def abandoned(self) -> bool:
        """True when the session departed mid-run (in-flight work dropped)."""
        return self.departed_at is not None

    @property
    def session_id(self) -> str:
        return self.spec.session_id

    @property
    def num_queries(self) -> int:
        return len(self.records)

    def summary(self) -> SummaryRow:
        """The session's overall Fig.-5 summary row."""
        return summarize_records(self.records, group_key=lambda r: "all")[-1]

    def detailed_report(self) -> DetailedReport:
        return DetailedReport(self.records)

    def csv_text(self) -> str:
        """The Table-1 detailed CSV as a string (byte-identity checks)."""
        buffer = io.StringIO()
        self.detailed_report().to_csv(buffer)
        return buffer.getvalue()


def total_records(results: Sequence[SessionResult]) -> int:
    return sum(result.num_queries for result in results)
