"""Data substrate: columnar storage, seed data, copula scaling, star schemas.

This subpackage implements §4.2 of the paper:

* :mod:`repro.data.storage` — a small numpy-backed column store
  (:class:`Table`, :class:`Dataset`) with CSV round-trips. Every engine
  simulator executes against these structures.
* :mod:`repro.data.schema` — column kinds (quantitative vs. nominal) and
  star-schema specifications.
* :mod:`repro.data.seed` — the synthetic U.S.-domestic-flights seed dataset
  standing in for the BTS data the paper uses (see DESIGN.md §4 for the
  substitution rationale).
* :mod:`repro.data.stats` — empirical CDFs, normal scores and covariance
  utilities shared by the scaler.
* :mod:`repro.data.generator` — the Gaussian-copula (NORTA) data scaler:
  Cholesky on the covariance of normal scores, exactly the §4.2 recipe.
* :mod:`repro.data.normalize` — vertical partitioning of a de-normalized
  table into a star schema (one fact plus dimension tables) and back.
"""

from repro.data.generator import CopulaScaler, scale_dataset
from repro.data.normalize import (
    DimensionSpec,
    FLIGHTS_STAR_SPEC,
    denormalize,
    load_star_spec,
    normalize,
    save_star_spec,
)
from repro.data.schema import ColumnKind, ColumnProfile, profile_table
from repro.data.seed import FLIGHTS_COLUMNS, generate_flights_seed
from repro.data.storage import Dataset, ForeignKey, Table

__all__ = [
    "ColumnKind",
    "ColumnProfile",
    "CopulaScaler",
    "Dataset",
    "DimensionSpec",
    "FLIGHTS_COLUMNS",
    "FLIGHTS_STAR_SPEC",
    "ForeignKey",
    "Table",
    "denormalize",
    "generate_flights_seed",
    "load_star_spec",
    "normalize",
    "profile_table",
    "save_star_spec",
    "scale_dataset",
]
