"""The IDEBench data scaler: Gaussian-copula (NORTA) scaling of a seed.

Implements §4.2 of the paper, step for step:

1. draw a random sample from the seed dataset;
2. map every column to standard-normal scores (rank-based probit — the
   Gaussian-copula construction; nominal columns are ordered by category
   frequency first) and compute the covariance matrix Σ of the scores;
3. Cholesky-factor Σ = L Lᵀ;
4. per output tuple, draw X ~ N(0, I), correlate X̃ = L X, map to uniforms
   U = Φ(X̃), and push U through each column's empirical inverse CDF.

The result is a dataset of arbitrary size whose marginal distributions
match the seed sample and whose pairwise (rank) correlations match the
seed's — which is exactly the property the paper needs so that AQP result
quality remains comparable across scale factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.common.errors import DataGenerationError
from repro.common.rng import derive_rng
from repro.data.stats import (
    NominalInverseCdf,
    NumericInverseCdf,
    correlation_of_scores,
    gaussian_to_uniform,
    normal_scores,
    safe_cholesky,
)
from repro.data.storage import Table

#: Default number of seed rows used for the copula fit.
DEFAULT_FIT_SAMPLE = 20_000

#: Generation proceeds in batches to bound peak memory for large outputs.
DEFAULT_BATCH_ROWS = 200_000


@dataclass
class CopulaScaler:
    """Fit once on a seed table, then generate any number of rows.

    Example
    -------
    >>> seed = generate_flights_seed(50_000, seed=1)   # doctest: +SKIP
    >>> scaler = CopulaScaler.fit(seed, seed_value=1)  # doctest: +SKIP
    >>> big = scaler.generate(1_000_000)               # doctest: +SKIP
    """

    column_names: List[str]
    cholesky: np.ndarray
    numeric_cdfs: Dict[str, NumericInverseCdf]
    nominal_cdfs: Dict[str, NominalInverseCdf]
    table_name: str
    seed_value: int
    correlation: np.ndarray = field(repr=False, default=None)

    @classmethod
    def fit(
        cls,
        seed_table: Table,
        fit_sample: int = DEFAULT_FIT_SAMPLE,
        seed_value: int = 42,
    ) -> "CopulaScaler":
        """Fit the copula model on a random sample of ``seed_table``."""
        if seed_table.num_rows < 2:
            raise DataGenerationError("seed table needs at least 2 rows to fit")
        rng = derive_rng(seed_value, "copula-fit", seed_table.name)
        n = min(fit_sample, seed_table.num_rows)
        sample_idx = rng.choice(seed_table.num_rows, size=n, replace=False)
        sample = seed_table.take(sample_idx)

        numeric_cdfs: Dict[str, NumericInverseCdf] = {}
        nominal_cdfs: Dict[str, NominalInverseCdf] = {}
        score_columns: List[np.ndarray] = []
        for name in sample.column_names:
            values = sample[name]
            if sample.is_numeric(name):
                numeric_cdfs[name] = NumericInverseCdf.fit(values)
                score_basis = values.astype(np.float64)
            else:
                cdf = NominalInverseCdf.fit(values)
                nominal_cdfs[name] = cdf
                # Frequency-rank codes put common categories at the center
                # of the Gaussian, preserving monotone association.
                score_basis = cdf.code_of(values).astype(np.float64)
            score_columns.append(normal_scores(score_basis, rng))

        scores = np.column_stack(score_columns)
        sigma = correlation_of_scores(scores)
        return cls(
            column_names=list(sample.column_names),
            cholesky=safe_cholesky(sigma),
            numeric_cdfs=numeric_cdfs,
            nominal_cdfs=nominal_cdfs,
            table_name=seed_table.name,
            seed_value=seed_value,
            correlation=sigma,
        )

    def generate(
        self,
        num_rows: int,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        stream: Optional[Union[int, str]] = None,
    ) -> Table:
        """Generate ``num_rows`` correlated tuples.

        ``stream`` differentiates independent outputs from the same fitted
        model (e.g. the S/M/L datasets each get their own stream so the
        smaller datasets are not prefixes of the larger ones).
        """
        if num_rows < 1:
            raise DataGenerationError(f"num_rows must be >= 1, got {num_rows}")
        rng = derive_rng(self.seed_value, "copula-generate", self.table_name, stream)
        batches: List[Table] = []
        remaining = num_rows
        while remaining > 0:
            batch = min(remaining, batch_rows)
            batches.append(self._generate_batch(batch, rng))
            remaining -= batch
        return Table.concat(self.table_name, batches)

    def _generate_batch(self, num_rows: int, rng: np.random.Generator) -> Table:
        k = len(self.column_names)
        independent = rng.standard_normal(size=(num_rows, k))
        correlated = independent @ self.cholesky.T
        uniforms = gaussian_to_uniform(correlated)
        columns: Dict[str, np.ndarray] = {}
        for j, name in enumerate(self.column_names):
            u = uniforms[:, j]
            if name in self.numeric_cdfs:
                columns[name] = self.numeric_cdfs[name].apply(u)
            else:
                columns[name] = self.nominal_cdfs[name].apply(u)
        return Table(self.table_name, columns)


def scale_dataset(
    seed_table: Table,
    num_rows: int,
    seed_value: int = 42,
    fit_sample: int = DEFAULT_FIT_SAMPLE,
    stream: Optional[Union[int, str]] = None,
) -> Table:
    """One-shot convenience: fit a :class:`CopulaScaler` and generate.

    This is the call sites' entry point for §4.2's "scale any seed dataset
    to an arbitrary size". For repeated generation from one seed, fit the
    scaler once and call :meth:`CopulaScaler.generate` directly.
    """
    scaler = CopulaScaler.fit(seed_table, fit_sample=fit_sample, seed_value=seed_value)
    return scaler.generate(num_rows, stream=stream)
