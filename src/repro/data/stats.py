"""Statistical helpers for the Gaussian-copula data scaler (§4.2).

The paper's scaling procedure is, verbatim: *"From the seed dataset we
first create a random sample. We then compute the covariance matrix Σ and
perform the Cholesky decomposition on Σ = AᵀA. To create a new tuple, we
first generate a vector X ∼ N(0,1) of random normal variables and induce
correlation by computing X̃ = AX. We then transform X̃ to uniform
distribution and finally use the CDF from our sample to transform the
uniform variables to a correlated tuple."*

This module provides the building blocks: rank-based normal scores (so the
covariance is computed on a common Gaussian scale — the standard NORTA /
Gaussian-copula construction), a numerically safe Cholesky, and empirical
inverse CDFs for both quantitative and nominal columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.common.errors import DataGenerationError


def normal_scores(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Map ``values`` to standard-normal scores via randomized ranks.

    Ties are broken randomly (with ``rng``) rather than averaged: averaging
    collapses heavily tied columns (e.g. integer delays, category codes) to
    a few atoms, which deflates the estimated correlations. The uniform
    rank ``(r + 0.5) / n`` keeps scores strictly inside (0, 1) so the probit
    transform stays finite.
    """
    n = len(values)
    if n == 0:
        raise DataGenerationError("cannot compute normal scores of empty column")
    jitter = rng.permutation(n)
    order = np.lexsort((jitter, values))
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = np.arange(n, dtype=np.float64)
    uniforms = (ranks + 0.5) / n
    return scipy_stats.norm.ppf(uniforms)


def safe_cholesky(matrix: np.ndarray, max_jitter: float = 1e-3) -> np.ndarray:
    """Lower-triangular Cholesky factor with escalating diagonal jitter.

    Covariance matrices of normal scores are positive semi-definite in
    exact arithmetic but can fail numerically (constant columns, strong
    collinearity). We add ``eps * I`` with ``eps`` escalating by 10× until
    factorization succeeds, failing loudly past ``max_jitter``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DataGenerationError(f"expected square matrix, got {matrix.shape}")
    eps = 0.0
    while True:
        try:
            return np.linalg.cholesky(matrix + eps * np.eye(len(matrix)))
        except np.linalg.LinAlgError:
            eps = 1e-10 if eps == 0.0 else eps * 10.0
            if eps > max_jitter:
                raise DataGenerationError(
                    "covariance matrix is too far from positive definite "
                    f"(jitter {eps:.1e} exceeded limit {max_jitter:.1e})"
                ) from None


@dataclass(frozen=True)
class NumericInverseCdf:
    """Empirical inverse CDF of a numeric sample (linear interpolation).

    ``apply`` maps uniforms in [0, 1] to sample quantiles — the last step
    of the §4.2 pipeline for quantitative columns. Integer columns are
    rounded back to integers so the scaled data keeps the seed's dtype.
    """

    sorted_values: np.ndarray
    integral: bool

    @classmethod
    def fit(cls, values: np.ndarray) -> "NumericInverseCdf":
        array = np.asarray(values, dtype=np.float64)
        return cls(np.sort(array), bool(np.asarray(values).dtype.kind == "i"))

    def apply(self, uniforms: np.ndarray) -> np.ndarray:
        positions = np.clip(uniforms, 0.0, 1.0) * (len(self.sorted_values) - 1)
        lower = np.floor(positions).astype(np.int64)
        upper = np.minimum(lower + 1, len(self.sorted_values) - 1)
        frac = positions - lower
        result = (
            self.sorted_values[lower] * (1.0 - frac)
            + self.sorted_values[upper] * frac
        )
        if self.integral:
            return np.rint(result).astype(np.int64)
        return result


@dataclass(frozen=True)
class NominalInverseCdf:
    """Empirical inverse CDF of a categorical sample.

    Categories are ordered by descending frequency; a uniform ``u`` maps to
    the first category whose cumulative probability exceeds ``u``. Ordering
    by frequency makes the probit scale meaningful for correlations: common
    categories sit near the center of the Gaussian, rare ones in the tail,
    which preserves monotone association between, e.g., carrier and delay.
    """

    categories: np.ndarray
    cumulative: np.ndarray

    @classmethod
    def fit(cls, values: np.ndarray) -> "NominalInverseCdf":
        categories, counts = np.unique(np.asarray(values, dtype=str), return_counts=True)
        order = np.argsort(-counts, kind="stable")
        categories, counts = categories[order], counts[order]
        cumulative = np.cumsum(counts) / counts.sum()
        return cls(categories, cumulative)

    def apply(self, uniforms: np.ndarray) -> np.ndarray:
        indices = np.searchsorted(self.cumulative, np.clip(uniforms, 0.0, 1.0))
        indices = np.minimum(indices, len(self.categories) - 1)
        return self.categories[indices]

    def code_of(self, values: np.ndarray) -> np.ndarray:
        """Frequency-rank codes of ``values`` (0 = most common)."""
        lookup = {category: i for i, category in enumerate(self.categories)}
        try:
            return np.array([lookup[str(v)] for v in values], dtype=np.int64)
        except KeyError as exc:
            raise DataGenerationError(
                f"value {exc.args[0]!r} not present in fitted categories"
            ) from None


def correlation_of_scores(scores: np.ndarray) -> np.ndarray:
    """Covariance matrix of column-stacked normal scores.

    With standardized scores this is (up to sampling noise) the copula
    correlation matrix Σ of §4.2; the diagonal is re-normalized to exactly
    1 so the generated marginals stay N(0, 1).
    """
    if scores.ndim != 2:
        raise DataGenerationError(f"expected 2-D score matrix, got {scores.ndim}-D")
    sigma = np.cov(scores, rowvar=False)
    sigma = np.atleast_2d(sigma)
    diag = np.sqrt(np.clip(np.diag(sigma), 1e-12, None))
    sigma = sigma / np.outer(diag, diag)
    np.fill_diagonal(sigma, 1.0)
    return sigma


def gaussian_to_uniform(samples: np.ndarray) -> np.ndarray:
    """Probit inverse: map correlated N(0,1) samples to uniforms (Φ)."""
    return scipy_stats.norm.cdf(samples)


def empirical_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation of two numeric arrays (test/validation helper)."""
    if len(x) != len(y) or len(x) < 2:
        raise DataGenerationError("need two equal-length arrays of size >= 2")
    if float(np.std(x)) == 0.0 or float(np.std(y)) == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (what the copula actually preserves)."""
    result: Tuple[float, float] = scipy_stats.spearmanr(x, y)
    return float(result[0])
