"""Columnar in-memory storage: :class:`Table` and :class:`Dataset`.

The engine simulators in :mod:`repro.engines` execute real aggregations, so
they need a real storage layer. This module provides a deliberately small
column store:

* a :class:`Table` is an ordered mapping of column name to a 1-D numpy
  array, all of equal length; numeric columns are ``float64``/``int64``,
  nominal columns are numpy unicode arrays;
* a :class:`Dataset` is a set of tables plus foreign-key metadata — either
  a single de-normalized table or a star schema (fact + dimensions), the
  two layouts §4.6's *Using Joins* setting switches between.

CSV import/export mirrors the paper's systems, all of which load CSV files
(§5.2 data-preparation discussion).
"""

from __future__ import annotations

import csv
import hashlib
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import DataGenerationError, QueryError


def _as_column(values) -> np.ndarray:
    """Coerce ``values`` into a 1-D column array with a supported dtype."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise DataGenerationError(
            f"columns must be 1-D, got array of shape {array.shape}"
        )
    if array.dtype.kind in ("i", "u"):
        return array.astype(np.int64)
    if array.dtype.kind == "f":
        return array.astype(np.float64)
    if array.dtype.kind == "b":
        return array.astype(np.int64)
    if array.dtype.kind in ("U", "S", "O"):
        return array.astype(str)
    raise DataGenerationError(f"unsupported column dtype {array.dtype!r}")


class Table:
    """An immutable-by-convention columnar table.

    Columns are exposed through ``table[name]``; all mutating operations
    return new :class:`Table` objects (``select``, ``take``, ``head``,
    ``with_columns`` …) so engines can share tables safely.
    """

    def __init__(self, name: str, columns: Dict[str, Iterable]):
        if not name:
            raise DataGenerationError("table name must be non-empty")
        if not columns:
            raise DataGenerationError(f"table {name!r} must have columns")
        self.name = name
        self._columns: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for column_name, values in columns.items():
            if not column_name:
                raise DataGenerationError("column names must be non-empty")
            array = _as_column(values)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise DataGenerationError(
                    f"column {column_name!r} has {len(array)} rows, "
                    f"expected {length}"
                )
            self._columns[column_name] = array
        self._num_rows = int(length or 0)
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return self._num_rows

    @property
    def column_names(self) -> List[str]:
        """Column names in definition order."""
        return list(self._columns)

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __getitem__(self, column: str) -> np.ndarray:
        try:
            return self._columns[column]
        except KeyError:
            raise QueryError(
                f"table {self.name!r} has no column {column!r}; "
                f"available: {self.column_names}"
            ) from None

    def is_numeric(self, column: str) -> bool:
        """Whether ``column`` holds numeric (quantitative-capable) data."""
        return self[column].dtype.kind in ("i", "f")

    def memory_bytes(self) -> int:
        """Approximate memory footprint of all column arrays."""
        return int(sum(array.nbytes for array in self._columns.values()))

    def fingerprint(self) -> str:
        """Stable content digest of the table (names, dtypes and values).

        Two tables with identical columns fingerprint identically in every
        process — the persistent ground-truth cache keys on this so answer
        artifacts computed by one worker are valid for all others.
        Memoized (columns are immutable-by-convention): the compiled-kernel
        cache consults dataset fingerprints on every query submission.
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            for column_name, array in self._columns.items():
                hasher.update(column_name.encode("utf-8"))
                hasher.update(str(array.dtype.kind).encode("utf-8"))
                hasher.update(np.ascontiguousarray(array).tobytes())
            self._fingerprint = hasher.hexdigest()[:32]
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self._num_rows}, "
            f"columns={self.column_names})"
        )

    # ------------------------------------------------------------------
    # Row-set operations
    # ------------------------------------------------------------------
    def select(self, mask: np.ndarray) -> "Table":
        """Return the rows where boolean ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self._num_rows,):
            raise QueryError(
                f"mask must be a boolean array of length {self._num_rows}"
            )
        return Table(
            self.name, {name: array[mask] for name, array in self._columns.items()}
        )

    def take(self, indices: np.ndarray) -> "Table":
        """Return the rows at ``indices`` (any integer fancy index)."""
        indices = np.asarray(indices)
        return Table(
            self.name,
            {name: array[indices] for name, array in self._columns.items()},
        )

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return Table(
            self.name, {name: array[:n] for name, array in self._columns.items()}
        )

    def with_columns(self, new_columns: Dict[str, Iterable]) -> "Table":
        """Return a copy with columns added or replaced."""
        merged: Dict[str, Iterable] = dict(self._columns)
        merged.update(new_columns)
        return Table(self.name, merged)

    def without_columns(self, names: Sequence[str]) -> "Table":
        """Return a copy with the given columns removed."""
        remaining = {
            name: array
            for name, array in self._columns.items()
            if name not in set(names)
        }
        return Table(self.name, remaining)

    def renamed(self, name: str) -> "Table":
        """Return the same columns under a different table name."""
        return Table(name, dict(self._columns))

    def rows(self) -> Iterator[Tuple]:
        """Iterate over rows as tuples (test/debug helper; not fast)."""
        arrays = list(self._columns.values())
        for i in range(self._num_rows):
            yield tuple(array[i] for array in arrays)

    def equals(self, other: "Table") -> bool:
        """Structural equality: same columns, same values (names may differ)."""
        if self.column_names != other.column_names:
            return False
        for name in self.column_names:
            left, right = self[name], other[name]
            if left.dtype.kind != right.dtype.kind or len(left) != len(right):
                return False
            if left.dtype.kind == "f":
                if not np.allclose(left, right, equal_nan=True):
                    return False
            elif not np.array_equal(left, right):
                return False
        return True

    @classmethod
    def concat(cls, name: str, parts: Sequence["Table"]) -> "Table":
        """Vertically concatenate tables with identical column sets."""
        if not parts:
            raise DataGenerationError("cannot concatenate zero tables")
        first = parts[0]
        for part in parts[1:]:
            if part.column_names != first.column_names:
                raise DataGenerationError(
                    "cannot concatenate tables with different columns: "
                    f"{first.column_names} vs {part.column_names}"
                )
        return cls(
            name,
            {
                column: np.concatenate([part[column] for part in parts])
                for column in first.column_names
            },
        )

    # ------------------------------------------------------------------
    # CSV round-trips
    # ------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path, io.TextIOBase]) -> None:
        """Write the table as a CSV file with a header row."""
        if isinstance(path, (str, Path)):
            with open(path, "w", encoding="utf-8", newline="") as handle:
                self._write_csv(handle)
        else:
            self._write_csv(path)

    def _write_csv(self, handle) -> None:
        writer = csv.writer(handle)
        writer.writerow(self.column_names)
        arrays = list(self._columns.values())
        for i in range(self._num_rows):
            writer.writerow([_format_csv_value(array[i]) for array in arrays])

    @classmethod
    def from_csv(
        cls, path: Union[str, Path, io.TextIOBase], name: Optional[str] = None
    ) -> "Table":
        """Read a CSV file, inferring int/float/string column types."""
        if isinstance(path, (str, Path)):
            table_name = name or Path(path).stem
            with open(path, "r", encoding="utf-8", newline="") as handle:
                return cls._read_csv(handle, table_name)
        return cls._read_csv(path, name or "table")

    @classmethod
    def _read_csv(cls, handle, name: str) -> "Table":
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataGenerationError("CSV file is empty") from None
        raw_columns: List[List[str]] = [[] for _ in header]
        for row in reader:
            if len(row) != len(header):
                raise DataGenerationError(
                    f"CSV row has {len(row)} fields, expected {len(header)}"
                )
            for cell, bucket in zip(row, raw_columns):
                bucket.append(cell)
        columns = {
            column: _infer_column(values)
            for column, values in zip(header, raw_columns)
        }
        return cls(name, columns)


def _format_csv_value(value) -> str:
    """Render a cell: integers without decimal point, floats repr-round-trip."""
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    return str(value)


def _infer_column(values: List[str]) -> np.ndarray:
    """Infer the tightest supported dtype for CSV text ``values``."""
    try:
        return np.array([int(v) for v in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(v) for v in values], dtype=np.float64)
    except ValueError:
        pass
    return np.array(values, dtype=str)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge of a star schema.

    ``fact_column`` in the fact table stores integer keys referencing
    ``dim_key`` in ``dim_table``. ``attribute_map`` maps de-normalized
    column names (as used in queries, e.g. ``ORIGIN_STATE``) to the
    dimension-table column that now holds them (e.g. ``state``).
    """

    fact_column: str
    dim_table: str
    dim_key: str
    attribute_map: Tuple[Tuple[str, str], ...]

    def denormalized_columns(self) -> List[str]:
        """The de-normalized names this FK makes reachable."""
        return [denorm for denorm, _ in self.attribute_map]


class Dataset:
    """A set of tables plus star-schema metadata.

    A de-normalized dataset has a single fact table and no foreign keys; a
    normalized one (``normalize``) has a fact table whose FK columns point
    into dimension tables. :meth:`resolve_column` hides the difference from
    query evaluation: it tells callers where a logical column lives and
    whether reaching it requires a join.
    """

    def __init__(
        self,
        tables: Dict[str, Table],
        fact_table: str,
        foreign_keys: Sequence[ForeignKey] = (),
    ):
        if fact_table not in tables:
            raise DataGenerationError(
                f"fact table {fact_table!r} not among tables {sorted(tables)}"
            )
        for fk in foreign_keys:
            if fk.dim_table not in tables:
                raise DataGenerationError(
                    f"foreign key references unknown table {fk.dim_table!r}"
                )
            if fk.fact_column not in tables[fact_table]:
                raise DataGenerationError(
                    f"fact table has no FK column {fk.fact_column!r}"
                )
        self.tables = dict(tables)
        self.fact_table = fact_table
        self.foreign_keys = tuple(foreign_keys)
        self._fingerprint: Optional[str] = None

    @property
    def fact(self) -> Table:
        """The fact table."""
        return self.tables[self.fact_table]

    @property
    def is_normalized(self) -> bool:
        """Whether this dataset is a star schema (has dimension tables)."""
        return bool(self.foreign_keys)

    @property
    def num_fact_rows(self) -> int:
        """Number of rows in the fact table."""
        return self.fact.num_rows

    def total_rows(self) -> int:
        """Summed row count over all tables (used for size comparisons)."""
        return sum(table.num_rows for table in self.tables.values())

    def resolve_column(self, name: str) -> Tuple[str, str, Optional[ForeignKey]]:
        """Locate logical column ``name``.

        Returns ``(table_name, physical_column, fk_or_None)`` where ``fk``
        is the foreign key to traverse (None if the column lives directly
        in the fact table).
        """
        if name in self.fact:
            return self.fact_table, name, None
        for fk in self.foreign_keys:
            for denorm, dim_column in fk.attribute_map:
                if denorm == name:
                    return fk.dim_table, dim_column, fk
        raise QueryError(
            f"column {name!r} is not reachable from fact table "
            f"{self.fact_table!r}"
        )

    def gather_column(self, name: str) -> np.ndarray:
        """Materialize logical column ``name`` at fact-table granularity.

        For FK-reachable columns this performs the join by integer
        dereference (the simulators charge the *cost* of the join
        separately through their cost models — see
        :mod:`repro.engines.joins`).
        """
        table_name, physical, fk = self.resolve_column(name)
        if fk is None:
            return self.tables[table_name][physical]
        keys = self.fact[fk.fact_column]
        dim = self.tables[fk.dim_table]
        return dim[physical][keys]

    def column_is_numeric(self, name: str) -> bool:
        """Whether logical column ``name`` holds numeric data."""
        table_name, physical, _ = self.resolve_column(name)
        return self.tables[table_name].is_numeric(physical)

    def logical_columns(self) -> List[str]:
        """All queryable column names (fact columns + FK-reachable ones).

        FK columns themselves are excluded: they are an artifact of
        normalization, not part of the logical schema users explore.
        """
        fk_columns = {fk.fact_column for fk in self.foreign_keys}
        names = [c for c in self.fact.column_names if c not in fk_columns]
        for fk in self.foreign_keys:
            names.extend(fk.denormalized_columns())
        return names

    def fingerprint(self) -> str:
        """Stable content digest over all tables plus the FK metadata.

        Memoized: tables are immutable-by-convention, and the compiled-
        kernel cache keys every lookup on this digest, so hashing the
        column bytes more than once per dataset would dwarf the lookups
        it is meant to make cheap.
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            hasher.update(self.fact_table.encode("utf-8"))
            for name in sorted(self.tables):
                hasher.update(name.encode("utf-8"))
                hasher.update(self.tables[name].fingerprint().encode("utf-8"))
            for fk in self.foreign_keys:
                hasher.update(repr(fk).encode("utf-8"))
            self._fingerprint = hasher.hexdigest()[:32]
        return self._fingerprint

    def __repr__(self) -> str:
        kind = "star" if self.is_normalized else "denormalized"
        return (
            f"Dataset({kind}, fact={self.fact_table!r}, "
            f"tables={sorted(self.tables)}, rows={self.num_fact_rows})"
        )

    @classmethod
    def from_table(cls, table: Table) -> "Dataset":
        """Wrap a single de-normalized table as a dataset."""
        return cls({table.name: table}, table.name)
