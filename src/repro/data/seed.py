"""Synthetic U.S. domestic flights seed dataset (§5.1's default data).

The paper's default configuration uses real BTS "on-time performance"
flight records [31] because *"it contains real-world data and
distributions"* — skew and correlation are what stress approximate query
processing. The BTS archive is not available offline, so this module
generates a synthetic seed with the same schema (Fig. 2) and the
statistical properties that matter to the benchmark:

* **heavy-tailed, mixture-shaped delays** — most flights are on time, a
  minority is very late (drives missing-bin and relative-error behaviour
  of sampled estimates);
* **correlated DEP_DELAY / ARR_DELAY** (departure delays propagate) and
  a day-time effect (evening flights are later), so the copula scaler has
  real correlation structure to preserve;
* **Zipf-distributed carriers and airports** (hub-and-spoke traffic), so
  nominal group-bys have both huge and tiny groups;
* **distance/air-time geometry** from pseudo-coordinates, so physical
  quantities stay mutually consistent.

The generated table is the *seed*; the copula scaler of
:mod:`repro.data.generator` then scales it to the benchmark sizes, exactly
as IDEBench scales the BTS seed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.common.errors import DataGenerationError
from repro.common.rng import derive_rng
from repro.data.storage import Table

#: Columns of the seed table, in schema order (Fig. 2 of the paper).
FLIGHTS_COLUMNS = (
    "MONTH",
    "DAY_OF_WEEK",
    "DEP_TIME",
    "ARR_TIME",
    "DEP_DELAY",
    "ARR_DELAY",
    "AIR_TIME",
    "DISTANCE",
    "ELAPSED_TIME",
    "UNIQUE_CARRIER",
    "ORIGIN",
    "ORIGIN_STATE",
    "DEST",
    "DEST_STATE",
)

#: Number of distinct carriers. The paper's Exp. 3 workflow uses a 25-bin
#: nominal histogram of carriers, implying 25 distinct carriers.
NUM_CARRIERS = 25
#: Number of distinct airports in the seed.
NUM_AIRPORTS = 60

_STATE_CODES = (
    "AL AK AZ AR CA CO CT DE FL GA HI ID IL IN IA KS KY LA ME MD "
    "MA MI MN MS MO MT NE NV NH NJ NM NY NC ND OH OK OR PA RI SC "
    "SD TN TX UT VT VA WA WV WI WY"
).split()


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    """Zipf(n, s) probability vector: p_k ∝ 1 / k^s."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, exponent)
    return weights / weights.sum()


def _carrier_codes(n: int) -> List[str]:
    """Two-letter-plus-index carrier codes, e.g. ``AA0`` … ``ZZ24``."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return [f"{letters[i % 26]}{letters[(i * 7 + 3) % 26]}" for i in range(n)]


def _airport_codes(n: int) -> List[str]:
    """Three-letter synthetic IATA-like codes (deterministic, distinct).

    Indices are mapped through ``i * 7919 mod 26**3`` (7919 is prime and
    coprime to 26³, so the map is a bijection) and then base-26 encoded,
    which spreads codes over the alphabet without collisions.
    """
    if n > 26**3:
        raise DataGenerationError(f"cannot generate more than {26**3} codes")
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    codes = []
    for i in range(n):
        value = (i * 7919) % (26**3)
        first, rest = divmod(value, 26 * 26)
        second, third = divmod(rest, 26)
        codes.append(letters[first] + letters[second] + letters[third])
    if len(set(codes)) != n:
        raise DataGenerationError("airport code generator produced duplicates")
    return codes


def generate_flights_seed(num_rows: int = 100_000, seed: int = 42) -> Table:
    """Generate the synthetic flights seed table.

    Parameters
    ----------
    num_rows:
        Seed size. 100k is plenty for the copula fit (the paper likewise
        fits on "a random sample" of its seed).
    seed:
        Root seed; all internal streams derive from it.
    """
    if num_rows < 1:
        raise DataGenerationError(f"num_rows must be >= 1, got {num_rows}")
    rng = derive_rng(seed, "flights-seed")

    carriers = np.array(_carrier_codes(NUM_CARRIERS), dtype=str)
    airports = np.array(_airport_codes(NUM_AIRPORTS), dtype=str)
    # Airports are pinned to pseudo-coordinates in a continental-US-like
    # box (longitude-ish 0..2600 miles, latitude-ish 0..1200 miles) and to
    # a home state; hub airports (low Zipf rank) sit closer to the middle.
    coord_rng = derive_rng(seed, "flights-seed", "geography")
    airport_x = coord_rng.uniform(0.0, 2600.0, size=NUM_AIRPORTS)
    airport_y = coord_rng.uniform(0.0, 1200.0, size=NUM_AIRPORTS)
    airport_state = coord_rng.choice(_STATE_CODES, size=NUM_AIRPORTS)

    carrier_probs = _zipf_probabilities(NUM_CARRIERS, 1.35)
    airport_probs = _zipf_probabilities(NUM_AIRPORTS, 1.15)

    carrier_idx = rng.choice(NUM_CARRIERS, size=num_rows, p=carrier_probs)
    origin_idx = rng.choice(NUM_AIRPORTS, size=num_rows, p=airport_probs)
    dest_idx = rng.choice(NUM_AIRPORTS, size=num_rows, p=airport_probs)
    # Avoid origin == destination: re-draw collisions once, then shift.
    collisions = origin_idx == dest_idx
    dest_idx[collisions] = rng.choice(NUM_AIRPORTS, size=int(collisions.sum()), p=airport_probs)
    still = origin_idx == dest_idx
    dest_idx[still] = (dest_idx[still] + 1) % NUM_AIRPORTS

    # --- distance & air time from geometry --------------------------------
    dx = airport_x[origin_idx] - airport_x[dest_idx]
    dy = airport_y[origin_idx] - airport_y[dest_idx]
    distance = np.sqrt(dx * dx + dy * dy) + rng.normal(0.0, 15.0, size=num_rows)
    distance = np.clip(distance, 60.0, None)
    air_time = distance / 8.0 + 18.0 + rng.normal(0.0, 7.0, size=num_rows)
    air_time = np.clip(air_time, 20.0, None)

    # --- departure time: morning/midday/evening mixture -------------------
    component = rng.choice(3, size=num_rows, p=[0.38, 0.27, 0.35])
    means = np.array([7.6 * 60, 12.5 * 60, 18.1 * 60])
    stds = np.array([75.0, 95.0, 110.0])
    dep_time = rng.normal(means[component], stds[component])
    dep_time = np.clip(dep_time, 0.0, 1439.0)

    # --- delays: on-time mass + moderate + heavy tail ----------------------
    delay_kind = rng.choice(3, size=num_rows, p=[0.62, 0.28, 0.10])
    dep_delay = np.where(
        delay_kind == 0,
        rng.normal(-3.0, 4.5, size=num_rows),
        np.where(
            delay_kind == 1,
            rng.exponential(14.0, size=num_rows) + 2.0,
            rng.exponential(55.0, size=num_rows) + 15.0,
        ),
    )
    # Evening flights accumulate delay: +0..8 min drift across the day.
    dep_delay = dep_delay + (dep_time / 1440.0) * 8.0
    # Carrier quality effect: higher-rank (rarer) carriers run later.
    carrier_penalty = (carrier_idx / max(NUM_CARRIERS - 1, 1)) * 6.0
    dep_delay = dep_delay + carrier_penalty
    dep_delay = np.clip(dep_delay, -25.0, 720.0)

    arr_delay = 0.87 * dep_delay + rng.normal(0.0, 8.0, size=num_rows)
    arr_delay = np.clip(arr_delay, -40.0, 760.0)

    taxi = rng.normal(24.0, 6.0, size=num_rows)
    elapsed = air_time + np.clip(taxi, 8.0, None) + np.clip(
        arr_delay - dep_delay, -20.0, None
    )
    elapsed = np.clip(elapsed, 25.0, None)
    arr_time = np.mod(dep_time + elapsed, 1440.0)

    # --- calendar ----------------------------------------------------------
    month = rng.choice(
        np.arange(1, 13),
        size=num_rows,
        p=_seasonality_weights(),
    )
    day_of_week = rng.choice(
        np.arange(1, 8),
        size=num_rows,
        p=np.array([0.155, 0.15, 0.15, 0.155, 0.16, 0.11, 0.12]),
    )

    columns: Dict[str, np.ndarray] = {
        "MONTH": month.astype(np.int64),
        "DAY_OF_WEEK": day_of_week.astype(np.int64),
        "DEP_TIME": np.rint(dep_time).astype(np.int64),
        # Round before wrapping: rint alone could produce exactly 1440.
        "ARR_TIME": np.mod(np.rint(arr_time), 1440.0).astype(np.int64),
        "DEP_DELAY": np.rint(dep_delay).astype(np.int64),
        "ARR_DELAY": np.rint(arr_delay).astype(np.int64),
        "AIR_TIME": np.rint(air_time).astype(np.int64),
        "DISTANCE": np.rint(distance).astype(np.int64),
        "ELAPSED_TIME": np.rint(elapsed).astype(np.int64),
        "UNIQUE_CARRIER": carriers[carrier_idx],
        "ORIGIN": airports[origin_idx],
        "ORIGIN_STATE": airport_state[origin_idx],
        "DEST": airports[dest_idx],
        "DEST_STATE": airport_state[dest_idx],
    }
    return Table("flights", {name: columns[name] for name in FLIGHTS_COLUMNS})


def _seasonality_weights() -> np.ndarray:
    """Monthly traffic weights: summer and December peaks."""
    weights = np.array(
        [0.072, 0.068, 0.082, 0.080, 0.084, 0.092, 0.098, 0.096, 0.078, 0.082, 0.078, 0.090]
    )
    return weights / weights.sum()


def flights_column_kinds() -> Dict[str, str]:
    """Logical kind of each seed column (quantitative vs nominal)."""
    nominal = {"UNIQUE_CARRIER", "ORIGIN", "ORIGIN_STATE", "DEST", "DEST_STATE"}
    return {
        name: ("nominal" if name in nominal else "quantitative")
        for name in FLIGHTS_COLUMNS
    }


def hub_airports(top: int = 5) -> Tuple[str, ...]:
    """The ``top`` most frequent airports by construction (Zipf rank)."""
    return tuple(_airport_codes(NUM_AIRPORTS)[:top])
