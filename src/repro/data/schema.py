"""Column kinds and per-column profiles.

The workload generator (§4.3) needs light-weight metadata about the dataset
to sample plausible visualizations: which columns are *quantitative* (can be
binned by width, filtered by range) versus *nominal* (binned by category,
filtered by set inclusion), plus value ranges and category inventories.

:func:`profile_table` derives this metadata from a :class:`~repro.data.storage.Table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import QueryError
from repro.data.storage import Dataset, Table


class ColumnKind(Enum):
    """How a column participates in binning and filtering (§2.2)."""

    QUANTITATIVE = "quantitative"
    NOMINAL = "nominal"


@dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics of one column, as needed by workload generation.

    For quantitative columns ``minimum``/``maximum``/``std`` are populated
    along with 101 ``quantiles`` (percentiles 0–100), which the workload
    generator uses to construct range filters of a chosen selectivity; for
    nominal columns ``categories`` holds the distinct values sorted by
    descending frequency (most common first, matching how the original
    IDEBench presents category filters).
    """

    name: str
    kind: ColumnKind
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    std: Optional[float] = None
    categories: Tuple[str, ...] = ()
    quantiles: Tuple[float, ...] = ()

    def quantile(self, fraction: float) -> float:
        """Approximate quantile at ``fraction`` in [0, 1] (quantitative)."""
        if self.kind is not ColumnKind.QUANTITATIVE or not self.quantiles:
            raise QueryError(f"column {self.name!r} has no quantiles")
        index = int(round(min(max(fraction, 0.0), 1.0) * (len(self.quantiles) - 1)))
        return self.quantiles[index]

    @property
    def cardinality(self) -> int:
        """Number of distinct categories (nominal columns only)."""
        return len(self.categories)

    @property
    def span(self) -> float:
        """Value range width (quantitative columns only)."""
        if self.kind is not ColumnKind.QUANTITATIVE:
            raise QueryError(f"column {self.name!r} is not quantitative")
        return float(self.maximum - self.minimum)


def profile_column(name: str, values: np.ndarray) -> ColumnProfile:
    """Profile a single column array."""
    if values.dtype.kind in ("i", "f"):
        return ColumnProfile(
            name=name,
            kind=ColumnKind.QUANTITATIVE,
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
            std=float(np.std(values)),
            quantiles=tuple(
                float(q) for q in np.percentile(values, np.arange(101))
            ),
        )
    categories, counts = np.unique(values, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    return ColumnProfile(
        name=name,
        kind=ColumnKind.NOMINAL,
        categories=tuple(str(c) for c in categories[order]),
    )


def profile_table(table: Table) -> Dict[str, ColumnProfile]:
    """Profile every column of ``table`` (column name → profile)."""
    return {
        name: profile_column(name, table[name]) for name in table.column_names
    }


def profile_dataset(
    dataset: Dataset, columns: Optional[Sequence[str]] = None
) -> Dict[str, ColumnProfile]:
    """Profile the logical columns of a dataset (joining through FKs).

    ``columns`` restricts profiling to a subset; by default all logical
    columns are profiled. Integer FK columns never appear (they are not
    part of the logical schema, see :meth:`Dataset.logical_columns`).
    """
    names = list(columns) if columns is not None else dataset.logical_columns()
    return {name: profile_column(name, dataset.gather_column(name)) for name in names}
