"""Star-schema normalization: vertical partitioning of a flat table.

The paper (§4.2, §5.3) evaluates systems on both a de-normalized single
table and a normalized star schema — for the flights data, a fact table
holding foreign keys into *airports* and *carriers* dimension tables.

:func:`normalize` performs that vertical partitioning from a declarative
:class:`DimensionSpec` list; :func:`denormalize` is its inverse (FK
dereference), used both by tests (round-trip property) and by engines that
only support de-normalized data.

Role-playing dimensions are supported: the flights *airports* dimension is
referenced twice (origin and destination), so both roles share one
dimension table whose rows are the union of the airports seen in either
role.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import DataGenerationError
from repro.data.storage import Dataset, ForeignKey, Table


@dataclass(frozen=True)
class DimensionSpec:
    """Describes one role of one dimension table.

    Attributes
    ----------
    table:
        Name of the dimension table to create (specs sharing a table name
        are roles of the same dimension).
    fact_column:
        Name of the integer FK column to add to the fact table.
    attribute_map:
        ``(denormalized_column, dimension_column)`` pairs. The first pair
        is the natural key of the role (e.g. ``("ORIGIN", "code")``);
        remaining pairs are functionally dependent attributes that move to
        the dimension (e.g. ``("ORIGIN_STATE", "state")``).
    """

    table: str
    fact_column: str
    attribute_map: Tuple[Tuple[str, str], ...]

    @property
    def denorm_columns(self) -> List[str]:
        """De-normalized column names consumed by this role."""
        return [denorm for denorm, _ in self.attribute_map]

    @property
    def dim_columns(self) -> List[str]:
        """Dimension-table column names produced by this role."""
        return [dim for _, dim in self.attribute_map]

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "fact_column": self.fact_column,
            "attributes": [list(pair) for pair in self.attribute_map],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DimensionSpec":
        return cls(
            table=data["table"],
            fact_column=data["fact_column"],
            attribute_map=tuple(
                (str(denorm), str(dim)) for denorm, dim in data["attributes"]
            ),
        )


#: Default star-schema specification for the flights dataset (§5.3): the
#: fact table keeps measures and references *airports* (twice — origin and
#: destination roles) and *carriers*.
FLIGHTS_STAR_SPEC = (
    DimensionSpec(
        table="airports",
        fact_column="ORIGIN_KEY",
        attribute_map=(("ORIGIN", "code"), ("ORIGIN_STATE", "state")),
    ),
    DimensionSpec(
        table="airports",
        fact_column="DEST_KEY",
        attribute_map=(("DEST", "code"), ("DEST_STATE", "state")),
    ),
    DimensionSpec(
        table="carriers",
        fact_column="CARRIER_KEY",
        attribute_map=(("UNIQUE_CARRIER", "code"),),
    ),
)


def normalize(
    table: Table, specs: Sequence[DimensionSpec] = FLIGHTS_STAR_SPEC
) -> Dataset:
    """Partition flat ``table`` into a star schema per ``specs``.

    Every spec's de-normalized columns are removed from the fact table and
    replaced by one integer FK column; dimension rows are the distinct
    attribute tuples observed (unioned across roles sharing a table).
    """
    _validate_specs(table, specs)

    # Group roles by target dimension table.
    by_table: Dict[str, List[DimensionSpec]] = {}
    for spec in specs:
        by_table.setdefault(spec.table, []).append(spec)

    dim_tables: Dict[str, Table] = {}
    fact_fk_columns: Dict[str, np.ndarray] = {}
    foreign_keys: List[ForeignKey] = []

    for dim_name, roles in by_table.items():
        dim_columns = roles[0].dim_columns
        for role in roles[1:]:
            if role.dim_columns != dim_columns:
                raise DataGenerationError(
                    f"roles of dimension {dim_name!r} disagree on columns: "
                    f"{dim_columns} vs {role.dim_columns}"
                )
        # Stack the attribute tuples of every role and deduplicate.
        stacked = [
            np.column_stack([table[denorm].astype(str) for denorm in role.denorm_columns])
            for role in roles
        ]
        all_rows = np.concatenate(stacked, axis=0)
        unique_rows, inverse = np.unique(all_rows, axis=0, return_inverse=True)
        # The surrogate key equals the row position — engines exploit this
        # invariant to dereference FKs by plain array indexing.
        key_column = f"{dim_name}_key"
        dim_data: Dict[str, np.ndarray] = {
            key_column: np.arange(len(unique_rows), dtype=np.int64)
        }
        dim_data.update(
            {dim_col: unique_rows[:, j] for j, dim_col in enumerate(dim_columns)}
        )
        dim_tables[dim_name] = Table(dim_name, dim_data)
        offset = 0
        for role in roles:
            keys = inverse[offset : offset + table.num_rows].astype(np.int64)
            offset += table.num_rows
            fact_fk_columns[role.fact_column] = keys
            foreign_keys.append(
                ForeignKey(
                    fact_column=role.fact_column,
                    dim_table=dim_name,
                    dim_key=key_column,
                    attribute_map=role.attribute_map,
                )
            )

    moved = {denorm for spec in specs for denorm in spec.denorm_columns}
    fact = table.without_columns(sorted(moved)).with_columns(fact_fk_columns)
    fact = fact.renamed(f"{table.name}_fact")
    tables = {fact.name: fact}
    tables.update(dim_tables)
    return Dataset(tables, fact.name, foreign_keys)


def denormalize(dataset: Dataset) -> Table:
    """Materialize the star schema back into one flat table.

    Columns come out in fact order with each FK column replaced (in place)
    by the de-normalized attributes it encodes; this makes
    ``denormalize(normalize(t))`` column-content-equal to ``t`` up to
    column ordering, which the tests assert.
    """
    if not dataset.is_normalized:
        return dataset.fact
    fact = dataset.fact
    fk_by_column = {fk.fact_column: fk for fk in dataset.foreign_keys}
    columns: Dict[str, np.ndarray] = {}
    for name in fact.column_names:
        if name in fk_by_column:
            fk = fk_by_column[name]
            keys = fact[name]
            dim = dataset.tables[fk.dim_table]
            for denorm, dim_col in fk.attribute_map:
                columns[denorm] = dim[dim_col][keys]
        else:
            columns[name] = fact[name]
    base_name = fact.name[: -len("_fact")] if fact.name.endswith("_fact") else fact.name
    return Table(base_name, columns)


def save_star_spec(
    specs: Sequence[DimensionSpec], path: Union[str, Path]
) -> None:
    """Write a star-schema specification as JSON (§4.2's "user-given
    schema specification")."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([spec.to_dict() for spec in specs], handle, indent=2)
        handle.write("\n")


def load_star_spec(path: Union[str, Path]) -> Tuple[DimensionSpec, ...]:
    """Load a star-schema specification written by :func:`save_star_spec`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise DataGenerationError(
            f"star spec file {path!s} must contain a JSON list"
        )
    return tuple(DimensionSpec.from_dict(item) for item in data)


def _validate_specs(table: Table, specs: Sequence[DimensionSpec]) -> None:
    if not specs:
        raise DataGenerationError("normalization requires at least one DimensionSpec")
    seen_fact_columns = set()
    seen_denorm = set()
    for spec in specs:
        if not spec.attribute_map:
            raise DataGenerationError(
                f"dimension {spec.table!r} must map at least one attribute"
            )
        if spec.fact_column in table:
            raise DataGenerationError(
                f"FK column {spec.fact_column!r} already exists in {table.name!r}"
            )
        if spec.fact_column in seen_fact_columns:
            raise DataGenerationError(
                f"duplicate FK column {spec.fact_column!r} across specs"
            )
        seen_fact_columns.add(spec.fact_column)
        for denorm in spec.denorm_columns:
            if denorm not in table:
                raise DataGenerationError(
                    f"column {denorm!r} not present in table {table.name!r}"
                )
            if denorm in seen_denorm:
                raise DataGenerationError(
                    f"column {denorm!r} claimed by more than one dimension role"
                )
            seen_denorm.add(denorm)
