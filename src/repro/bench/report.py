"""Report generation (§4.8): detailed per-query and aggregated summary.

Upon completing a run IDEBench produces:

1. a **detailed report** — one row per query with every setting and metric
   (the paper's Table 1); here a CSV with the same columns;
2. a **summary report** — per workflow type (and overall): how often the
   TR was violated, mean missing bins, and the distribution of mean
   relative errors for queries that did *not* violate the TR, presented
   as a CDF truncated at 100 % error together with the area **above** the
   curve (Fig. 5 — the smaller the area, the better the engine).
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.bench.driver import QueryRecord
from repro.common.fingerprint import fmt_cell as _fmt

#: Column order of the detailed CSV — mirrors Table 1 of the paper.
DETAILED_COLUMNS = (
    "id",
    "interaction",
    "viz_name",
    "driver",
    "data_size",
    "think_time",
    "time_req",
    "workflow",
    "workflow_type",
    "start_time",
    "end_time",
    "tr_violated",
    "bin_dims",
    "binning_type",
    "agg_type",
    "bins_ofm",
    "bins_delivered",
    "bins_in_gt",
    "rel_error_avg",
    "rel_error_stdev",
    "smape",
    "missing_bins",
    "cosine_distance",
    "margin_avg",
    "margin_stdev",
    "bias",
    "rows_processed",
    "fraction",
    "num_concurrent",
    "qualifying_fraction",
)


def _record_row(record: QueryRecord) -> List[object]:
    metrics = record.metrics
    return [
        record.query_id,
        record.interaction_id,
        record.viz_name,
        record.driver,
        record.data_size,
        record.think_time,
        record.time_requirement,
        record.workflow,
        record.workflow_type,
        round(record.start_time, 6),
        round(record.end_time, 6),
        metrics.tr_violated,
        record.bin_dims,
        record.binning_type,
        record.agg_type,
        metrics.bins_out_of_margin,
        metrics.bins_delivered,
        metrics.bins_in_gt,
        _fmt(metrics.rel_error_avg),
        _fmt(metrics.rel_error_stdev),
        _fmt(metrics.smape),
        _fmt(metrics.missing_bins),
        _fmt(metrics.cosine_distance),
        _fmt(metrics.margin_avg),
        _fmt(metrics.margin_stdev),
        _fmt(metrics.bias),
        record.rows_processed,
        _fmt(record.fraction),
        record.num_concurrent,
        _fmt(record.qualifying_fraction),
    ]


class DetailedReport:
    """The per-query report (Table 1)."""

    def __init__(self, records: Sequence[QueryRecord]):
        self.records = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def to_csv(self, path: Union[str, Path, io.TextIOBase]) -> None:
        """Write the report as CSV with the Table-1 column set."""
        if isinstance(path, (str, Path)):
            with open(path, "w", encoding="utf-8", newline="") as handle:
                self._write(handle)
        else:
            self._write(path)

    def _write(self, handle) -> None:
        writer = csv.writer(handle)
        writer.writerow(DETAILED_COLUMNS)
        for record in self.records:
            writer.writerow(_record_row(record))

    def rows(self) -> List[Dict[str, object]]:
        """Records as dictionaries keyed by the CSV column names."""
        return [
            dict(zip(DETAILED_COLUMNS, _record_row(record)))
            for record in self.records
        ]


# ----------------------------------------------------------------------
# Summary (Fig. 5)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SummaryRow:
    """Aggregated metrics of one group (workflow type, engine, or TR)."""

    group: str
    num_queries: int
    pct_tr_violated: float
    mean_missing_bins: float
    mre_median: float
    mre_area_above_cdf: float
    margin_median: float
    cosine_mean: float
    cosine_median: float
    mean_bias: float
    out_of_margin_rate: float


def _finite(values: Iterable[float]) -> np.ndarray:
    array = np.array([v for v in values if v is not None], dtype=np.float64)
    return array[np.isfinite(array)]


def summarize_records(
    records: Sequence[QueryRecord],
    group_key=lambda record: record.workflow_type,
) -> List[SummaryRow]:
    """Aggregate records into summary rows, one per group plus ``all``.

    Violated queries contribute to the violation percentage and (with
    value 1.0) to mean missing bins; value metrics are folded over
    non-violating queries only, following Fig. 5's methodology.
    """
    groups: Dict[str, List[QueryRecord]] = {}
    for record in records:
        groups.setdefault(str(group_key(record)), []).append(record)
    rows = [
        _summarize_group(name, group) for name, group in sorted(groups.items())
    ]
    rows.append(_summarize_group("all", list(records)))
    return rows


def _summarize_group(name: str, records: List[QueryRecord]) -> SummaryRow:
    if not records:
        raise ValueError(f"group {name!r} has no records")
    violated = [r for r in records if r.metrics.tr_violated]
    answered = [r for r in records if not r.metrics.tr_violated]
    mres = _finite(r.metrics.rel_error_avg for r in answered)
    margins = _finite(r.metrics.margin_avg for r in answered)
    cosines = _finite(r.metrics.cosine_distance for r in answered)
    biases = _finite(r.metrics.bias for r in answered)
    missing = np.array([r.metrics.missing_bins for r in records])
    bins_delivered = sum(r.metrics.bins_delivered for r in answered)
    ofm = sum(r.metrics.bins_out_of_margin for r in answered)
    nan = float("nan")
    return SummaryRow(
        group=name,
        num_queries=len(records),
        pct_tr_violated=100.0 * len(violated) / len(records),
        mean_missing_bins=float(missing.mean()),
        mre_median=float(np.median(mres)) if len(mres) else nan,
        mre_area_above_cdf=float(np.minimum(mres, 1.0).mean()) if len(mres) else nan,
        margin_median=float(np.median(margins)) if len(margins) else nan,
        cosine_mean=float(cosines.mean()) if len(cosines) else nan,
        cosine_median=float(np.median(cosines)) if len(cosines) else nan,
        mean_bias=float(biases.mean()) if len(biases) else nan,
        out_of_margin_rate=(ofm / bins_delivered) if bins_delivered else nan,
    )


def mre_cdf(
    records: Sequence[QueryRecord], points: int = 21, truncate: float = 1.0
) -> List[Tuple[float, float]]:
    """CDF of mean relative errors over non-violating queries (Fig. 5).

    Returns ``points`` samples of (error level x, fraction of queries with
    MRE ≤ x) for x ∈ [0, truncate]. The area *above* this truncated curve
    equals ``mean(min(MRE, truncate))`` — the percentage printed above
    each CDF in the paper's Fig. 5.
    """
    answered = _finite(
        r.metrics.rel_error_avg for r in records if not r.metrics.tr_violated
    )
    xs = np.linspace(0.0, truncate, points)
    if len(answered) == 0:
        return [(float(x), float("nan")) for x in xs]
    return [(float(x), float((answered <= x).mean())) for x in xs]


class SummaryReport:
    """Renderable summary over a set of detailed records."""

    def __init__(
        self,
        records: Sequence[QueryRecord],
        group_key=lambda record: record.workflow_type,
    ):
        self.records = list(records)
        self.rows = summarize_records(self.records, group_key)

    def render(self, title: str = "IDEBench summary report") -> str:
        """Plain-text table in the spirit of Fig. 5."""
        header = (
            f"{'group':<16} {'queries':>7} {'%TR viol':>9} {'missing':>8} "
            f"{'MRE med':>8} {'MRE area':>9} {'margin med':>10} "
            f"{'cos dist':>9} {'bias':>7}"
        )
        lines = [title, "=" * len(header), header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.group:<16} {row.num_queries:>7} "
                f"{row.pct_tr_violated:>8.1f}% {row.mean_missing_bins:>8.3f} "
                f"{_cell(row.mre_median):>8} {_cell(row.mre_area_above_cdf):>9} "
                f"{_cell(row.margin_median):>10} {_cell(row.cosine_mean):>9} "
                f"{_cell(row.mean_bias):>7}"
            )
        return "\n".join(lines)


def _cell(value: float) -> str:
    if value is None or math.isnan(value):
        return "—"
    return f"{value:.3f}"
