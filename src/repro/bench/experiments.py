"""Experiment harness: one entry point per table/figure of the paper (§5).

Each ``exp_*`` function reproduces one evaluation artifact:

==============  ============================================================
``exp_overall``        Fig. 5 + Fig. 6a/6b/6c — four engines × five TRs on
                       the mixed workload (500M, de-normalized)
``exp_workflow_types`` Fig. 6d — missing bins by system × workflow type
``exp_schema``         Fig. 6e — normalized vs de-normalized, 100M & 500M,
                       MonetDB vs XDB
``exp_think_time``     Fig. 6f — missing bins vs think time under IDEA's
                       speculative extension
``exp_detailed_table`` Table 1 — detailed report of one mixed workflow on
                       IDEA
``exp_prep_times``     §5.2 — data preparation time per system
``exp_effects``        §5.5 (Exp. 4) — metric sensitivity to bin count,
                       dimensionality, binning type, concurrency,
                       selectivity
``exp_system_y``       §5.6 (Exp. 5) — frontend layer over MonetDB
==============  ============================================================

:class:`ExperimentContext` caches datasets, oracles, profiles and workflow
suites so parameter sweeps do not regenerate shared state; with an
:class:`~repro.runtime.store.ArtifactStore` those artifacts additionally
persist on disk and are shared across worker processes and runs. All
functions are deterministic given the context's seed.

Every ``exp_*`` function *plans* its cells through
:mod:`repro.runtime.planner` and executes them via the context's
:class:`~repro.runtime.executor.MatrixExecutor` — serial and in-process by
default (``jobs=1``), sharded across worker processes when the context is
built with ``jobs=N``. Cell results are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.driver import BenchmarkDriver, QueryRecord
from repro.bench.report import DetailedReport, summarize_records
from repro.common.clock import VirtualClock
from repro.common.config import (
    BenchmarkSettings,
    DataSize,
    DEFAULT_TIME_REQUIREMENTS,
)
from repro.common.errors import BenchmarkError
from repro.data.generator import CopulaScaler
from repro.data.normalize import FLIGHTS_STAR_SPEC, normalize
from repro.data.schema import ColumnProfile, profile_table
from repro.data.seed import generate_flights_seed
from repro.data.storage import Dataset, Table
from repro.engines import (
    ColumnStoreEngine,
    FrontendEngine,
    OnlineAggEngine,
    ProgressiveEngine,
    StratifiedSamplingEngine,
)
from repro.query.groundtruth import GroundTruthOracle
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.runtime.executor import CellResult, MatrixExecutor
from repro.runtime.planner import (
    plan_detailed_table,
    plan_overall,
    plan_prep_times,
    plan_schema,
    plan_system_y,
    plan_think_time,
    plan_workflow_types,
)
from repro.runtime.spec import RunSpec
from repro.runtime.store import ArtifactStore
from repro.workflow.generator import WorkflowGenerator, WorkloadConfig
from repro.workflow.spec import (
    CreateViz,
    Link,
    SelectBins,
    VizSpec,
    Workflow,
    WorkflowType,
)

#: Engines of the paper's main experiment, in presentation order.
MAIN_ENGINES = ("monetdb-sim", "xdb-sim", "idea-sim", "system-x-sim")

#: Seed-table size used to fit the copula scaler.
SEED_ROWS = 60_000


@lru_cache(maxsize=8)
def _shared_seed_table(seed: int, rows: int) -> Table:
    """Process-wide memo of the synthetic seed table.

    The table is a pure function of ``(seed, rows)`` and is treated as
    immutable everywhere (engines copy or index, never write), so every
    :class:`ExperimentContext` in a process — including the many the CLI
    tests and run-matrix workers create — can share one instance instead
    of re-synthesizing it.
    """
    return generate_flights_seed(rows, seed=seed)


@lru_cache(maxsize=8)
def _shared_scaler(seed: int, rows: int) -> CopulaScaler:
    """Process-wide memo of the fitted copula scaler (pure in its key).

    Only these two *fixed-cost* artifacts are memoized process-wide;
    scaled tables stay cached per context (and per artifact store), so a
    long-lived process sweeping large sizes does not pin multi-GB tables
    for its lifetime.
    """
    return CopulaScaler.fit(_shared_seed_table(seed, rows), seed_value=seed)


def make_engine(
    name: str,
    dataset: Dataset,
    settings: BenchmarkSettings,
    clock: VirtualClock,
    speculation: bool = False,
):
    """Instantiate an engine simulator by its registry name."""
    if name == "monetdb-sim":
        return ColumnStoreEngine(dataset, settings, clock)
    if name == "xdb-sim":
        return OnlineAggEngine(dataset, settings, clock)
    if name == "idea-sim":
        return ProgressiveEngine(dataset, settings, clock, speculation=speculation)
    if name == "system-x-sim":
        return StratifiedSamplingEngine(dataset, settings, clock)
    if name == "system-y-sim":
        return FrontendEngine(ColumnStoreEngine(dataset, settings, clock))
    raise BenchmarkError(f"unknown engine {name!r}")


class ExperimentContext:
    """Caches data, oracles and workload suites across experiment calls.

    With ``store`` the expensive artifacts (scaled tables, normalized
    datasets, workflow suites, exact ground-truth answers) additionally
    persist on disk, keyed by their build inputs — so worker processes and
    later runs rebuild nothing. ``jobs`` selects how many worker processes
    the context's :class:`MatrixExecutor` shards planned cells across.
    """

    def __init__(
        self,
        settings: Optional[BenchmarkSettings] = None,
        store: Optional[ArtifactStore] = None,
        jobs: int = 1,
        reuse_results: bool = True,
    ):
        self.settings = settings if settings is not None else BenchmarkSettings()
        self.store = store
        self.runtime = MatrixExecutor(
            jobs=jobs, store=store, reuse_results=reuse_results, local_context=self
        )
        self._seed_table: Optional[Table] = None
        self._scaler: Optional[CopulaScaler] = None
        self._tables: Dict[DataSize, Table] = {}
        self._datasets: Dict[Tuple[DataSize, bool], Dataset] = {}
        self._oracles: Dict[Tuple[DataSize, bool], GroundTruthOracle] = {}
        self._profiles: Dict[DataSize, Dict[str, ColumnProfile]] = {}
        self._suites: Dict[Tuple[DataSize, WorkflowType, int], List[Workflow]] = {}

    # -- artifact keys ---------------------------------------------------
    def _table_key(self, size: DataSize) -> tuple:
        rows = self.settings.with_(data_size=size).actual_rows
        return (
            "scaled-table",
            self.settings.dataset,
            self.settings.seed,
            SEED_ROWS,
            size.name,
            rows,
        )

    def _artifact(self, key: tuple, build):
        if self.store is None:
            return build()
        return self.store.get_or_create(key, build)

    # -- data ----------------------------------------------------------
    @property
    def seed_table(self) -> Table:
        if self._seed_table is None:
            self._seed_table = _shared_seed_table(self.settings.seed, SEED_ROWS)
        return self._seed_table

    @property
    def scaler(self) -> CopulaScaler:
        if self._scaler is None:
            self._scaler = _shared_scaler(self.settings.seed, SEED_ROWS)
        return self._scaler

    def table(self, size: DataSize) -> Table:
        """The scaled flat table for ``size`` (copula-generated, cached)."""
        if size not in self._tables:
            rows = self.settings.with_(data_size=size).actual_rows
            self._tables[size] = self._artifact(
                self._table_key(size),
                lambda: self.scaler.generate(rows, stream=size.name),
            )
        return self._tables[size]

    def dataset(self, size: DataSize, normalized: bool = False) -> Dataset:
        key = (size, normalized)
        if key not in self._datasets:
            if normalized:
                self._datasets[key] = self._artifact(
                    ("normalized-dataset",) + self._table_key(size),
                    lambda: normalize(self.table(size), FLIGHTS_STAR_SPEC),
                )
            else:
                self._datasets[key] = Dataset.from_table(self.table(size))
        return self._datasets[key]

    def oracle(self, size: DataSize, normalized: bool = False) -> GroundTruthOracle:
        key = (size, normalized)
        if key not in self._oracles:
            dataset_key = None
            if self.store is not None:
                dataset_key = self.store.digest_for(
                    ("oracle-dataset", normalized) + self._table_key(size)
                )
            self._oracles[key] = GroundTruthOracle(
                self.dataset(size, normalized),
                store=self.store,
                dataset_key=dataset_key,
            )
        return self._oracles[key]

    def profiles(self, size: DataSize) -> Dict[str, ColumnProfile]:
        if size not in self._profiles:
            self._profiles[size] = profile_table(self.table(size))
        return self._profiles[size]

    # -- workloads -------------------------------------------------------
    def workflows(
        self,
        workflow_type: WorkflowType,
        count: int,
        size: Optional[DataSize] = None,
        config: Optional[WorkloadConfig] = None,
    ) -> List[Workflow]:
        size = size if size is not None else self.settings.data_size

        def build() -> List[Workflow]:
            generator = WorkflowGenerator(
                self.profiles(size),
                table="flights",
                config=config,
                seed=self.settings.seed,
            )
            return generator.generate_suite(workflow_type, count)

        if config is not None:
            return build()
        key = (size, workflow_type, count)
        if key not in self._suites:
            self._suites[key] = self._artifact(
                ("workflow-suite", workflow_type.value, count)
                + self._table_key(size),
                build,
            )
        return self._suites[key]

    # -- running -----------------------------------------------------------
    def run(
        self,
        engine_name: str,
        workflows: Sequence[Workflow],
        settings: Optional[BenchmarkSettings] = None,
        normalized: bool = False,
        speculation: bool = False,
    ) -> List[QueryRecord]:
        """Run ``workflows`` on a fresh engine; returns detailed records."""
        settings = settings if settings is not None else self.settings
        dataset = self.dataset(settings.data_size, normalized)
        oracle = self.oracle(settings.data_size, normalized)
        clock = VirtualClock()
        engine = make_engine(engine_name, dataset, settings, clock, speculation)
        engine.prepare()
        driver = BenchmarkDriver(engine, oracle, settings)
        return driver.run_suite(workflows)

    def execute(self, specs: Sequence[RunSpec]) -> List[CellResult]:
        """Execute planned run-matrix cells through the context's runtime."""
        return self.runtime.run(specs)


# ----------------------------------------------------------------------
# Exp. 1: overall results (Fig. 5, 6a, 6b, 6c)
# ----------------------------------------------------------------------

@dataclass
class OverallResults:
    """Per (engine, TR): summary row over the mixed workload."""

    settings: BenchmarkSettings
    summaries: Dict[Tuple[str, float], "object"] = field(default_factory=dict)
    records: Dict[Tuple[str, float], List[QueryRecord]] = field(default_factory=dict)

    def series(self, metric: str) -> Dict[str, List[Tuple[float, float]]]:
        """Per-engine [(TR, value)] series for plotting/printing."""
        result: Dict[str, List[Tuple[float, float]]] = {}
        for (engine, tr), row in sorted(self.summaries.items()):
            result.setdefault(engine, []).append((tr, getattr(row, metric)))
        return result


def exp_overall(
    ctx: ExperimentContext,
    engines: Sequence[str] = MAIN_ENGINES,
    time_requirements: Sequence[float] = DEFAULT_TIME_REQUIREMENTS,
    workflows_per_type: Optional[int] = None,
    size: Optional[DataSize] = None,
) -> OverallResults:
    """Fig. 5 / 6a–6c: mixed workload, five TRs, four engines, 500M."""
    size = size if size is not None else ctx.settings.data_size
    count = (
        workflows_per_type
        if workflows_per_type is not None
        else ctx.settings.workflows_per_type
    )
    specs = plan_overall(ctx.settings, engines, time_requirements, count, size)
    results = OverallResults(settings=ctx.settings)
    for spec, cell in zip(specs, ctx.execute(specs)):
        tr = spec.settings.time_requirement
        rows = summarize_records(cell.records, group_key=lambda r: "all")
        results.summaries[(spec.engine, tr)] = rows[-1]
        results.records[(spec.engine, tr)] = cell.records
    return results


# ----------------------------------------------------------------------
# Fig. 6d: missing bins by system and workflow type
# ----------------------------------------------------------------------

def exp_workflow_types(
    ctx: ExperimentContext,
    engines: Sequence[str] = MAIN_ENGINES,
    time_requirement: float = 3.0,
    workflows_per_type: Optional[int] = None,
    size: Optional[DataSize] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 6d: engine → workflow type → mean missing bins."""
    size = size if size is not None else ctx.settings.data_size
    count = (
        workflows_per_type
        if workflows_per_type is not None
        else ctx.settings.workflows_per_type
    )
    workflow_types = (
        WorkflowType.INDEPENDENT.value,
        WorkflowType.SEQUENTIAL.value,
        WorkflowType.ONE_TO_N.value,
        WorkflowType.N_TO_ONE.value,
    )
    specs = plan_workflow_types(
        ctx.settings, engines, workflow_types, count, size, time_requirement
    )
    outcome: Dict[str, Dict[str, float]] = {}
    for spec, cell in zip(specs, ctx.execute(specs)):
        outcome.setdefault(spec.engine, {})[spec.workflows.workflow_type] = float(
            np.mean([r.metrics.missing_bins for r in cell.records])
        )
    return outcome


# ----------------------------------------------------------------------
# Fig. 6e: normalized vs de-normalized
# ----------------------------------------------------------------------

def exp_schema(
    ctx: ExperimentContext,
    engines: Sequence[str] = ("monetdb-sim", "xdb-sim"),
    sizes: Sequence[DataSize] = (DataSize.S, DataSize.M),
    time_requirement: float = 3.0,
    workflows_per_type: Optional[int] = None,
) -> Dict[Tuple[str, str, str], float]:
    """Fig. 6e: (engine, size, schema) → % TR violations.

    IDEA is excluded (no join support) and System X only works
    de-normalized, exactly as in §5.3.
    """
    count = (
        workflows_per_type
        if workflows_per_type is not None
        else ctx.settings.workflows_per_type
    )
    specs = plan_schema(ctx.settings, engines, sizes, count, time_requirement)
    outcome: Dict[Tuple[str, str, str], float] = {}
    for spec, cell in zip(specs, ctx.execute(specs)):
        violated = float(
            np.mean([r.metrics.tr_violated for r in cell.records]) * 100.0
        )
        schema = "normalized" if spec.normalized else "denormalized"
        outcome[(spec.engine, spec.settings.data_size.name, schema)] = violated
    return outcome


# ----------------------------------------------------------------------
# Fig. 6f: think-time sweep with speculation
# ----------------------------------------------------------------------

def speculation_workflow(
    profiles: Dict[str, ColumnProfile], carrier: Optional[str] = None
) -> Workflow:
    """The custom 4-interaction workflow of §5.4.

    1. 2-D count histogram (100 bins) of arrival vs departure delays;
    2. 1-D count histogram (25 bins) of carriers;
    3. link 1-D histogram (source) → 2-D histogram (target);
    4. select a single carrier in the 1-D histogram, forcing the 2-D
       histogram to update.
    """
    dep = profiles["DEP_DELAY"]
    arr = profiles["ARR_DELAY"]
    viz_2d = VizSpec(
        name="delays_2d",
        source="flights",
        bins=(
            BinDimension(
                "ARR_DELAY", BinKind.QUANTITATIVE, bin_count=10
            ).resolved(arr.minimum, arr.maximum),
            BinDimension(
                "DEP_DELAY", BinKind.QUANTITATIVE, bin_count=10
            ).resolved(dep.minimum, dep.maximum),
        ),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )
    viz_1d = VizSpec(
        name="carriers_1d",
        source="flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )
    chosen = carrier if carrier is not None else profiles["UNIQUE_CARRIER"].categories[2]
    return Workflow(
        name="speculation_probe",
        workflow_type=WorkflowType.CUSTOM,
        interactions=(
            CreateViz(viz_2d),
            CreateViz(viz_1d),
            Link("carriers_1d", "delays_2d"),
            SelectBins("carriers_1d", ((chosen,),)),
        ),
    )


def exp_think_time(
    ctx: ExperimentContext,
    think_times: Sequence[float] = tuple(float(t) for t in range(1, 11)),
    time_requirement: float = 3.0,
    size: Optional[DataSize] = None,
    speculation: bool = True,
) -> List[Tuple[float, float]]:
    """Fig. 6f: [(think time, missing bins of the selection query)]."""
    size = size if size is not None else ctx.settings.data_size
    specs = plan_think_time(
        ctx.settings, think_times, time_requirement, size, speculation
    )
    outcome: List[Tuple[float, float]] = []
    for spec, cell in zip(specs, ctx.execute(specs)):
        # The probe is the query triggered by the final selection.
        final = [r for r in cell.records if r.interaction_id == 3]
        if len(final) != 1:
            raise BenchmarkError(
                f"expected exactly one selection query, got {len(final)}"
            )
        outcome.append((spec.settings.think_time, final[0].metrics.missing_bins))
    return outcome


# ----------------------------------------------------------------------
# Table 1: detailed report
# ----------------------------------------------------------------------

def exp_detailed_table(
    ctx: ExperimentContext,
    engine: str = "idea-sim",
    time_requirement: float = 0.5,
    think_time: float = 3.0,
    size: Optional[DataSize] = None,
) -> DetailedReport:
    """Table 1: one mixed workflow on IDEA, TR=500 ms, think 3 s."""
    size = size if size is not None else ctx.settings.data_size
    specs = plan_detailed_table(
        ctx.settings, engine, time_requirement, think_time, size
    )
    (cell,) = ctx.execute(specs)
    return DetailedReport(cell.records)


# ----------------------------------------------------------------------
# §5.2: data preparation times
# ----------------------------------------------------------------------

def exp_prep_times(
    ctx: ExperimentContext,
    engines: Sequence[str] = MAIN_ENGINES,
    size: Optional[DataSize] = None,
) -> Dict[str, "object"]:
    """§5.2: engine → PreparationReport (modeled minutes at ``size``)."""
    size = size if size is not None else ctx.settings.data_size
    specs = plan_prep_times(ctx.settings, engines, size)
    return {
        spec.engine: cell.prep
        for spec, cell in zip(specs, ctx.execute(specs))
    }


# ----------------------------------------------------------------------
# Exp. 4 (§5.5): factor analysis over detailed records
# ----------------------------------------------------------------------

def exp_effects(records: Sequence[QueryRecord]) -> Dict[str, Dict[str, Dict[str, float]]]:
    """§5.5: group mean metrics by candidate performance factors.

    Returns factor → level → {violated%, missing, mre}. The paper found no
    significant effect of bin dimensionality, binning type or concurrency,
    but a dominant effect of predicate selectivity — the same conclusion
    these groupings support (see EXPERIMENTS.md).
    """
    def bucket_selectivity(fraction: float) -> str:
        if fraction >= 0.5:
            return "broad (>=50%)"
        if fraction >= 0.05:
            return "medium (5-50%)"
        return "narrow (<5%)"

    def bucket_concurrency(n: int) -> str:
        return "1" if n == 1 else ("2-3" if n <= 3 else ">=4")

    factors: Dict[str, Callable[[QueryRecord], str]] = {
        "bin_dims": lambda r: str(r.bin_dims),
        "binning_type": lambda r: r.binning_type,
        "agg_type": lambda r: r.agg_type,
        "concurrency": lambda r: bucket_concurrency(r.num_concurrent),
        "selectivity": lambda r: bucket_selectivity(r.qualifying_fraction),
    }
    outcome: Dict[str, Dict[str, Dict[str, float]]] = {}
    for factor, key_fn in factors.items():
        groups: Dict[str, List[QueryRecord]] = {}
        for record in records:
            groups.setdefault(key_fn(record), []).append(record)
        levels: Dict[str, Dict[str, float]] = {}
        for level, group in sorted(groups.items()):
            answered = [r for r in group if not r.metrics.tr_violated]
            mres = np.array(
                [
                    r.metrics.rel_error_avg
                    for r in answered
                    if np.isfinite(r.metrics.rel_error_avg)
                ]
            )
            levels[level] = {
                "queries": float(len(group)),
                "pct_violated": 100.0 * float(np.mean([r.tr_violated for r in group])),
                "mean_missing": float(np.mean([r.metrics.missing_bins for r in group])),
                "mre_median": float(np.median(mres)) if len(mres) else float("nan"),
            }
        outcome[factor] = levels
    return outcome


# ----------------------------------------------------------------------
# Exp. 5 (§5.6): System Y
# ----------------------------------------------------------------------

def exp_system_y(
    ctx: ExperimentContext,
    time_requirement: float = 10.0,
    num_variants: int = 3,
    size: Optional[DataSize] = None,
) -> Dict[str, Dict[str, float]]:
    """§5.6: System Y (frontend over MonetDB) vs MonetDB directly.

    Runs ``num_variants`` 1:N workflows on both engines. The headline
    comparison is the mean end-to-end latency of *answered* queries: the
    paper observed System Y to track MonetDB "with an added delay of about
    1-2s per query" and found no prefetching layer. A long TR is used so
    most queries complete and the latency difference is observable.
    """
    size = size if size is not None else ctx.settings.data_size
    specs = plan_system_y(ctx.settings, num_variants, time_requirement, size)
    per_engine_records: Dict[str, List[QueryRecord]] = {}
    outcome: Dict[str, Dict[str, float]] = {}
    for spec, cell in zip(specs, ctx.execute(specs)):
        engine_name = spec.engine
        records = cell.records
        per_engine_records[engine_name] = records
        answered = [r for r in records if not r.tr_violated]
        latencies = [r.end_time - r.start_time for r in answered]
        outcome[engine_name] = {
            "pct_violated": 100.0 * float(np.mean([r.tr_violated for r in records])),
            "mean_latency_answered": float(np.mean(latencies)) if latencies else float("nan"),
            "num_queries": float(len(records)),
            "num_answered": float(len(answered)),
        }
    # Paired rendering-overhead estimate: compare the same query (by id)
    # across the two runs, over queries both engines answered. This avoids
    # the survivor bias of comparing unpaired means (the frontend's slowest
    # queries drop out of its own answered set).
    monet_by_id = {
        r.query_id: r
        for r in per_engine_records["monetdb-sim"]
        if not r.tr_violated
    }
    deltas = [
        (y.end_time - y.start_time) - (
            monet_by_id[y.query_id].end_time - monet_by_id[y.query_id].start_time
        )
        for y in per_engine_records["system-y-sim"]
        if not y.tr_violated and y.query_id in monet_by_id
    ]
    outcome["system-y-sim"]["paired_overhead"] = (
        float(np.mean(deltas)) if deltas else float("nan")
    )
    return outcome
