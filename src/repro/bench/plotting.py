"""Terminal plotting for benchmark reports (§5's Fig. 5 and Fig. 6a–c).

Fig. 5 of the paper presents the distribution of mean relative errors as a
CDF truncated at 100 % error, with the area *above* the curve printed as a
single quality number; Fig. 6a–c are per-engine line series over the time
requirement. This module renders both as ASCII so the CLI and the
benchmark artifacts can show the same visuals without a plotting stack:

* :func:`ascii_cdf` — a CDF curve in a fixed-size character grid;
* :func:`ascii_series` — one or more (x, y) series with shared axes;
* :func:`ascii_bars` — labeled horizontal bars (used for Fig.-6d-style
  per-group comparisons).

All functions return plain strings; nothing is printed implicitly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import BenchmarkError

#: Characters used for multi-series plots, in assignment order.
SERIES_MARKS = "*o+x#@"


def _check_dimensions(width: int, height: int) -> None:
    if width < 10 or height < 3:
        raise BenchmarkError(
            f"plot area must be at least 10×3 characters, got {width}×{height}"
        )


def ascii_cdf(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render CDF ``points`` — [(x, F(x))] with F in [0, 1] — as ASCII.

    NaN fractions (no data) render as an empty plot with a note, matching
    how Fig. 5 leaves the MonetDB CDF blank at TRs where nothing finished.
    """
    _check_dimensions(width, height)
    finite = [(x, y) for x, y in points if not math.isnan(y)]
    lines: List[str] = []
    if title:
        lines.append(title)
    if not finite:
        lines.append("(no answered queries — CDF undefined)")
        return "\n".join(lines)

    xs = [x for x, _ in finite]
    x_low, x_high = min(xs), max(xs)
    span = (x_high - x_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in finite:
        column = int(round((x - x_low) / span * (width - 1)))
        row = int(round((1.0 - min(max(y, 0.0), 1.0)) * (height - 1)))
        grid[row][column] = "*"
    # CDFs are step functions — carry each level rightward through
    # columns that received no point of their own.
    last_row = None
    for column in range(width):
        rows = [r for r in range(height) if grid[r][column] == "*"]
        if rows:
            last_row = rows[-1]
        elif last_row is not None:
            grid[last_row][column] = "·"

    for index, row_chars in enumerate(grid):
        level = 1.0 - index / (height - 1)
        axis = f"{level:4.0%} |" if index % max(1, (height - 1) // 4) == 0 else "     |"
        lines.append(axis + "".join(row_chars))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_low:<10.3g}{'':^{max(0, width - 20)}}{x_high:>10.3g}")
    return "\n".join(lines)


def ascii_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render several named (x, y) series in one shared-axis ASCII plot.

    Used for the Fig.-6a/6b/6c artifacts: x = time requirement, y = the
    metric, one mark per engine (legend appended).
    """
    _check_dimensions(width, height)
    if not series:
        raise BenchmarkError("ascii_series needs at least one series")
    if len(series) > len(SERIES_MARKS):
        raise BenchmarkError(
            f"at most {len(SERIES_MARKS)} series supported, got {len(series)}"
        )
    all_points = [
        (x, y)
        for points in series.values()
        for x, y in points
        if not math.isnan(y)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    if not all_points:
        lines.append("(no finite data)")
        return "\n".join(lines)
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for mark, (name, points) in zip(SERIES_MARKS, sorted(series.items())):
        legend.append(f"{mark} = {name}")
        for x, y in points:
            if math.isnan(y):
                continue
            column = int(round((x - x_low) / x_span * (width - 1)))
            row = int(round((1.0 - (y - y_low) / y_span) * (height - 1)))
            grid[row][column] = mark

    for index, row_chars in enumerate(grid):
        value = y_high - index / (height - 1) * y_span
        axis = (
            f"{value:8.3g} |"
            if index % max(1, (height - 1) // 4) == 0
            else "         |"
        )
        lines.append(axis + "".join(row_chars))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_low:<10.3g}{'':^{max(0, width - 20)}}{x_high:>10.3g}")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def ascii_bars(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Render labeled horizontal bars (values must be non-negative)."""
    if not values:
        raise BenchmarkError("ascii_bars needs at least one value")
    for label, value in values.items():
        if math.isnan(value) or value < 0:
            raise BenchmarkError(
                f"bar value for {label!r} must be a non-negative number"
            )
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        bar = "█" * int(round(value / peak * width))
        lines.append(f"{label:<{label_width}} |{bar:<{width}} " + fmt.format(value))
    return "\n".join(lines)
