"""Benchmark core: driver, metrics, reports, adapters, experiment harness.

This subpackage is the paper's "benchmark driver" component (§4.4) plus
reporting (§4.8):

* :mod:`repro.bench.metrics` — the §4.7 metric suite (TR violated,
  missing bins, mean relative error, SMAPE, cosine distance, mean margin
  of error, out-of-margin, bias);
* :mod:`repro.bench.driver` — the discrete-event workflow runner: think
  times, TR deadlines with cancellation, concurrent queries per
  interaction, speculation hints on linking;
* :mod:`repro.bench.report` — the detailed per-query report (Table 1) and
  the aggregated summary report (Fig. 5), including the MRE CDF and its
  area-above-curve statistic;
* :mod:`repro.bench.adapters` — the paper's Listing-1 system-adapter
  facade;
* :mod:`repro.bench.experiments` — one harness function per experiment of
  §5, shared by the pytest benchmarks and the CLI.
"""

from repro.bench.adapters import SystemAdapter
from repro.bench.driver import BenchmarkDriver, QueryRecord, SessionDriver
from repro.bench.metrics import QueryMetrics, compute_metrics
from repro.bench.report import (
    DetailedReport,
    SummaryReport,
    mre_cdf,
    summarize_records,
)

__all__ = [
    "BenchmarkDriver",
    "DetailedReport",
    "QueryMetrics",
    "QueryRecord",
    "SessionDriver",
    "SummaryReport",
    "SystemAdapter",
    "compute_metrics",
    "mre_cdf",
    "summarize_records",
]
