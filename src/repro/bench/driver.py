"""The benchmark driver: discrete-event execution of workflows (§4.4).

The driver "runs/simulates workflows, delegates interactions to system
drivers, and generates reports". Concretely, for every workflow:

1. interactions fire ``think_time`` seconds apart (§4.6) — under the
   stress configuration (think 1 s, TR up to 10 s) queries from earlier
   interactions are still running when the next interaction fires, and the
   simulation handles the overlap faithfully;
2. each interaction updates the viz graph and submits one query per
   affected visualization — *simultaneously*, so they share engine
   capacity (§2.2's multiple concurrent queries);
3. every query gets a deadline ``submit + TR``; at the deadline the driver
   fetches whatever answer is visible, cancels the query ("queries whose
   run-time exceed TR are cancelled", §4.7), computes all metrics against
   the cached exact ground truth, and appends a row to the detailed
   report;
4. on ``link`` interactions the driver hands the engine the speculative
   queries every single-bin selection on the source would trigger
   (the Exp.-3 extension; engines without speculation ignore the hint).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.clock import VirtualClock
from repro.common.config import BenchmarkSettings
from repro.common.errors import BenchmarkError
from repro.bench.metrics import QueryMetrics, compute_metrics
from repro.query.filters import conjoin
from repro.query.groundtruth import GroundTruthOracle
from repro.query.model import AggQuery
from repro.workflow.graph import VizGraph, VizNode
from repro.workflow.spec import DiscardViz, Link, Workflow

#: Cap on speculative queries enumerated per link (the Exp.-3 source viz
#: has 25 bins; a small headroom covers other workflows).
MAX_SPECULATIVE_PER_LINK = 40


@dataclass
class QueryRecord:
    """One row of the detailed report — the columns of Table 1."""

    query_id: int
    interaction_id: int
    viz_name: str
    driver: str
    data_size: str
    think_time: float
    time_requirement: float
    workflow: str
    workflow_type: str
    start_time: float
    end_time: float
    metrics: QueryMetrics
    bin_dims: int
    binning_type: str
    agg_type: str
    rows_processed: int
    fraction: float
    num_concurrent: int
    qualifying_fraction: float

    @property
    def tr_violated(self) -> bool:
        return self.metrics.tr_violated


@dataclass(order=True)
class _Deadline:
    time: float
    sequence: int
    handle: int = field(compare=False)
    viz_name: str = field(compare=False)
    interaction_id: int = field(compare=False)
    query: AggQuery = field(compare=False)
    submitted_at: float = field(compare=False)
    num_concurrent: int = field(compare=False)


class BenchmarkDriver:
    """Runs workflows against one engine and collects detailed records."""

    def __init__(
        self,
        engine,
        oracle: GroundTruthOracle,
        settings: BenchmarkSettings,
    ):
        if engine.settings.scale != settings.scale:
            raise BenchmarkError("engine and driver settings disagree on scale")
        self.engine = engine
        self.oracle = oracle
        self.settings = settings
        self.clock = engine.clock
        self._query_counter = 0

    # ------------------------------------------------------------------
    def run_workflow(self, workflow: Workflow) -> List[QueryRecord]:
        """Execute one workflow; returns one record per submitted query."""
        records: List[QueryRecord] = []
        graph = VizGraph()
        deadlines: List[_Deadline] = []
        sequence = 0

        self.engine.workflow_start()
        start = self.clock.now()
        think = self.settings.think_time
        tr = self.settings.time_requirement

        for interaction_id, interaction in enumerate(workflow.interactions):
            fire_at = start + interaction_id * think
            self._drain_deadlines(deadlines, records, workflow, until=fire_at)
            self._advance(fire_at)

            if isinstance(interaction, DiscardViz):
                # Tell the engine before the node disappears (Listing 1's
                # delete_vizs: "free memory, if applicable").
                if interaction.viz_name in graph:
                    self.engine.delete_vizs([graph.query_for(interaction.viz_name)])
            applied = graph.apply(interaction)
            if isinstance(interaction, Link):
                self._hint_speculation(graph, interaction)

            submitted: List[Tuple[int, str, AggQuery]] = []
            for viz_name in applied.affected:
                query = graph.query_for(viz_name)
                handle = self.engine.submit(query)
                submitted.append((handle, viz_name, query))
            for handle, viz_name, query in submitted:
                heapq.heappush(
                    deadlines,
                    _Deadline(
                        time=fire_at + tr,
                        sequence=sequence,
                        handle=handle,
                        viz_name=viz_name,
                        interaction_id=interaction_id,
                        query=query,
                        submitted_at=fire_at,
                        num_concurrent=len(submitted),
                    ),
                )
                sequence += 1

        self._drain_deadlines(deadlines, records, workflow, until=None)
        self.engine.workflow_end()
        return records

    def run_suite(self, workflows: Sequence[Workflow]) -> List[QueryRecord]:
        """Run several workflows back to back (records concatenated)."""
        records: List[QueryRecord] = []
        for workflow in workflows:
            records.extend(self.run_workflow(workflow))
        return records

    # ------------------------------------------------------------------
    def _advance(self, time: float) -> None:
        now = self.clock.now()
        if time > now:
            if isinstance(self.clock, VirtualClock):
                self.clock.advance_to(time)
            else:
                self.clock.advance(time - now)
        self.engine.advance_to(self.clock.now())

    def _drain_deadlines(
        self,
        deadlines: List[_Deadline],
        records: List[QueryRecord],
        workflow: Workflow,
        until: Optional[float],
    ) -> None:
        """Evaluate every deadline due before ``until`` (None = all)."""
        while deadlines and (until is None or deadlines[0].time <= until + 1e-12):
            deadline = heapq.heappop(deadlines)
            self._advance(deadline.time)
            records.append(self._evaluate(deadline, workflow))

    def _evaluate(self, deadline: _Deadline, workflow: Workflow) -> QueryRecord:
        result = self.engine.result_at(deadline.handle, deadline.time)
        end_time = self.engine.completion_time(deadline.handle, deadline.time)
        self.engine.cancel(deadline.handle)
        ground_truth = self.oracle.answer(deadline.query)
        metrics = compute_metrics(result, ground_truth)
        record = QueryRecord(
            query_id=self._query_counter,
            interaction_id=deadline.interaction_id,
            viz_name=deadline.viz_name,
            driver=self.engine.name,
            data_size=self.settings.data_size.name,
            think_time=self.settings.think_time,
            time_requirement=self.settings.time_requirement,
            workflow=workflow.name,
            workflow_type=workflow.workflow_type.value,
            start_time=deadline.submitted_at,
            end_time=end_time,
            metrics=metrics,
            bin_dims=deadline.query.num_bin_dims,
            binning_type=" ".join(deadline.query.binning_types),
            agg_type=deadline.query.agg_type,
            rows_processed=result.rows_processed if result else 0,
            fraction=result.fraction if result else 0.0,
            num_concurrent=deadline.num_concurrent,
            qualifying_fraction=self.engine.qualifying_fraction(deadline.query),
        )
        self._query_counter += 1
        return record

    def _hint_speculation(self, graph: VizGraph, link: Link) -> None:
        """Enumerate the single-bin-selection queries a link enables (§5.4).

        IDEA's experimental extension "executes queries for every possible
        single bin selection in the source visualization". The candidate
        bins come from the exact answer of the source's current query —
        the same bins the source visualization is displaying.
        """
        source_query = graph.query_for(link.source)
        source_result = self.oracle.answer(source_query)
        source_node: VizNode = graph.node(link.source)
        target_node: VizNode = graph.node(link.target)
        upstream = graph.effective_filter(link.source)
        speculative: List[AggQuery] = []
        for key in source_result.values:
            probe = VizNode(spec=source_node.spec, selection=(key,))
            selection_filter = probe.selection_filter()
            effective = conjoin(
                [target_node.own_filter, selection_filter, upstream]
            )
            speculative.append(target_node.spec.base_query(effective))
            if len(speculative) >= MAX_SPECULATIVE_PER_LINK:
                break
        self.engine.link_vizs(speculative)
