"""The benchmark driver: discrete-event execution of workflows (§4.4).

The driver "runs/simulates workflows, delegates interactions to system
drivers, and generates reports". Concretely, for every workflow:

1. interactions fire ``think_time`` seconds apart (§4.6) — under the
   stress configuration (think 1 s, TR up to 10 s) queries from earlier
   interactions are still running when the next interaction fires, and the
   simulation handles the overlap faithfully;
2. each interaction updates the viz graph and submits one query per
   affected visualization — *simultaneously*, so they share engine
   capacity (§2.2's multiple concurrent queries);
3. every query gets a deadline ``submit + TR``; at the deadline the driver
   fetches whatever answer is visible, cancels the query ("queries whose
   run-time exceed TR are cancelled", §4.7), computes all metrics against
   the cached exact ground truth, and appends a row to the detailed
   report;
4. on ``link`` interactions the driver hands the engine the speculative
   queries every single-bin selection on the source would trigger
   (the Exp.-3 extension; engines without speculation ignore the hint).

The event loop itself lives in :class:`SessionDriver` — a *steppable*
discrete-event machine representing one simulated IDE session (one user,
one engine, one suite of workflows). ``next_event_time()`` peeks at the
session's next due event and ``step()`` processes exactly one event, so a
session can be

* run to completion in-process (:meth:`SessionDriver.run` — what
  :class:`BenchmarkDriver` does, byte-identical to the historical serial
  loop), or
* multiplexed with other sessions by an external pacer such as the
  asyncio session server (:mod:`repro.server`), which steps many sessions
  in global virtual-time order — optionally paced to wall time.

Because engines account for time exclusively through their clock and
scheduler (never through wall time), *when* ``step()`` is called has no
effect on the records a session produces; only the session's own event
times do. That is the determinism guarantee the session server builds on
(see docs/server.md).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.clock import VirtualClock
from repro.common.config import BenchmarkSettings
from repro.common.errors import BenchmarkError
from repro.bench.metrics import QueryMetrics, compute_metrics
from repro.obs.metrics import DEFAULT_VT_BUCKETS, get_metrics
from repro.obs.tracer import get_tracer
from repro.query.filters import conjoin
from repro.query.groundtruth import GroundTruthOracle
from repro.workflow.policy import (
    PENDING,
    InteractionPolicy,
    PolicyView,
    WorkflowPlan,
)
from repro.query.model import AggQuery
from repro.workflow.graph import VizGraph, VizNode
from repro.workflow.spec import DiscardViz, Interaction, Link, Workflow, WorkflowType

#: Cap on speculative queries enumerated per link (the Exp.-3 source viz
#: has 25 bins; a small headroom covers other workflows).
MAX_SPECULATIVE_PER_LINK = 40

#: Slop for "deadline due at interaction time" comparisons (float dust).
_TIE_EPSILON = 1e-12


@dataclass
class QueryRecord:
    """One row of the detailed report — the columns of Table 1."""

    query_id: int
    interaction_id: int
    viz_name: str
    driver: str
    data_size: str
    think_time: float
    time_requirement: float
    workflow: str
    workflow_type: str
    start_time: float
    end_time: float
    metrics: QueryMetrics
    bin_dims: int
    binning_type: str
    agg_type: str
    rows_processed: int
    fraction: float
    num_concurrent: int
    qualifying_fraction: float

    @property
    def tr_violated(self) -> bool:
        return self.metrics.tr_violated


@dataclass(order=True)
class _Deadline:
    time: float
    sequence: int
    handle: int = field(compare=False)
    viz_name: str = field(compare=False)
    interaction_id: int = field(compare=False)
    query: AggQuery = field(compare=False)
    submitted_at: float = field(compare=False)
    num_concurrent: int = field(compare=False)


class SessionDriver:
    """One simulated IDE session as a steppable discrete-event machine.

    A session executes ``workflows`` back to back against ``engine``:
    interactions fire on the think-time grid, each submitted query gets a
    ``TR`` deadline, and deadlines due at (or before, within float dust
    of) an interaction's fire time are evaluated *before* the interaction
    fires — exactly the ordering of the historical serial loop.

    The two-method event interface makes the session externally pacable:

    ``next_event_time()``
        absolute virtual time of the next due event (``None`` when the
        session has finished). Pure — never advances the clock or touches
        the engine.
    ``step()``
        process exactly one event: either evaluate one due deadline
        (returns the produced :class:`QueryRecord` in a list) or fire one
        interaction (returns ``[]``). Advances the session's clock to the
        event time.

    Parameters
    ----------
    engine, oracle, settings:
        As for :class:`BenchmarkDriver`. The engine must be prepared.
    workflows:
        The session's workflow suite, run sequentially.
    session_id:
        Identifier used by the session server for seeding, grouping and
        reporting; purely informational here.
    first_query_id:
        Value of the first record's ``query_id`` (the counter then
        increments per query, across workflow boundaries).
    lifecycle:
        When True (default) the driver brackets every workflow with
        ``engine.workflow_start()`` / ``engine.workflow_end()`` (Listing
        1's lifecycle hooks). The session server's shared-engine mode
        passes False: a long-lived engine serving many sessions must not
        let one session's workflow boundary clear another session's
        caches.
    on_record:
        Optional callback invoked with every produced record as soon as
        its deadline is evaluated — the per-session metric stream hook.
    policy:
        Optional :class:`~repro.workflow.policy.InteractionPolicy`. When
        given, ``workflows`` must be empty and the session's workflows
        are chosen *online*: the policy's ``begin_workflow`` /
        ``next_interaction`` answers replace the pre-generated
        interaction lists, and every produced record is fed to
        ``policy.observe`` — the adaptive-user hook (docs/server.md).
        Interactions still fire on the think-time grid; the policy picks
        *what* happens, never *when*.
    """

    def __init__(
        self,
        engine,
        oracle: GroundTruthOracle,
        settings: BenchmarkSettings,
        workflows: Sequence[Workflow],
        session_id: str = "session-0",
        first_query_id: int = 0,
        lifecycle: bool = True,
        on_record: Optional[Callable[[QueryRecord], None]] = None,
        policy: Optional[InteractionPolicy] = None,
    ):
        if engine.settings.scale != settings.scale:
            raise BenchmarkError("engine and driver settings disagree on scale")
        if policy is not None and workflows:
            raise BenchmarkError(
                "pass either pre-generated workflows or a policy, not both"
            )
        self.engine = engine
        self.oracle = oracle
        self.settings = settings
        self.clock = engine.clock
        self.session_id = session_id
        self.lifecycle = lifecycle
        self.on_record = on_record
        self.records: List[QueryRecord] = []
        self.interaction_counts: dict = {}
        #: Events processed so far (deadline evaluations + interaction
        #: fires) — a progress diagnostic for external pacers; always
        #: equals ``len(records)`` + interactions fired.
        self.steps = 0
        self._workflows = list(workflows)
        self._query_counter = first_query_id
        self._wf_index = 0
        self._interaction_index = 0
        self._wf_start: Optional[float] = None
        self._graph = VizGraph()
        self._deadlines: List[_Deadline] = []
        self._sequence = 0
        self._hinted: List[AggQuery] = []
        self._policy = policy
        self._plan: Optional[WorkflowPlan] = None
        self._pending: Optional[Interaction] = None
        self._stalled = False
        if policy is not None:
            self._plan = policy.begin_workflow(0)
            self._finished = self._plan is None
            if not self._finished:
                self._prefetch()
        else:
            self._finished = not self._workflows

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once every workflow has run and every deadline is drained."""
        return self._finished

    @property
    def next_query_id(self) -> int:
        """The ``query_id`` the next evaluated deadline would receive."""
        return self._query_counter

    @property
    def workflow_index(self) -> int:
        """Index of the workflow the session is currently executing."""
        return self._wf_index

    @property
    def in_flight(self) -> int:
        """Queries submitted but not yet evaluated (outstanding deadlines)."""
        return len(self._deadlines)

    @property
    def needs_input(self) -> bool:
        """True when the session can only proceed with external input.

        Only ever True in policy mode with an external interaction
        source (:class:`~repro.workflow.policy.ExternalInteractionSource`)
        that answered :data:`~repro.workflow.policy.PENDING`: the next
        grid slot needs an interaction the frontend has not sent yet and
        no deadline is due before it. Callers (the TCP server) must not
        :meth:`step` while this holds; they feed the source and call
        :meth:`resume`.
        """
        if self._finished or not self._stalled:
            return False
        if self._wf_start is None:
            return True
        fire_at = self._fire_time()
        return not (
            self._deadlines and self._deadlines[0].time <= fire_at + _TIE_EPSILON
        )

    def resume(self) -> None:
        """Re-ask a stalled session's policy for the pending interaction.

        No-op unless stalled. May raise (via ``_prefetch``) if the
        source ends an empty workflow — a client that detaches without
        ever interacting.
        """
        if self._stalled and not self._finished:
            self._prefetch()
            # The source may have ended the workflow while queries are
            # still in flight (client detached mid-tail) — or with
            # nothing in flight at all, in which case the session is
            # over right now and no further step() will ever run.
            self._maybe_finish_workflow()

    def next_event_time(self) -> Optional[float]:
        """Absolute time of the next due event; None when finished.

        Pure: repeated calls without an intervening :meth:`step` return
        the same value and have no side effects.
        """
        if self._finished:
            return None
        if self._wf_start is None:
            # The next workflow starts (and its first interaction fires)
            # at the current time — workflow transitions take zero time.
            return self.clock.now()
        if self._interactions_pending():
            fire_at = self._fire_time()
            if self._deadlines and self._deadlines[0].time <= fire_at + _TIE_EPSILON:
                return self._deadlines[0].time
            return fire_at
        # All interactions fired; only the deadline tail remains.
        return self._deadlines[0].time

    def step(self) -> List[QueryRecord]:
        """Process exactly one due event; returns any records produced."""
        if self._finished:
            return []
        if self._wf_start is None:
            if self.lifecycle:
                self.engine.workflow_start()
            self._wf_start = self.clock.now()
        produced: List[QueryRecord] = []
        pending = self._interactions_pending()
        fire_at = self._fire_time() if pending else None
        tracer = get_tracer()
        if self._deadlines and (
            fire_at is None or self._deadlines[0].time <= fire_at + _TIE_EPSILON
        ):
            deadline = heapq.heappop(self._deadlines)
            self._advance(deadline.time)
            if tracer.enabled:
                span = tracer.span(
                    "driver.deadline",
                    deadline.time,
                    session=self.session_id,
                    viz=deadline.viz_name,
                )
                with span:
                    record = self._evaluate(deadline)
                    span.set("query_id", record.query_id)
                    span.set("tr_violated", record.tr_violated)
                self._observe_record(record)
            else:
                record = self._evaluate(deadline)
            self.records.append(record)
            produced.append(record)
            if self._policy is not None:
                self._policy.observe(record)
            if self.on_record is not None:
                self.on_record(record)
        else:
            if self._stalled:
                raise BenchmarkError(
                    "session is stalled waiting for an external "
                    "interaction; check needs_input before step()"
                )
            self._advance(fire_at)
            interaction = self._next_interaction()
            if tracer.enabled:
                tracer.event(
                    "driver.interaction",
                    fire_at,
                    session=self.session_id,
                    kind=interaction.kind,
                )
                get_metrics().counter(
                    "repro_interactions_total",
                    labels={"kind": interaction.kind},
                    help="Interactions fired, by kind.",
                ).inc()
            self._fire_interaction(interaction, fire_at)
            self._interaction_index += 1
            if self._policy is not None:
                self._prefetch()
        self.steps += 1
        if tracer.enabled:
            get_metrics().counter(
                "repro_driver_steps_total",
                help="SessionDriver events processed (deadlines + interactions).",
            ).inc()
        self._maybe_finish_workflow()
        return produced

    def run(self) -> List[QueryRecord]:
        """Step the session to completion; returns all records."""
        while not self._finished:
            self.step()
        return self.records

    def abandon(self) -> None:
        """Retire the session *now* (open-system churn departure).

        Cancels every outstanding query the session still has in flight,
        frees its speculation hints, closes the workflow lifecycle if
        this driver owns it, and marks the session finished. Pending
        events are dropped — the departed user never sees them, so no
        further records are produced.
        """
        if self._finished:
            return
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "driver.abandon",
                self.clock.now(),
                session=self.session_id,
                in_flight=len(self._deadlines),
            )
            get_metrics().counter(
                "repro_sessions_abandoned_total",
                help="Sessions retired mid-run (churn departures, disconnects).",
            ).inc()
        for deadline in self._deadlines:
            self.engine.cancel(deadline.handle)
        self._deadlines = []
        if self._hinted:
            self.engine.delete_vizs(self._hinted)
            self._hinted = []
        if self.lifecycle and self._wf_start is not None:
            self.engine.workflow_end()
        self._finished = True

    def _observe_record(self, record: QueryRecord) -> None:
        """Record-level metrics (only called while tracing is enabled)."""
        registry = get_metrics()
        registry.counter(
            "repro_records_total",
            help="Query deadlines evaluated into detailed-report rows.",
        ).inc()
        if record.tr_violated:
            registry.counter(
                "repro_tr_violations_total",
                help="Records whose time requirement was violated (§4.7).",
            ).inc()
        registry.histogram(
            "repro_query_latency_vt_seconds",
            help="Virtual-time query latency (end_time - start_time).",
            bounds=DEFAULT_VT_BUCKETS,
        ).observe(record.end_time - record.start_time)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _interactions_pending(self) -> bool:
        if self._policy is not None:
            # A stalled session *does* have a pending interaction — the
            # frontend just has not told us what it is yet — so the
            # workflow must not be treated as finished.
            return self._pending is not None or self._stalled
        workflow = self._workflows[self._wf_index]
        return self._interaction_index < len(workflow.interactions)

    def _next_interaction(self) -> Interaction:
        if self._policy is not None:
            return self._pending
        return self._workflows[self._wf_index].interactions[self._interaction_index]

    def _prefetch(self) -> None:
        """Ask the policy for the upcoming interaction (policy mode only).

        Called right after an interaction fires (and at workflow start),
        so the policy decides with exactly the records whose deadlines
        resolved before that moment — the dashboard state the simulated
        user is looking at. ``None`` ends the current workflow once its
        deadline tail drains.
        """
        last_latency = 0.0
        if self.records:
            last = self.records[-1]
            last_latency = last.end_time - last.start_time
        view = PolicyView(
            session_id=self.session_id,
            workflow_index=self._wf_index,
            interaction_index=self._interaction_index,
            graph=self._graph,
            records=self.records,
            queue_depth=len(self._deadlines),
            last_latency=last_latency,
        )
        answer = self._policy.next_interaction(view)
        if answer is PENDING:
            # External source: the frontend has not sent the next
            # interaction yet. Stall — deadlines keep draining, the
            # grid slot waits for resume().
            self._pending = None
            self._stalled = True
            return
        self._stalled = False
        self._pending = answer
        if self._pending is None and self._interaction_index == 0:
            raise BenchmarkError(
                f"policy {self._policy.name!r} produced an empty workflow"
            )

    def _workflow_name(self) -> str:
        if self._policy is not None:
            return self._plan.name
        return self._workflows[self._wf_index].name

    def _workflow_type(self) -> WorkflowType:
        if self._policy is not None:
            return self._plan.workflow_type
        return self._workflows[self._wf_index].workflow_type

    def _fire_time(self) -> float:
        return self._wf_start + self._interaction_index * self.settings.think_time

    def _fire_interaction(self, interaction: Interaction, fire_at: float) -> None:
        # ``fire_at`` is the exact think-time grid value. The clock can sit
        # float dust past it (a deadline within _TIE_EPSILON drains first),
        # and the grid value — not clock.now() — must stamp submissions and
        # deadlines, exactly like the historical serial loop.
        kind = interaction.kind
        self.interaction_counts[kind] = self.interaction_counts.get(kind, 0) + 1
        if isinstance(interaction, DiscardViz):
            # Tell the engine before the node disappears (Listing 1's
            # delete_vizs: "free memory, if applicable").
            if interaction.viz_name in self._graph:
                self.engine.delete_vizs(
                    [self._graph.query_for(interaction.viz_name)]
                )
        applied = self._graph.apply(interaction)
        if isinstance(interaction, Link):
            self._hint_speculation(self._graph, interaction)

        submitted: List[Tuple[int, str, AggQuery]] = []
        for viz_name in applied.affected:
            query = self._graph.query_for(viz_name)
            handle = self.engine.submit(query)
            submitted.append((handle, viz_name, query))
        for handle, viz_name, query in submitted:
            heapq.heappush(
                self._deadlines,
                _Deadline(
                    time=fire_at + self.settings.time_requirement,
                    sequence=self._sequence,
                    handle=handle,
                    viz_name=viz_name,
                    interaction_id=self._interaction_index,
                    query=query,
                    submitted_at=fire_at,
                    num_concurrent=len(submitted),
                ),
            )
            self._sequence += 1

    def _maybe_finish_workflow(self) -> None:
        if self._interactions_pending() or self._deadlines:
            return
        if self.lifecycle:
            self.engine.workflow_end()
        elif self._hinted:
            # Without the workflow_end hook (shared-engine serving) the
            # engine would never learn this workflow's speculation hints
            # are obsolete: stale speculative tasks would keep consuming
            # capacity and pin the engine's speculation cap for every
            # other session. Free exactly what this session hinted.
            self.engine.delete_vizs(self._hinted)
        self._hinted = []
        self._wf_index += 1
        self._interaction_index = 0
        self._wf_start = None
        self._graph = VizGraph()
        if self._policy is not None:
            self._plan = self._policy.begin_workflow(self._wf_index)
            if self._plan is None:
                self._finished = True
            else:
                self._prefetch()
        elif self._wf_index >= len(self._workflows):
            self._finished = True

    def _advance(self, time: float) -> None:
        now = self.clock.now()
        if time > now:
            if isinstance(self.clock, VirtualClock):
                self.clock.advance_to(time)
            else:
                self.clock.advance(time - now)
        self.engine.advance_to(self.clock.now())

    def _evaluate(self, deadline: _Deadline) -> QueryRecord:
        result = self.engine.result_at(deadline.handle, deadline.time)
        end_time = self.engine.completion_time(deadline.handle, deadline.time)
        self.engine.cancel(deadline.handle)
        ground_truth = self.oracle.answer(deadline.query)
        metrics = compute_metrics(result, ground_truth)
        record = QueryRecord(
            query_id=self._query_counter,
            interaction_id=deadline.interaction_id,
            viz_name=deadline.viz_name,
            driver=self.engine.name,
            data_size=self.settings.data_size.name,
            think_time=self.settings.think_time,
            time_requirement=self.settings.time_requirement,
            workflow=self._workflow_name(),
            workflow_type=self._workflow_type().value,
            start_time=deadline.submitted_at,
            end_time=end_time,
            metrics=metrics,
            bin_dims=deadline.query.num_bin_dims,
            binning_type=" ".join(deadline.query.binning_types),
            agg_type=deadline.query.agg_type,
            rows_processed=result.rows_processed if result else 0,
            fraction=result.fraction if result else 0.0,
            num_concurrent=deadline.num_concurrent,
            qualifying_fraction=self.engine.qualifying_fraction(deadline.query),
        )
        self._query_counter += 1
        return record

    def _hint_speculation(self, graph: VizGraph, link: Link) -> None:
        """Enumerate the single-bin-selection queries a link enables (§5.4).

        IDEA's experimental extension "executes queries for every possible
        single bin selection in the source visualization". The candidate
        bins come from the exact answer of the source's current query —
        the same bins the source visualization is displaying.
        """
        source_query = graph.query_for(link.source)
        source_result = self.oracle.answer(source_query)
        source_node: VizNode = graph.node(link.source)
        target_node: VizNode = graph.node(link.target)
        upstream = graph.effective_filter(link.source)
        speculative: List[AggQuery] = []
        for key in source_result.values:
            probe = VizNode(spec=source_node.spec, selection=(key,))
            selection_filter = probe.selection_filter()
            effective = conjoin(
                [target_node.own_filter, selection_filter, upstream]
            )
            speculative.append(target_node.spec.base_query(effective))
            if len(speculative) >= MAX_SPECULATIVE_PER_LINK:
                break
        self._hinted.extend(speculative)
        self.engine.link_vizs(speculative)


class BenchmarkDriver:
    """Runs workflows against one engine and collects detailed records.

    A thin serial façade over :class:`SessionDriver`: each
    :meth:`run_workflow` call steps a one-workflow session to completion,
    carrying the query-id counter across calls so a suite numbers its
    queries consecutively (Table 1's ``id`` column).
    """

    def __init__(
        self,
        engine,
        oracle: GroundTruthOracle,
        settings: BenchmarkSettings,
    ):
        if engine.settings.scale != settings.scale:
            raise BenchmarkError("engine and driver settings disagree on scale")
        self.engine = engine
        self.oracle = oracle
        self.settings = settings
        self.clock = engine.clock
        self._query_counter = 0

    # ------------------------------------------------------------------
    def run_workflow(self, workflow: Workflow) -> List[QueryRecord]:
        """Execute one workflow; returns one record per submitted query."""
        session = SessionDriver(
            self.engine,
            self.oracle,
            self.settings,
            [workflow],
            first_query_id=self._query_counter,
        )
        records = session.run()
        self._query_counter = session.next_query_id
        return records

    def run_suite(self, workflows: Sequence[Workflow]) -> List[QueryRecord]:
        """Run several workflows back to back (records concatenated)."""
        records: List[QueryRecord] = []
        for workflow in workflows:
            records.extend(self.run_workflow(workflow))
        return records
