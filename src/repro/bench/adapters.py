"""System adapters — the paper's Listing-1 integration facade (§4.5).

*"To be evaluated by our benchmark a system needs to implement a driver
interface that acts as proxy between the benchmark and the system under
test."* The engine simulators in this repository implement the richer
internal :class:`~repro.engines.base.Engine` interface directly; this
module provides the paper-faithful adapter facade on top of it, so that

* external systems can be plugged in by subclassing :class:`SystemAdapter`
  (implementing the exact five methods of Listing 1), and
* the examples can demonstrate the paper's published integration surface.

``process_request`` accepts a visualization specification plus its
effective filter — exactly what the original IDEBench hands its drivers as
JSON — translates it to a query (the adapter may instead translate to SQL
via :func:`repro.query.sql.query_to_sql`) and executes it against the
wrapped engine under the given time requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.errors import BenchmarkError
from repro.query.filters import Filter
from repro.query.model import AggQuery, QueryResult
from repro.workflow.spec import VizSpec


@dataclass
class AdapterResponse:
    """Outcome of one ``process_request`` call."""

    viz_name: str
    result: Optional[QueryResult]
    tr_violated: bool
    started_at: float
    finished_at: float


class SystemAdapter:
    """Paper-style adapter (Listing 1) over an engine simulator.

    The five methods mirror the published stub::

        class SampleAdapter:
            def process_request(self, viz_specification): ...
            def link_vizs(self, viz_from, viz_to): ...
            def delete_vizs(self, vizs): ...
            def workflow_start(self): ...
            def workflow_end(self): ...
    """

    def __init__(self, engine):
        self.engine = engine
        self._active_by_viz: dict = {}

    # ------------------------------------------------------------------
    def process_request(
        self,
        viz_specification: VizSpec,
        filter_expr: Optional[Filter] = None,
        time_requirement: Optional[float] = None,
    ) -> AdapterResponse:
        """Translate a viz spec into a query, execute, fetch, evaluate.

        Implements steps 1–4 of Listing 1: translate → execute → fetch →
        write back. Blocks (in simulated time) until either the result is
        complete or the time requirement expires, whichever comes first.
        """
        tr = (
            time_requirement
            if time_requirement is not None
            else self.engine.settings.time_requirement
        )
        if tr <= 0:
            raise BenchmarkError(f"time requirement must be positive, got {tr}")
        query = viz_specification.base_query(filter_expr)
        clock = self.engine.clock
        started = clock.now()
        handle = self.engine.submit(query)
        self._active_by_viz[viz_specification.name] = handle
        deadline = started + tr
        clock_advance = getattr(clock, "advance_to", None)
        if clock_advance is not None:
            clock_advance(deadline)
        else:
            clock.advance(deadline - started)
        self.engine.advance_to(deadline)
        result = self.engine.result_at(handle, deadline)
        finished = self.engine.completion_time(handle, deadline)
        self.engine.cancel(handle)
        return AdapterResponse(
            viz_name=viz_specification.name,
            result=result,
            tr_violated=result is None,
            started_at=started,
            finished_at=finished,
        )

    def link_vizs(
        self,
        viz_from: VizSpec,
        viz_to: VizSpec,
        speculative_queries: Sequence[AggQuery] = (),
    ) -> None:
        """Forward the link hint for speculative execution, if supported."""
        self.engine.link_vizs(list(speculative_queries))

    def delete_vizs(self, vizs: Sequence[VizSpec]) -> None:
        """Free per-viz resources (cancel any still-active queries)."""
        for viz in vizs:
            handle = self._active_by_viz.pop(viz.name, None)
            if handle is not None:
                self.engine.cancel(handle)

    def workflow_start(self) -> None:
        self.engine.workflow_start()

    def workflow_end(self) -> None:
        self.engine.workflow_end()
