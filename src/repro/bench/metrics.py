"""The IDEBench metric suite (§4.7).

For every executed query the benchmark evaluates, against the exact ground
truth:

=====================  ======================================================
Time Requirement       boolean — no result was available at the deadline
Violated
Missing Bins           |bins missing| / |bins in ground truth|
Mean Relative Error    mean over delivered bins of |Fᵢ−Aᵢ| / |Aᵢ|
SMAPE                  mean of |Fᵢ−Aᵢ| / (|Fᵢ|+|Aᵢ|) — defined at Aᵢ = 0
Cosine Distance        1 − cos(F, A) with missing bins zero-filled
Mean Margin of Error   mean and stdev of the *relative* margins of error
Out of Margin          number of per-bin results outside their margin
Bias                   Σ returned values / Σ true values of returned bins
=====================  ======================================================

Queries may carry several aggregates (e.g. COUNT + AVG); value-based
metrics are computed per aggregate and averaged (out-of-margin counts are
summed), while bin-based metrics (missing bins) are aggregate-independent.
A violated query has no result: missing bins is 1 and the value metrics
are NaN — the summary report only folds value metrics over non-violating
queries, exactly like Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import BenchmarkError
from repro.query.model import QueryResult


@dataclass(frozen=True)
class QueryMetrics:
    """All §4.7 metrics of one executed query."""

    tr_violated: bool
    bins_delivered: int
    bins_in_gt: int
    missing_bins: float
    rel_error_avg: float
    rel_error_stdev: float
    smape: float
    cosine_distance: float
    margin_avg: float
    margin_stdev: float
    bins_out_of_margin: int
    bias: float

    @classmethod
    def violated(cls, bins_in_gt: int) -> "QueryMetrics":
        """Metrics of a query that produced no result within its TR."""
        nan = float("nan")
        return cls(
            tr_violated=True,
            bins_delivered=0,
            bins_in_gt=bins_in_gt,
            missing_bins=1.0,
            rel_error_avg=nan,
            rel_error_stdev=nan,
            smape=nan,
            cosine_distance=nan,
            margin_avg=nan,
            margin_stdev=nan,
            bins_out_of_margin=0,
            bias=nan,
        )


def _per_aggregate_vectors(
    result: QueryResult, ground_truth: QueryResult, aggregate_index: int
) -> Tuple[np.ndarray, np.ndarray, List[Optional[float]]]:
    """Aligned (estimate, truth, margin) vectors over the GT bin set.

    Bins the engine did not deliver contribute estimate 0 (the §4.7 cosine
    definition: "we set the value at each missing bin to zero") and margin
    None.
    """
    keys = list(ground_truth.values.keys())
    estimates = np.zeros(len(keys))
    truths = np.zeros(len(keys))
    margins: List[Optional[float]] = [None] * len(keys)
    for i, key in enumerate(keys):
        truths[i] = ground_truth.values[key][aggregate_index]
        delivered = result.values.get(key)
        if delivered is not None:
            estimates[i] = delivered[aggregate_index]
            margin_row = result.margins.get(key)
            if margin_row is not None:
                margins[i] = margin_row[aggregate_index]
    return estimates, truths, margins


def _cosine_distance(estimates: np.ndarray, truths: np.ndarray) -> float:
    norm_f = float(np.linalg.norm(estimates))
    norm_a = float(np.linalg.norm(truths))
    if norm_f == 0.0 and norm_a == 0.0:
        return 0.0
    if norm_f == 0.0 or norm_a == 0.0:
        return 1.0
    cosine = float(np.dot(estimates, truths) / (norm_f * norm_a))
    return float(min(max(1.0 - cosine, 0.0), 2.0))


def compute_metrics(
    result: Optional[QueryResult], ground_truth: QueryResult
) -> QueryMetrics:
    """Evaluate one query's answer against its exact ground truth.

    ``result=None`` means nothing was available at the deadline — a TR
    violation.
    """
    if not ground_truth.exact:
        raise BenchmarkError("ground truth must be an exact result")
    bins_in_gt = ground_truth.num_bins
    if result is None:
        return QueryMetrics.violated(bins_in_gt)

    delivered_keys = set(result.values)
    gt_keys = set(ground_truth.values)
    delivered_in_gt = len(delivered_keys & gt_keys)
    missing = (
        (bins_in_gt - delivered_in_gt) / bins_in_gt if bins_in_gt else 0.0
    )

    num_aggs = len(ground_truth.query.aggregates)
    rel_means: List[float] = []
    rel_stds: List[float] = []
    smapes: List[float] = []
    cosines: List[float] = []
    margin_values: List[float] = []
    biases: List[float] = []
    out_of_margin = 0

    for j in range(num_aggs):
        estimates, truths, margins = _per_aggregate_vectors(
            result, ground_truth, j
        )
        cosines.append(_cosine_distance(estimates, truths))

        # Per-delivered-bin statistics (the §4.7 error definitions are over
        # "all bins returned in the result").
        delivered_mask = np.array(
            [key in delivered_keys for key in ground_truth.values], dtype=bool
        )
        est_d = estimates[delivered_mask]
        tru_d = truths[delivered_mask]
        if len(est_d):
            nonzero = tru_d != 0
            if nonzero.any():
                rel = np.abs(est_d[nonzero] - tru_d[nonzero]) / np.abs(tru_d[nonzero])
                rel_means.append(float(rel.mean()))
                rel_stds.append(float(rel.std()))
            denom = np.abs(est_d) + np.abs(tru_d)
            smape_terms = np.where(
                denom > 0, np.abs(est_d - tru_d) / np.where(denom > 0, denom, 1.0), 0.0
            )
            smapes.append(float(smape_terms.mean()))
            # Guard on the *signed* sum — the actual denominator. A
            # signed mix like (+5, -5) passes an abs-sum check yet
            # divides by zero (bias is undefined when truths cancel).
            truth_sum = float(tru_d.sum())
            if truth_sum != 0.0:
                biases.append(float(est_d.sum()) / truth_sum)
        # Relative margins and out-of-margin checks over delivered bins.
        for i, key in enumerate(ground_truth.values):
            if not delivered_mask[i]:
                continue
            margin = margins[i]
            if margin is None:
                continue
            estimate = estimates[i]
            if abs(estimate) > 1e-12:
                margin_values.append(abs(margin) / abs(estimate))
            elif margin == 0.0:
                margin_values.append(0.0)
            if abs(estimate - truths[i]) > margin + 1e-12:
                out_of_margin += 1

    nan = float("nan")
    return QueryMetrics(
        tr_violated=False,
        bins_delivered=result.num_bins,
        bins_in_gt=bins_in_gt,
        missing_bins=float(missing),
        rel_error_avg=float(np.mean(rel_means)) if rel_means else nan,
        rel_error_stdev=float(np.mean(rel_stds)) if rel_stds else nan,
        smape=float(np.mean(smapes)) if smapes else nan,
        cosine_distance=float(np.mean(cosines)) if cosines else nan,
        margin_avg=float(np.mean(margin_values)) if margin_values else nan,
        margin_stdev=float(np.std(margin_values)) if margin_values else nan,
        bins_out_of_margin=int(out_of_margin),
        bias=float(np.mean(biases)) if biases else nan,
    )
