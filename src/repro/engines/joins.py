"""Star-schema join helpers shared by the engine simulators.

All joins in IDEBench's star schemas are key/foreign-key joins from the
fact table into small dimension tables. The simulators execute them by
integer dereference (``dim[column][fk_values]`` — dimension surrogate keys
equal row positions by construction, see
:func:`repro.data.normalize.normalize`), and charge their *cost* through
the engines' cost models:

* a blocking engine (MonetDB) pays a radix-hash-join-style cost
  proportional to the fact rows flowing through each join;
* a wander-join engine (XDB) pays a per-sampled-tuple lookup cost instead
  (random walks dereference the FK of each sampled fact row) — which is
  why its TR-violation ratio stays flat as normalized data grows (§5.3).
"""

from __future__ import annotations

from typing import List

from repro.data.storage import Dataset, ForeignKey
from repro.query.model import AggQuery


def required_foreign_keys(dataset: Dataset, query: AggQuery) -> List[ForeignKey]:
    """The distinct FKs that must be traversed to evaluate ``query``.

    De-normalized datasets need none; normalized ones need one per
    dimension role whose attributes the query references.
    """
    required: List[ForeignKey] = []
    for column in query.referenced_columns():
        _table, _physical, fk = dataset.resolve_column(column)
        if fk is not None and fk not in required:
            required.append(fk)
    return required


def num_joins(dataset: Dataset, query: AggQuery) -> int:
    """Number of distinct FK joins ``query`` requires on ``dataset``."""
    return len(required_foreign_keys(dataset, query))
