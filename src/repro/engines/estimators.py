"""Sampling estimators with margins of error.

AQP engines return approximate answers plus confidence intervals at the
configured confidence level (§4.6, default 95 %). This module converts the
sufficient statistics of :func:`repro.query.groundtruth.compute_grouped_stats`
into estimates and *absolute* margins of error:

* :func:`srs_estimate` — simple random sampling (the progressive and
  online-aggregation engines sample uniformly from a shuffled permutation,
  so a prefix of size *n* is an SRS of the table);
* :func:`stratified_estimate` — stratified sampling with per-stratum
  weights (the offline-sample engine, System X).

Margins derive from the usual CLT intervals: counts are binomial
proportions scaled by the population, sums are scaled sample means over
the *whole* sample (rows outside the bin contribute zero), and averages
use the within-bin standard error. MIN/MAX estimates carry no margin
(``None``) — order statistics of a sample bound nothing without
distributional assumptions; the Bias metric (§4.7) is what catches their
systematic under/over-estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from scipy import stats as scipy_stats

from repro.common.errors import EngineError
from repro.query.groundtruth import GroupedStats
from repro.query.model import AggFunc, AggQuery, BinKey

#: values / margins mapping types returned by the estimators.
Values = Dict[BinKey, Tuple[float, ...]]
Margins = Dict[BinKey, Tuple[Optional[float], ...]]


def z_value(confidence_level: float) -> float:
    """Two-sided normal critical value for ``confidence_level``."""
    if not 0.0 < confidence_level < 1.0:
        raise EngineError(
            f"confidence level must be in (0, 1), got {confidence_level!r}"
        )
    return float(scipy_stats.norm.ppf(0.5 + confidence_level / 2.0))


def srs_estimate(
    stats: GroupedStats,
    sample_size: int,
    population: int,
    confidence_level: float,
) -> Tuple[Values, Margins]:
    """Estimates from a simple random sample of ``sample_size`` rows.

    ``stats`` must have been computed over exactly those rows.
    ``population`` is the total number of rows being estimated (the actual
    dataset size — estimates are in actual-data units so they are directly
    comparable to the ground truth; see DESIGN.md §1.3).
    """
    if sample_size <= 0:
        raise EngineError("cannot estimate from an empty sample")
    if sample_size > population:
        raise EngineError(
            f"sample of {sample_size} exceeds population {population}"
        )
    z = z_value(confidence_level)
    expansion = population / sample_size
    # Finite-population correction: as the sample approaches the full
    # table, margins collapse to zero (progressive engines converge).
    fpc = math.sqrt(max(0.0, 1.0 - sample_size / population))

    values: Values = {}
    margins: Margins = {}
    n = float(sample_size)
    for g, key in enumerate(stats.keys):
        row_values: List[float] = []
        row_margins: List[Optional[float]] = []
        k = float(stats.counts[g])
        for j, agg in enumerate(stats.query.aggregates):
            if agg.func is AggFunc.COUNT:
                p = k / n
                row_values.append(p * population)
                row_margins.append(
                    z * population * math.sqrt(max(p * (1.0 - p), 0.0) / n) * fpc
                )
            elif agg.func is AggFunc.SUM:
                mean_z = stats.sums[j][g] / n
                var_z = max(stats.sumsqs[j][g] / n - mean_z * mean_z, 0.0)
                row_values.append(mean_z * population)
                row_margins.append(z * population * math.sqrt(var_z / n) * fpc)
            elif agg.func is AggFunc.AVG:
                mean_b = stats.sums[j][g] / k
                row_values.append(mean_b)
                if k >= 2:
                    var_b = max(stats.sumsqs[j][g] / k - mean_b * mean_b, 0.0)
                    row_margins.append(z * math.sqrt(var_b / k) * fpc)
                else:
                    row_margins.append(None)
            elif agg.func is AggFunc.MIN:
                row_values.append(float(stats.mins[j][g]))
                row_margins.append(None)
            elif agg.func is AggFunc.MAX:
                row_values.append(float(stats.maxs[j][g]))
                row_margins.append(None)
        values[key] = tuple(row_values)
        margins[key] = tuple(row_margins)
    return values, margins


@dataclass(frozen=True)
class StratumStats:
    """One stratum's contribution to a stratified estimate.

    ``weight`` is the expansion factor N_h / n_h of the stratum;
    ``sample_size`` its number of sampled rows n_h.
    """

    stats: GroupedStats
    weight: float
    sample_size: int


def stratified_estimate(
    query: AggQuery,
    strata: Sequence[StratumStats],
    confidence_level: float,
) -> Tuple[Values, Margins]:
    """Combine per-stratum statistics into stratified estimates.

    COUNT/SUM use the standard stratified expansion with per-stratum
    binomial/mean variances; AVG is the ratio of the stratified SUM and
    COUNT estimates, its margin approximated by the pooled within-bin
    variance (delta method, documented approximation); MIN/MAX take the
    extremum over strata, without margins.
    """
    if not strata:
        raise EngineError("stratified estimate needs at least one stratum")
    z = z_value(confidence_level)

    # Union of keys over strata, preserving first-seen order.
    all_keys: List[BinKey] = []
    seen = set()
    for stratum in strata:
        for key in stratum.stats.keys:
            if key not in seen:
                seen.add(key)
                all_keys.append(key)
    index_per_stratum = [
        {key: g for g, key in enumerate(s.stats.keys)} for s in strata
    ]

    values: Values = {}
    margins: Margins = {}
    for key in all_keys:
        row_values: List[float] = []
        row_margins: List[Optional[float]] = []
        for j, agg in enumerate(query.aggregates):
            count_est = 0.0
            count_var = 0.0
            sum_est = 0.0
            sum_var = 0.0
            within_var = 0.0
            minimum = math.inf
            maximum = -math.inf
            for stratum, key_index in zip(strata, index_per_stratum):
                g = key_index.get(key)
                if g is None:
                    continue
                stats = stratum.stats
                w = stratum.weight
                n_h = float(stratum.sample_size)
                k = float(stats.counts[g])
                p = k / n_h
                count_est += w * k
                count_var += (w * n_h) ** 2 * p * (1.0 - p) / n_h
                if agg.func in (AggFunc.SUM, AggFunc.AVG):
                    mean_z = stats.sums[j][g] / n_h
                    var_z = max(
                        stats.sumsqs[j][g] / n_h - mean_z * mean_z, 0.0
                    )
                    sum_est += w * stats.sums[j][g]
                    sum_var += (w * n_h) ** 2 * var_z / n_h
                    if k >= 1:
                        mean_b = stats.sums[j][g] / k
                        var_b = max(
                            stats.sumsqs[j][g] / k - mean_b * mean_b, 0.0
                        )
                        within_var += (w ** 2) * k * var_b
                if agg.func is AggFunc.MIN:
                    minimum = min(minimum, float(stats.mins[j][g]))
                if agg.func is AggFunc.MAX:
                    maximum = max(maximum, float(stats.maxs[j][g]))

            if agg.func is AggFunc.COUNT:
                row_values.append(count_est)
                row_margins.append(z * math.sqrt(count_var))
            elif agg.func is AggFunc.SUM:
                row_values.append(sum_est)
                row_margins.append(z * math.sqrt(sum_var))
            elif agg.func is AggFunc.AVG:
                # Keys only enter all_keys through a stratum that observed
                # them, so count_est > 0 holds; guard anyway for safety.
                if count_est <= 0:
                    raise EngineError(f"stratified AVG over empty bin {key!r}")
                avg_est = sum_est / count_est
                row_values.append(avg_est)
                row_margins.append(
                    z * math.sqrt(within_var) / count_est if count_est >= 2 else None
                )
            elif agg.func is AggFunc.MIN:
                row_values.append(minimum)
                row_margins.append(None)
            elif agg.func is AggFunc.MAX:
                row_values.append(maximum)
                row_margins.append(None)
        if row_values:
            values[key] = tuple(row_values)
            margins[key] = tuple(row_margins)
    return values, margins
