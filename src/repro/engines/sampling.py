"""Offline stratified-sampling AQP — the System X stand-in.

§5: *"A commercial in-memory AQP system that operates on stratified sample
tables (offline sampling). The run time of queries cannot be set
explicitly, but must be specified by means of setting the size of samples
tables, i.e. the sampling rate."*

Behavioural consequences this simulator reproduces:

* queries execute **blocking over the sample** — fast, but with a fixed
  per-query overhead, so very tight TRs (0.5 s) are still violated while
  TR ≥ 3 s never is;
* result **quality is constant with respect to TR** — the sample is fixed
  offline, so waiting longer buys nothing (the paper's argument for online
  sampling in §6);
* estimates carry stratified margins of error at the configured
  confidence level;
* only de-normalized data is supported ("System X only works on
  de-normalized data", §5.3).

The sample is stratified on the lowest-cardinality nominal column
(carriers for the flights data) with proportional allocation and a minimum
per-stratum quota — the point of stratification being that rare strata
stay represented.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import EngineError
from repro.common.rng import derive_rng
from repro.engines.base import Engine, EngineCapabilities, _HandleState
from repro.engines.cost import (
    EngineCostModel,
    PreparationModel,
    SAMPLING_COST,
    SAMPLING_DEFAULT_RATE,
    SAMPLING_PREP,
)
from repro.engines.estimators import StratumStats, stratified_estimate
from repro.engines.kernel_cache import get_kernel
from repro.query.groundtruth import compute_grouped_stats
from repro.query.model import QueryResult

#: Strata with more categories than this are unusable for stratification.
_MAX_STRATA = 64
#: Minimum rows sampled from every stratum.
_MIN_PER_STRATUM = 2


class StratifiedSamplingEngine(Engine):
    """System X-like offline-sample AQP."""

    name = "system-x-sim"
    capabilities = EngineCapabilities(
        supports_joins=False, progressive=False, returns_margins=True
    )

    def __init__(
        self,
        *args,
        sampling_rate: float = SAMPLING_DEFAULT_RATE,
        stratify: bool = True,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if not 0.0 < sampling_rate <= 1.0:
            raise EngineError(
                f"sampling rate must be in (0, 1], got {sampling_rate!r}"
            )
        if self.dataset.is_normalized:
            raise EngineError(
                f"{self.name} only works on de-normalized data (§5.3)"
            )
        self.sampling_rate = sampling_rate
        #: Stratification can be disabled (plain uniform sample) to ablate
        #: the design choice the paper's §6 discussion credits for System
        #: X's rare-group coverage.
        self.stratify = stratify
        self._strata: List[Tuple[np.ndarray, float]] = []  # (indices, weight)
        self._sample_rows = 0

    def _default_cost(self) -> EngineCostModel:
        return SAMPLING_COST

    def _default_prep(self) -> PreparationModel:
        return SAMPLING_PREP

    # ------------------------------------------------------------------
    def _do_prepare(self) -> List[Tuple[str, float]]:
        """Build the stratified sample (the §5.2 offline step)."""
        column = self._stratification_column() if self.stratify else None
        rng = derive_rng(self.settings.seed, self.name, "sample")
        if column is None:
            indices = rng.choice(
                self.actual_rows,
                size=max(1, int(self.actual_rows * self.sampling_rate)),
                replace=False,
            )
            weight = self.actual_rows / len(indices)
            self._strata = [(np.sort(indices), weight)]
        else:
            values = self.dataset.gather_column(column).astype(str)
            categories, codes = np.unique(values, return_inverse=True)
            self._strata = []
            for code in range(len(categories)):
                stratum_rows = np.flatnonzero(codes == code)
                quota = max(
                    _MIN_PER_STRATUM,
                    int(round(len(stratum_rows) * self.sampling_rate)),
                )
                quota = min(quota, len(stratum_rows))
                chosen = rng.choice(stratum_rows, size=quota, replace=False)
                weight = len(stratum_rows) / quota
                self._strata.append((np.sort(chosen), weight))
        self._sample_rows = sum(len(indices) for indices, _ in self._strata)
        return []

    def _stratification_column(self) -> Optional[str]:
        """Lowest-cardinality nominal column usable for stratification."""
        best: Optional[Tuple[int, str]] = None
        for name in self.dataset.fact.column_names:
            if self.dataset.fact.is_numeric(name):
                continue
            cardinality = len(np.unique(self.dataset.fact[name]))
            if cardinality > _MAX_STRATA:
                continue
            if best is None or cardinality < best[0]:
                best = (cardinality, name)
        return best[1] if best else None

    # ------------------------------------------------------------------
    def _do_submit(self, state: _HandleState) -> None:
        # Blocking scan over the sample table. Demand scales with the
        # sample size; a seeded lognormal jitter models plan/cache
        # variance, giving the latency tail behind ">50 % violations at
        # TR=0.5 s but only ≈5 % at 1 s".
        from repro.engines.joins import num_joins

        joins = num_joins(self.dataset, state.query)
        multiplier = self.cost_model.scan_multiplier(
            state.query,
            self._sample_qualifying_fraction(state),
            joins,
            column_cost=self.cost_model.scan_column_cost(self.dataset, state.query),
        )
        # The sample has ``sample_rows * scale`` virtual tuples; a blocking
        # scan over it at the engine's virtual throughput takes:
        virtual_sample_rows = self._sample_rows * self.settings.scale
        base = virtual_sample_rows * multiplier / self.cost_model.scan_throughput
        rng = derive_rng(self.settings.seed, self.name, "jitter", state.handle)
        jitter = float(np.exp(rng.normal(0.0, 0.12)))
        demand = self.cost_model.startup_latency + base * jitter
        state.task_id = self.scheduler.add_task(demand)

    def _sample_qualifying_fraction(self, state: _HandleState) -> float:
        key = ("sample_fraction", state.query.filter)
        cached = state.extra.get(key)
        if cached is not None:
            return cached
        # Approximate with the full-data fraction (cached engine-wide).
        return self.qualifying_fraction(state.query)

    def _result_at(self, state: _HandleState, time: float) -> Optional[QueryResult]:
        finished = self.scheduler.finished_at(state.task_id)
        if finished is None or finished > time + 1e-12:
            return None
        if "result" not in state.extra:
            state.extra["result"] = self._estimate(state)
        return state.extra["result"]

    def _estimate(self, state: _HandleState) -> QueryResult:
        # One compiled kernel serves every stratum: the filter mask, bin
        # codes and column casts are shared across the per-stratum passes.
        kernel = get_kernel(self.dataset, state.query)
        strata_stats = []
        for indices, weight in self._strata:
            if kernel is not None:
                stats = kernel.evaluate(indices)
            else:
                stats = compute_grouped_stats(self.dataset, state.query, indices)
            if stats.num_groups == 0:
                continue
            strata_stats.append(
                StratumStats(stats=stats, weight=weight, sample_size=len(indices))
            )
        if not strata_stats:
            return QueryResult(
                query=state.query,
                values={},
                margins={},
                rows_processed=self._sample_rows,
                fraction=self._sample_rows / self.actual_rows,
                exact=False,
            )
        values, margins = stratified_estimate(
            state.query, strata_stats, self.settings.confidence_level
        )
        return QueryResult(
            query=state.query,
            values=values,
            margins=margins,
            rows_processed=self._sample_rows,
            fraction=self._sample_rows / self.actual_rows,
            exact=False,
        )
