"""Process-wide LRU cache of compiled query kernels.

Compiling an :class:`~repro.query.kernels.CompiledQueryKernel` costs one
full pass over the referenced columns (gather, filter mask, bin codes).
Interactive workloads re-issue structurally identical queries constantly
(§2.2's linked-visualization updates repeat on every selection change,
and clearing a filter restores a previous query), and the session server
multiplexes sessions over one shared engine — so compiled units are
cached process-wide, keyed by the same stable digests the ground-truth
oracle uses:

    (dataset.fingerprint(), query_cache_key(query))

Both components are content SHA-256 digests, so lookups are identical in
every process regardless of ``PYTHONHASHSEED`` and kernels compiled for
one dataset can never leak to another.

Eviction is LRU with a configurable capacity
(``REPRO_KERNEL_CACHE_SIZE``). Hit/miss/eviction counts are kept as plain
attributes always, and mirrored into the ``obs`` metrics registry
(``repro_kernel_cache_*_total``) while observability is enabled; compile
time lands in the profiler's ``compile`` stage.

Kernels can be disabled wholesale (``REPRO_KERNELS=off`` or the CLI's
``--no-kernels``), in which case :func:`get_kernel` returns ``None`` and
every call site falls back to the uncompiled path — the A/B switch the
differential test layer and golden-byte checks lean on.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.common.errors import BenchmarkError
from repro.obs.metrics import get_metrics
from repro.obs.profile import STAGE_COMPILE, get_profiler
from repro.obs.tracer import get_tracer
from repro.query.groundtruth import query_cache_key
from repro.query.kernels import CompiledQueryKernel
from repro.query.model import AggQuery

#: Default number of compiled kernels kept alive process-wide.
DEFAULT_KERNEL_CACHE_CAPACITY = 256


def _env_flag_disabled() -> bool:
    return os.environ.get("REPRO_KERNELS", "").strip().lower() in (
        "off",
        "0",
        "false",
        "no",
    )


def _env_capacity() -> int:
    raw = os.environ.get("REPRO_KERNEL_CACHE_SIZE", "").strip()
    if not raw:
        return DEFAULT_KERNEL_CACHE_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        raise BenchmarkError(
            f"REPRO_KERNEL_CACHE_SIZE must be an integer, got {raw!r}"
        ) from None
    if capacity < 1:
        raise BenchmarkError(
            f"REPRO_KERNEL_CACHE_SIZE must be >= 1, got {capacity}"
        )
    return capacity


class KernelCache:
    """Digest-keyed LRU of :class:`CompiledQueryKernel` objects."""

    def __init__(self, capacity: int = DEFAULT_KERNEL_CACHE_CAPACITY):
        if capacity < 1:
            raise BenchmarkError(f"kernel cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], CompiledQueryKernel]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(dataset, query: AggQuery) -> Tuple[str, str]:
        """The process-portable cache key: content digests only."""
        return (dataset.fingerprint(), query_cache_key(query))

    def get(self, dataset, query: AggQuery) -> CompiledQueryKernel:
        """The compiled kernel for ``query`` × ``dataset`` (compiling on miss)."""
        key = self.key_for(dataset, query)
        kernel = self._entries.get(key)
        if kernel is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            self._publish("hits")
            return kernel
        self.misses += 1
        self._publish("misses")
        with get_profiler().stage(STAGE_COMPILE):
            kernel = CompiledQueryKernel(dataset, query)
        self._entries[key] = kernel
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._publish("evictions")
        return kernel

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _publish(self, event: str) -> None:
        # Mirror into the obs registry only while observability is on,
        # matching the engine-step instrumentation pattern (byte-neutral
        # and overhead-free when disabled).
        if get_tracer().enabled:
            get_metrics().counter(
                f"repro_kernel_cache_{event}_total",
                help=f"Compiled-kernel cache {event}.",
            ).inc()


_ENABLED = not _env_flag_disabled()
_CACHE = KernelCache(_env_capacity())


def kernels_enabled() -> bool:
    """Whether compiled kernels are in use (vs. the uncompiled path)."""
    return _ENABLED


def set_kernels_enabled(enabled: bool) -> bool:
    """Toggle compiled kernels process-wide; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def kernel_cache() -> KernelCache:
    """The process-wide cache instance."""
    return _CACHE


def configure_kernel_cache(capacity: int) -> KernelCache:
    """Replace the process-wide cache with a fresh one of ``capacity``."""
    global _CACHE
    _CACHE = KernelCache(capacity)
    return _CACHE


def clear_kernel_cache() -> None:
    _CACHE.clear()


def get_kernel(dataset, query: AggQuery) -> Optional[CompiledQueryKernel]:
    """The cached compiled kernel, or ``None`` when kernels are disabled."""
    if not _ENABLED:
        return None
    return _CACHE.get(dataset, query)
