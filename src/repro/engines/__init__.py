"""Engine simulators: the five systems under test (DESIGN.md §1.2).

The paper evaluates MonetDB, approXimateDB/XDB, IDEA, and two commercial
systems ("System X", "System Y"). None are available offline, so each is
reproduced as an engine simulator that computes *real answers* on the
actual data (exact scans, genuine random samples, honest confidence
intervals) while accounting for *time* through a calibrated cost model
over the benchmark clock:

* :mod:`repro.engines.columnstore` — blocking analytical column store
  (MonetDB stand-in);
* :mod:`repro.engines.onlineagg` — online aggregation with report
  intervals and a blocking fallback for non-online-capable queries
  (approXimateDB/XDB stand-in);
* :mod:`repro.engines.progressive` — progressive engine with result reuse
  and optional speculative execution (IDEA stand-in);
* :mod:`repro.engines.sampling` — offline stratified-sample AQP
  (System X stand-in);
* :mod:`repro.engines.frontend` — IDE layer adding rendering overhead on
  top of a backend engine (System Y stand-in).

Shared infrastructure: :mod:`repro.engines.scheduler` (processor-sharing
capacity model — concurrent queries slow each other down, the crux of the
1:N workflows), :mod:`repro.engines.cost` (calibrated throughput/latency
constants and the data-preparation model of §5.2),
:mod:`repro.engines.estimators` (sampling estimators with margins of
error), :mod:`repro.engines.joins` (star-schema join helpers).
"""

from repro.engines.base import Engine, EngineCapabilities, PreparationReport
from repro.engines.columnstore import ColumnStoreEngine
from repro.engines.cost import EngineCostModel, PreparationModel
from repro.engines.frontend import FrontendEngine
from repro.engines.kernel_cache import (
    KernelCache,
    clear_kernel_cache,
    configure_kernel_cache,
    get_kernel,
    kernel_cache,
    kernels_enabled,
    set_kernels_enabled,
)
from repro.engines.onlineagg import OnlineAggEngine
from repro.engines.progressive import ProgressiveEngine
from repro.engines.sampling import StratifiedSamplingEngine
from repro.engines.scheduler import ProcessorSharingScheduler

#: Engine registry: paper-facing names → constructor.
ENGINE_REGISTRY = {
    "monetdb-sim": ColumnStoreEngine,
    "xdb-sim": OnlineAggEngine,
    "idea-sim": ProgressiveEngine,
    "system-x-sim": StratifiedSamplingEngine,
}

__all__ = [
    "ColumnStoreEngine",
    "ENGINE_REGISTRY",
    "Engine",
    "EngineCapabilities",
    "EngineCostModel",
    "FrontendEngine",
    "KernelCache",
    "OnlineAggEngine",
    "PreparationModel",
    "PreparationReport",
    "ProcessorSharingScheduler",
    "ProgressiveEngine",
    "StratifiedSamplingEngine",
    "clear_kernel_cache",
    "configure_kernel_cache",
    "get_kernel",
    "kernel_cache",
    "kernels_enabled",
    "set_kernels_enabled",
]
