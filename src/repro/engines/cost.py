"""Cost models: the calibrated time behaviour of the simulated systems.

The reproduction's honesty rule (DESIGN.md §1.3): query *answers* are
computed for real; query *time* is modeled. This module concentrates every
timing constant so the calibration is reviewable in one place.

Throughput constants are expressed in **virtual tuples per second of
exclusive capacity** on the paper's testbed (2× Intel E5-2660, 256 GB RAM)
and divided by ``BenchmarkSettings.scale`` at runtime, preserving all time
ratios while the benchmark runs over 1/scale as many actual rows.

Calibration sources (paper §5.2–§5.3):

* **MonetDB** — violations fall roughly linearly over TR ∈ [0.5 s, 10 s]
  at 500 M rows, so typical query times must span that bracket:
  ``scan_throughput = 1.2e8`` with per-query multipliers of ≈0.4–3.5 gives
  ≈1.7–15 s. Loading 500 M CSV rows takes 19 min → ``load_rate ≈ 4.4e5``.
* **XDB** — online-capable queries answer from samples at every report
  interval; the PostgreSQL-based blocking fallback is far slower than
  MonetDB (row store): ``scan_throughput = 1.6e7`` → fallback queries need
  ≈25–110 s at 500 M and violate every TR up to 10 s, pinning the overall
  violation ratio at the ≈66 % fallback fraction. Wander-join sampling is
  index-driven random access: ``sample_throughput = 2e6`` tuples/s. Data
  prep (COPY + primary key) takes 130 min at 500 M → ``load_rate ≈ 6.4e4``.
* **IDEA** — progressive in-memory scans over a pre-shuffled table:
  ``sample_throughput = 5e7`` tuples/s; results can be polled at any time;
  a ≈0.6 s warm-up penalty on the first query after a (re)start reproduces
  the paper's "1 % of queries violate TR=0.5 s". Start-up load of a fixed
  tuple budget takes 3 min regardless of size.
* **System X** — blocking scans over an offline 1 % stratified sample plus
  a per-query overhead of ≈0.15–0.45 s: >50 % violations at TR=0.5 s, ≈5 %
  at 1 s, none at ≥3 s. Prep (load + sample build + warm-up queries) takes
  27 min at 500 M.
* **System Y** — a frontend layer over a backend DBMS that adds ≈1–2 s of
  rendering overhead per query (§5.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.data.storage import Dataset
from repro.engines.joins import num_joins
from repro.query.model import AggQuery


@dataclass(frozen=True)
class EngineCostModel:
    """Time model of one engine (virtual tuples/sec and multipliers).

    A query's *service demand* in seconds of exclusive capacity is::

        startup + rows * multiplier(query) / (scan_throughput / scale)

    with ``multiplier`` composed of a per-referenced-column scan term and a
    qualifying-fraction-proportional processing term — which makes filter
    specificity the dominant performance factor, matching §5.5.
    """

    #: Virtual tuples/sec for sequential scans (blocking execution).
    scan_throughput: float
    #: Virtual tuples/sec for sampled access (progressive/online engines).
    sample_throughput: float = 0.0
    #: Fixed per-query latency (parsing, planning, dispatch), seconds.
    startup_latency: float = 0.02
    #: Scan cost per referenced numeric column (column-store column read).
    column_scan_cost: float = 0.35
    #: Scan-cost factor of string columns relative to numeric ones. This
    #: is what makes the normalized schema slightly *cheaper* overall
    #: (§5.3): normalization replaces wide string columns in the fact
    #: table by int FK columns, shrinking the bytes scanned.
    string_scan_factor: float = 2.4
    #: Processing cost of qualifying rows: base term.
    process_base_cost: float = 0.8
    #: Extra processing per additional bin dimension.
    extra_dim_cost: float = 0.5
    #: Extra processing per additional aggregate.
    extra_agg_cost: float = 0.35
    #: Extra cost per FK join, applied to all scanned rows (radix hash
    #: join probe into a cache-resident dimension table).
    join_scan_cost: float = 0.1
    #: Extra cost per FK join per *sampled* row (wander-join dereference).
    join_sample_cost: float = 0.6

    def __post_init__(self):
        if self.scan_throughput <= 0:
            raise ConfigurationError("scan_throughput must be positive")

    # ------------------------------------------------------------------
    def scan_column_cost(self, dataset: Dataset, query: AggQuery) -> float:
        """Summed per-column scan cost of a query on a physical layout.

        A column reached through a foreign key is scanned as the fact
        table's *int key column* (cost 1×) — the dimension itself is tiny;
        a string column stored de-normalized in the fact table costs
        ``string_scan_factor``×. This is the §5.3 size effect.
        """
        total = 0.0
        charged_fks = set()
        for name in query.referenced_columns():
            _table, _physical, fk = dataset.resolve_column(name)
            if fk is not None:
                # One key-column scan per FK, however many of its
                # attributes the query touches.
                if fk.fact_column not in charged_fks:
                    charged_fks.add(fk.fact_column)
                    total += self.column_scan_cost
            elif dataset.column_is_numeric(name):
                total += self.column_scan_cost
            else:
                total += self.column_scan_cost * self.string_scan_factor
        return total

    def scan_multiplier(
        self,
        query: AggQuery,
        qualifying_fraction: float,
        joins: int,
        column_cost: Optional[float] = None,
    ) -> float:
        """Cost multiplier of a full blocking scan for ``query``.

        ``column_cost`` is the layout-aware per-column term from
        :meth:`scan_column_cost`; when omitted, every referenced column is
        charged the numeric rate (layout-agnostic approximation).
        """
        if column_cost is None:
            column_cost = self.column_scan_cost * len(query.referenced_columns())
        processing = (
            self.process_base_cost
            + self.extra_dim_cost * (query.num_bin_dims - 1)
            + self.extra_agg_cost * (len(query.aggregates) - 1)
        )
        return (
            column_cost
            + qualifying_fraction * processing
            + self.join_scan_cost * joins
        )

    def sample_multiplier(self, query: AggQuery, joins: int) -> float:
        """Cost multiplier per sampled tuple (progressive/online access)."""
        columns = len(query.referenced_columns())
        return (
            1.0
            + 0.1 * (columns - 1)
            + 0.15 * (query.num_bin_dims - 1)
            + 0.1 * (len(query.aggregates) - 1)
            + self.join_sample_cost * joins
        )

    def blocking_service_demand(
        self,
        query: AggQuery,
        dataset: Dataset,
        virtual_rows: int,
        scale: int,
        qualifying_fraction: float,
    ) -> float:
        """Seconds of exclusive service a blocking execution needs."""
        joins = num_joins(dataset, query)
        multiplier = self.scan_multiplier(
            query,
            qualifying_fraction,
            joins,
            column_cost=self.scan_column_cost(dataset, query),
        )
        effective_throughput = self.scan_throughput / scale
        actual_rows = max(1, virtual_rows // scale)
        return self.startup_latency + actual_rows * multiplier / effective_throughput

    def sampling_service_rate(
        self, query: AggQuery, dataset: Dataset, scale: int
    ) -> float:
        """Actual sampled tuples per second of exclusive service."""
        if self.sample_throughput <= 0:
            raise ConfigurationError("engine has no sampling path configured")
        joins = num_joins(dataset, query)
        multiplier = self.sample_multiplier(query, joins)
        return (self.sample_throughput / scale) / multiplier


@dataclass(frozen=True)
class PreparationModel:
    """Data-preparation-time model (§5.2: "data preparation time").

    ``preparation_time`` answers: how long from pointing the system at a
    CSV until the first workload interaction can run? Components:

    * loading (``load_rate`` virtual tuples/sec; 0 = fixed-cost load),
    * fixed pre-processing (index builds counted in the rate for XDB,
      warm-up queries, server start),
    * sample construction (System X's offline stratified tables).
    """

    #: Virtual tuples/sec for the bulk load (0 → size-independent load).
    load_rate: float = 0.0
    #: Fixed preparation seconds regardless of size.
    fixed_seconds: float = 0.0
    #: Virtual tuples/sec for offline sample construction (0 = none).
    sample_build_rate: float = 0.0

    def preparation_time(self, virtual_rows: int) -> float:
        """Modeled preparation seconds for a dataset of ``virtual_rows``."""
        total = self.fixed_seconds
        if self.load_rate > 0:
            total += virtual_rows / self.load_rate
        if self.sample_build_rate > 0:
            total += virtual_rows / self.sample_build_rate
        return total


# ----------------------------------------------------------------------
# Default calibrations (constants derived in the module docstring)
# ----------------------------------------------------------------------

#: MonetDB-like blocking column store. The qualifying-fraction term
#: (``process_base_cost``) deliberately dominates the per-column scan
#: term: §5.5 found predicate *selectivity* to be "by far the most crucial
#: factor in terms of query performance", and in a scan-parallel column
#: store the per-group aggregation work indeed dwarfs the sequential
#: column reads.
COLUMNSTORE_COST = EngineCostModel(
    scan_throughput=5.0e8,
    startup_latency=0.03,
    column_scan_cost=0.07,
    process_base_cost=1.05,
    extra_dim_cost=0.1,
    extra_agg_cost=0.1,
    join_scan_cost=0.05,
)
COLUMNSTORE_PREP = PreparationModel(load_rate=4.4e5, fixed_seconds=5.0)

#: approXimateDB/XDB-like online aggregation over PostgreSQL.
ONLINEAGG_COST = EngineCostModel(
    scan_throughput=1.6e7,  # row-store fallback scans
    sample_throughput=5.0e5,  # wander-join random access (index walks)
    startup_latency=0.05,
)
ONLINEAGG_PREP = PreparationModel(load_rate=6.4e4, fixed_seconds=10.0)

#: IDEA-like progressive engine.
PROGRESSIVE_COST = EngineCostModel(
    scan_throughput=8.0e7,  # only used if a query must run to completion
    sample_throughput=5.0e7,
    startup_latency=0.01,
)
PROGRESSIVE_PREP = PreparationModel(fixed_seconds=180.0)
#: Warm-up penalty of the first query after a restart (seconds of service).
PROGRESSIVE_FIRST_QUERY_PENALTY = 0.6

#: System X-like offline stratified sampling AQP (1 % sample).
SAMPLING_COST = EngineCostModel(
    scan_throughput=9.0e7,  # blocking scan over the (small) sample table
    startup_latency=0.45,  # per-query dispatch dominates at small samples
)
SAMPLING_PREP = PreparationModel(
    load_rate=4.4e5, fixed_seconds=60.0, sample_build_rate=1.1e6
)
#: Default offline sampling rate (fraction of the data, §5.2: "1% of the
#: data size").
SAMPLING_DEFAULT_RATE = 0.01

#: System Y-like IDE frontend rendering overhead, seconds (§5.6: ≈1–2 s).
FRONTEND_RENDER_OVERHEAD = (1.0, 2.0)
