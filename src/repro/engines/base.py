"""Engine interface and shared simulator machinery.

All five systems under test implement this interface. The driver contract
is event-driven and clock-agnostic:

1. ``prepare()`` once per (engine, dataset) — builds samples/shuffles and
   returns the modeled *data preparation time* (§5.2; reported, not slept);
2. ``submit(query)`` at the current clock time — returns a handle; the
   scheduler starts sharing capacity among all running queries;
3. the driver advances the shared clock and calls ``advance_to(t)``;
4. ``result_at(handle, t)`` — the answer that was *visible* at time ``t``
   (None if none was available: that is a TR violation when ``t`` is the
   deadline); deterministic for any settled past ``t``;
5. ``cancel(handle)`` — queries whose TR expired are cancelled (§4.7:
   "queries whose run-time exceed TR are cancelled").

Engines never sleep and never look at wall time; determinism comes from
the scheduler's service histories plus seeded sampling permutations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.clock import Clock, VirtualClock
from repro.common.config import BenchmarkSettings
from repro.common.errors import EngineError
from repro.common.rng import derive_rng
from repro.data.storage import Dataset
from repro.engines.cost import EngineCostModel, PreparationModel
from repro.engines.scheduler import ProcessorSharingScheduler
from repro.query.filters import Filter, evaluate_filter
from repro.query.model import AggQuery, QueryResult


@dataclass(frozen=True)
class PreparationReport:
    """Modeled data-preparation time (§5.2) with a component breakdown."""

    engine: str
    virtual_rows: int
    seconds: float
    components: Tuple[Tuple[str, float], ...] = ()

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine supports — drives experiment eligibility.

    Mirrors the paper: IDEA does not support joins (excluded from the
    normalized-schema experiment), System X only works on de-normalized
    data, XDB executes only single COUNT/SUM aggregates online.
    """

    supports_joins: bool
    progressive: bool
    returns_margins: bool


@dataclass
class _HandleState:
    """Book-keeping of one submitted query inside an engine."""

    handle: int
    query: AggQuery
    task_id: int
    submitted_at: float
    cancelled_at: Optional[float] = None
    extra: dict = field(default_factory=dict)


class Engine:
    """Base class of all engine simulators."""

    #: Stable engine identifier (also the ``driver`` column of Table 1).
    name: str = "engine"
    capabilities = EngineCapabilities(
        supports_joins=False, progressive=False, returns_margins=False
    )

    def __init__(
        self,
        dataset: Dataset,
        settings: BenchmarkSettings,
        clock: Optional[Clock] = None,
        cost_model: Optional[EngineCostModel] = None,
        prep_model: Optional[PreparationModel] = None,
    ):
        self.dataset = dataset
        self.settings = settings
        self.clock = clock if clock is not None else VirtualClock()
        self.scheduler = ProcessorSharingScheduler(self.clock)
        self.cost_model = cost_model if cost_model is not None else self._default_cost()
        self.prep_model = prep_model if prep_model is not None else self._default_prep()
        self._handles: Dict[int, _HandleState] = {}
        self._next_handle = 0
        self._prepared = False
        self._fraction_cache: Dict[Optional[Filter], float] = {}

    # -- hooks for subclasses -------------------------------------------
    def _default_cost(self) -> EngineCostModel:
        raise NotImplementedError

    def _default_prep(self) -> PreparationModel:
        raise NotImplementedError

    def _do_prepare(self) -> List[Tuple[str, float]]:
        """Build engine-side structures; returns extra prep components."""
        return []

    def _do_submit(self, state: _HandleState) -> None:
        """Create the scheduler task(s) for ``state`` (sets task_id)."""
        raise NotImplementedError

    def _result_at(self, state: _HandleState, time: float) -> Optional[QueryResult]:
        raise NotImplementedError

    # -- common API --------------------------------------------------------
    @property
    def actual_rows(self) -> int:
        """Rows physically present (the population all answers refer to)."""
        return self.dataset.num_fact_rows

    @property
    def is_prepared(self) -> bool:
        """Whether :meth:`prepare` has run (it may run only once)."""
        return self._prepared

    def prepare(self) -> PreparationReport:
        """Prepare the engine; returns the modeled preparation time."""
        if self._prepared:
            raise EngineError(f"engine {self.name!r} is already prepared")
        extra = self._do_prepare()
        self._prepared = True
        base_seconds = self.prep_model.preparation_time(self.settings.virtual_rows)
        components = [("load_and_preprocess", base_seconds)] + list(extra)
        return PreparationReport(
            engine=self.name,
            virtual_rows=self.settings.virtual_rows,
            seconds=sum(seconds for _, seconds in components),
            components=tuple(components),
        )

    def submit(self, query: AggQuery) -> int:
        """Submit ``query`` at the current clock time; returns a handle."""
        if not self._prepared:
            raise EngineError(f"engine {self.name!r} used before prepare()")
        if not query.is_resolved:
            raise EngineError("engines require resolved bin dimensions")
        state = _HandleState(
            handle=self._next_handle,
            query=query,
            task_id=-1,
            submitted_at=self.clock.now(),
        )
        self._next_handle += 1
        self._do_submit(state)
        if state.task_id < 0:
            raise EngineError(f"{self.name!r} did not create a scheduler task")
        self._handles[state.handle] = state
        return state.handle

    def advance_to(self, time: float) -> None:
        """Settle the engine's scheduler up to ``time``."""
        self.scheduler.advance_to(time)

    def result_at(self, handle: int, time: float) -> Optional[QueryResult]:
        """The answer visible at ``time`` (None = nothing available)."""
        state = self._get(handle)
        if time < state.submitted_at - 1e-9:
            raise EngineError("cannot ask for a result before submission")
        return self._result_at(state, time)

    def cancel(self, handle: int) -> None:
        """Cancel a query (idempotent)."""
        state = self._get(handle)
        if state.cancelled_at is None:
            # Under a wall clock real time has moved since the last settle;
            # bring the scheduler up to date before hooks query it.
            self.scheduler.advance_to(self.clock.now())
            self._before_cancel(state)
            self.scheduler.cancel(state.task_id)
            state.cancelled_at = self.clock.now()

    def _before_cancel(self, state: _HandleState) -> None:
        """Subclass hook invoked right before a task is cancelled."""

    def finished_at(self, handle: int) -> Optional[float]:
        """Completion time of the query's execution, if it completed."""
        return self.scheduler.finished_at(self._get(handle).task_id)

    def completion_time(self, handle: int, deadline: float) -> float:
        """End timestamp for reporting: completion or cancellation time."""
        finished = self.finished_at(handle)
        if finished is not None and finished <= deadline:
            return finished
        return deadline

    # -- workflow lifecycle (Listing 1's workflow_start/workflow_end) ----
    def workflow_start(self) -> None:
        """Called by the driver before each workflow begins."""

    def workflow_end(self) -> None:
        """Called by the driver after each workflow completes."""

    def link_vizs(self, speculative_queries: Sequence[AggQuery]) -> None:
        """Hint: these queries may be asked next (speculation; default no-op).

        Mirrors ``link_vizs`` of the paper's adapter stub (Listing 1):
        "use the logical links as hint for speculative query execution,
        if applicable".
        """

    def delete_vizs(self, queries: Sequence[AggQuery]) -> None:
        """Hint: these queries' visualizations were discarded.

        Mirrors ``delete_vizs`` of Listing 1 ("free memory, if
        applicable"). Default no-op; cache-holding engines drop per-query
        state.
        """

    # -- memory reclamation (population-scale serving) -------------------
    def _retained_task_ids(self) -> set:
        """Scheduler task ids a subclass still needs after settlement.

        Engines that read *completed* tasks' service histories later —
        the progressive engine's result-reuse map — return those ids so
        :meth:`release_settled` keeps them. Default: nothing is retained.
        """
        return set()

    def release_settled(self) -> int:
        """Drop book-keeping of queries that can never be observed again.

        A long-lived shared engine otherwise accumulates one handle state
        and one scheduler task (with its full service history) per query
        ever submitted — memory proportional to *total* load, not current
        load. The session server calls this when a session retires from a
        constant-memory serving run: every handle whose task is settled
        (finished or cancelled) and not retained by the engine subclass
        is forgotten, in both the engine and its scheduler. Returns the
        number of handles released. The caller promises not to query the
        released handles again; in the serving stack that holds because a
        retired session's records are already final.
        """
        retained = self._retained_task_ids()
        released = 0
        for handle, state in list(self._handles.items()):
            if state.task_id in retained:
                continue
            settled = self.scheduler.finished_at(
                state.task_id
            ) is not None or self.scheduler.is_cancelled(state.task_id)
            if not settled:
                continue
            del self._handles[handle]
            self.scheduler.release_task(state.task_id)
            self._released(state)
            released += 1
        return released

    def _released(self, state: _HandleState) -> None:
        """Subclass hook: a handle was just released (drop cross-refs)."""

    # -- shared helpers ----------------------------------------------------
    def qualifying_fraction(self, query: AggQuery) -> float:
        """Fraction of rows satisfying the query's filter (cost input).

        Cached per filter tree: dashboards re-evaluate the same effective
        predicate across many linked queries. With compiled kernels
        enabled the fraction comes from the kernel's full-table mask, so
        the predicate is never evaluated a second time for cost modeling.
        """
        cached = self._fraction_cache.get(query.filter)
        if cached is not None:
            return cached
        from repro.engines.kernel_cache import get_kernel  # deferred: cycle

        kernel = get_kernel(self.dataset, query)
        if kernel is not None:
            fraction = kernel.qualifying_fraction
        else:
            mask = evaluate_filter(
                query.filter, self.dataset.gather_column, self.actual_rows
            )
            fraction = float(mask.mean()) if len(mask) else 0.0
        self._fraction_cache[query.filter] = fraction
        return fraction

    def _shuffled_indices(self, stream: object = "shuffle") -> np.ndarray:
        """A seeded random permutation of all row indices (sampling order)."""
        rng = derive_rng(self.settings.seed, self.name, stream)
        return rng.permutation(self.actual_rows)

    def _get(self, handle: int) -> _HandleState:
        try:
            return self._handles[handle]
        except KeyError:
            raise EngineError(
                f"unknown handle {handle} for engine {self.name!r}"
            ) from None
