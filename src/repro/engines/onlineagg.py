"""Online aggregation with report intervals — the approXimateDB/XDB stand-in.

§5: *"A PostgreSQL-based DBMS that supports online aggregation using the
wander join algorithm. It allows for a maximum run-time to be set when
initiating a query. It additionally supports a 'report interval', so that
intermediate results can be retrieved at fixed time intervals. XDB has
some limitations in terms of query support …: while approXimateDB supports
online aggregation for COUNT and SUM, it does not provide online support
for AVG nor for multiple aggregates in a single query. We therefore set up
approXimateDB so that any query that cannot be executed online will fall
back to a regular Postgres query."*

This simulator reproduces those semantics:

* **online path** — single-aggregate COUNT/SUM queries sample tuples via
  wander-join-style random access (slow per-tuple rate, FK dereference per
  join) and publish an estimate at every report-interval tick;
* **fallback path** — every other query (AVG, multi-aggregate) runs as a
  blocking scan at PostgreSQL row-store speed, which at the paper's data
  sizes exceeds every TR: this is what pins XDB's violation ratio at the
  workload's ≈66 % non-online fraction, for *any* TR (Fig. 5);
* **online joins** — wander join samples fact rows and dereferences their
  FKs, so normalized schemas only raise the per-sample cost; TR violations
  stay flat as normalized data grows (Fig. 6e), unlike blocking joins.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import EngineError
from repro.common.rng import derive_seed
from repro.engines.base import Engine, EngineCapabilities, _HandleState
from repro.engines.cost import (
    EngineCostModel,
    ONLINEAGG_COST,
    ONLINEAGG_PREP,
    PreparationModel,
)
from repro.engines.estimators import srs_estimate
from repro.engines.kernel_cache import get_kernel
from repro.query.groundtruth import compute_grouped_stats, evaluate_exact
from repro.query.kernels import PrefixKernelRun
from repro.query.model import AggFunc, AggQuery, QueryResult


class OnlineAggEngine(Engine):
    """XDB-like online aggregation with a blocking fallback."""

    name = "xdb-sim"
    capabilities = EngineCapabilities(
        supports_joins=True, progressive=True, returns_margins=True
    )

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._permutation: Optional[np.ndarray] = None
        #: query → incremental prefix aggregation (compiled-kernel path).
        self._kernel_runs: Dict[AggQuery, PrefixKernelRun] = {}

    def _default_cost(self) -> EngineCostModel:
        return ONLINEAGG_COST

    def _default_prep(self) -> PreparationModel:
        return ONLINEAGG_PREP

    def _do_prepare(self) -> List[Tuple[str, float]]:
        self._permutation = self._shuffled_indices()
        return []

    # ------------------------------------------------------------------
    @staticmethod
    def supports_online(query: AggQuery) -> bool:
        """Whether XDB can run ``query`` online (COUNT/SUM, single agg)."""
        return len(query.aggregates) == 1 and query.aggregates[0].func in (
            AggFunc.COUNT,
            AggFunc.SUM,
        )

    def _do_submit(self, state: _HandleState) -> None:
        if self.supports_online(state.query):
            rate = self.cost_model.sampling_service_rate(
                state.query, self.dataset, self.settings.scale
            )
            work_total = self.actual_rows / rate
            state.task_id = self.scheduler.add_task(work_total)
            state.extra["kind"] = "online"
            state.extra["rate"] = rate
        else:
            demand = self.cost_model.blocking_service_demand(
                query=state.query,
                dataset=self.dataset,
                virtual_rows=self.settings.virtual_rows,
                scale=self.settings.scale,
                qualifying_fraction=self.qualifying_fraction(state.query),
            )
            state.task_id = self.scheduler.add_task(demand)
            state.extra["kind"] = "fallback"

    def _result_at(self, state: _HandleState, time: float) -> Optional[QueryResult]:
        if state.extra["kind"] == "fallback":
            finished = self.scheduler.finished_at(state.task_id)
            if finished is None or finished > time + 1e-12:
                return None
            if "result" not in state.extra:
                state.extra["result"] = evaluate_exact(self.dataset, state.query)
            return state.extra["result"]
        return self._online_result(state, time)

    def _online_result(
        self, state: _HandleState, time: float
    ) -> Optional[QueryResult]:
        # Results materialize only at report-interval ticks (§5: "so that
        # intermediate results can be retrieved at fixed time intervals").
        interval = self.settings.report_interval
        elapsed = time - state.submitted_at
        ticks = math.floor(elapsed / interval + 1e-9)
        if ticks < 1:
            return None
        report_time = state.submitted_at + ticks * interval
        finished = self.scheduler.finished_at(state.task_id)
        if finished is not None and finished <= report_time:
            report_time = min(report_time, time)
        n = min(
            self.actual_rows,
            int(self.scheduler.work_at(state.task_id, report_time) * state.extra["rate"]),
        )
        if n <= 0:
            return None
        cache = state.extra.get("result_cache")
        if cache is not None and cache[0] == n:
            return cache[1]
        result = self._estimate(state.query, n)
        state.extra["result_cache"] = (n, result)
        return result

    def workflow_start(self) -> None:
        """New workflow: drop incremental state (queries will not repeat)."""
        self._kernel_runs.clear()

    def _estimate(self, query: AggQuery, n: int) -> QueryResult:
        if self._permutation is None:
            raise EngineError("engine not prepared")
        offset = derive_seed(self.settings.seed, self.name, "rotation", query) % self.actual_rows
        run = self._kernel_runs.get(query)
        if run is None:
            kernel = get_kernel(self.dataset, query)
            if kernel is not None:
                run = PrefixKernelRun(kernel, self._permutation, offset)
                self._kernel_runs[query] = run
        if run is not None:
            stats = run.poll(n)
        else:
            end = offset + n
            if end <= self.actual_rows:
                indices = self._permutation[offset:end]
            else:
                indices = np.concatenate(
                    [self._permutation[offset:], self._permutation[: end - self.actual_rows]]
                )
            stats = compute_grouped_stats(self.dataset, query, indices)
        values, margins = srs_estimate(
            stats, n, self.actual_rows, self.settings.confidence_level
        )
        return QueryResult(
            query=query,
            values=values,
            margins=margins,
            rows_processed=n,
            fraction=n / self.actual_rows,
            exact=(n >= self.actual_rows),
        )
