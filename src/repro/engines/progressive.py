"""Progressive engine with result reuse and speculation — the IDEA stand-in.

§5: *"A system that supports online aggregation and has a fully
progressive computation model where, after initiating a query, results can
be polled at any point in time."* Plus two defining IDEA behaviours from
the literature the paper cites:

* **result reuse** ([16], "Revisiting reuse for approximate query
  processing"): partial results of earlier queries seed identical later
  queries, so re-issued queries resume instead of restarting;
* **speculative execution** (§5.4's "experimental extension"): when two
  visualizations are linked, the engine pre-executes the queries that
  every possible single-bin selection on the source would trigger, using
  idle think time; if the user then selects one of those bins, the
  already-accumulated sample answers immediately. Fig. 6f measures exactly
  this: missing bins fall as think time grows.

Samples are prefixes of a seeded whole-table permutation (each distinct
query gets its own deterministic rotation), so a prefix of size *n* is an
SRS of the table and polls are reproducible. Once the prefix covers the
table the answer is exact. No join support — the paper excludes IDEA from
the normalized-schema experiment (§5.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import EngineError
from repro.common.rng import derive_seed
from repro.engines.base import Engine, EngineCapabilities, _HandleState
from repro.engines.cost import (
    EngineCostModel,
    PreparationModel,
    PROGRESSIVE_COST,
    PROGRESSIVE_FIRST_QUERY_PENALTY,
    PROGRESSIVE_PREP,
)
from repro.engines.estimators import srs_estimate
from repro.engines.kernel_cache import get_kernel
from repro.obs.metrics import get_metrics
from repro.obs.profile import STAGE_ENGINE_STEP, get_profiler
from repro.obs.tracer import get_tracer
from repro.query.groundtruth import compute_grouped_stats
from repro.query.kernels import PrefixKernelRun
from repro.query.model import AggQuery, QueryResult

#: Relative scheduler weight of speculative background tasks while the
#: engine is idle (between interactions, i.e. during think time).
_SPECULATIVE_WEIGHT = 0.1
#: Weight while foreground queries are active: speculation is effectively
#: paused so it cannot starve the query the user is waiting on.
_SPECULATIVE_WEIGHT_PAUSED = 1e-4
#: Cap on concurrently tracked speculative queries.
_MAX_SPECULATIVE = 40


class ProgressiveEngine(Engine):
    """IDEA-like progressive online aggregation."""

    name = "idea-sim"
    capabilities = EngineCapabilities(
        supports_joins=False, progressive=True, returns_margins=True
    )

    def __init__(self, *args, speculation: bool = False, reuse: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        if self.dataset.is_normalized:
            raise EngineError(f"{self.name} does not support joins (§5.3)")
        self.speculation = speculation
        #: Result reuse (à la [16]) can be disabled for ablation studies.
        self.reuse_enabled = reuse
        self._permutation: Optional[np.ndarray] = None
        #: query → tuples already processed in some earlier execution.
        self._reuse: Dict[AggQuery, int] = {}
        #: query → incremental prefix aggregation (compiled-kernel path).
        self._kernel_runs: Dict[AggQuery, PrefixKernelRun] = {}
        #: query → rotation offset memo (derive_seed hashes per call).
        self._offsets: Dict[AggQuery, int] = {}
        #: query → (task_id, rate) of a running speculative execution.
        self._speculative: Dict[AggQuery, Tuple[int, float]] = {}
        #: handles of foreground queries that have not been cancelled yet;
        #: speculation pauses while this is non-empty.
        self._foreground: set = set()
        self._first_query_pending = True

    def _retained_task_ids(self) -> set:
        # Parked speculative executions are read back (work_done) when the
        # speculated query is finally submitted — their tasks must survive
        # release_settled() even if a group sweep already cancelled them.
        return {task_id for task_id, _ in self._speculative.values()}

    def _released(self, state) -> None:
        # A handle cancelled by a scheduler group sweep (departed session)
        # never went through _before_cancel; un-count it as foreground so
        # a churned-out user cannot keep speculation paused forever.
        self._foreground.discard(state.handle)
        if not self._foreground:
            self._set_speculation_paused(False)

    def _default_cost(self) -> EngineCostModel:
        return PROGRESSIVE_COST

    def _default_prep(self) -> PreparationModel:
        return PROGRESSIVE_PREP

    def _do_prepare(self) -> List[Tuple[str, float]]:
        self._permutation = self._shuffled_indices()
        return []

    # ------------------------------------------------------------------
    # Submission / polling
    # ------------------------------------------------------------------
    def _sampling_rate(self, query: AggQuery) -> float:
        """Actual sampled tuples per second of exclusive service."""
        return self.cost_model.sampling_service_rate(
            query, self.dataset, self.settings.scale
        )

    def _do_submit(self, state: _HandleState) -> None:
        rate = self._sampling_rate(state.query)
        penalty = 0.0
        if self._first_query_pending:
            # Warm-up of the first query after a restart (§5.2: "a slightly
            # higher overhead for the first query after a restart").
            penalty = PROGRESSIVE_FIRST_QUERY_PENALTY
            self._first_query_pending = False

        # Result reuse: resume from the best earlier run of this query —
        # either a cached partial result or a speculative execution. The
        # reused tuples are a *head start* independent of the scheduler's
        # service accounting, so the warm-up penalty cannot eat them.
        head_start = self._reuse.get(state.query, 0) if self.reuse_enabled else 0
        speculative = self._speculative.pop(state.query, None)
        if speculative is not None:
            spec_task, spec_rate = speculative
            spec_tuples = int(self.scheduler.work_done(spec_task) * spec_rate)
            self.scheduler.cancel(spec_task)
            head_start = max(head_start, spec_tuples)
        head_start = min(head_start, self.actual_rows)

        work_total = penalty + (self.actual_rows - head_start) / rate
        state.task_id = self.scheduler.add_task(work_total)
        state.extra["rate"] = rate
        state.extra["penalty"] = penalty
        state.extra["head_start"] = head_start
        self._foreground.add(state.handle)
        self._set_speculation_paused(True)

    def _tuples_at(self, state: _HandleState, time: float) -> int:
        work = self.scheduler.work_at(state.task_id, time)
        effective = max(0.0, work - state.extra["penalty"])
        sampled = state.extra["head_start"] + int(effective * state.extra["rate"])
        return min(self.actual_rows, sampled)

    def _result_at(self, state: _HandleState, time: float) -> Optional[QueryResult]:
        n = self._tuples_at(state, time)
        if n <= 0:
            return None
        self._remember(state.query, n)
        cache = state.extra.get("result_cache")
        if cache is not None and cache[0] == n:
            return cache[1]
        result = self._estimate(state.query, n)
        state.extra["result_cache"] = (n, result)
        return result

    def _estimate(self, query: AggQuery, n: int) -> QueryResult:
        # The engine-step kernel: one sample-prefix estimate. Wall time
        # lands in the engine_step stage; the trace event carries only
        # deterministic fields (virtual now + sample size).
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("engine.estimate", self.clock.now(), n=n)
            get_metrics().counter(
                "repro_engine_estimates_total",
                labels={"engine": self.name},
                help="Progressive estimate kernels executed.",
            ).inc()
        with get_profiler().stage(STAGE_ENGINE_STEP):
            run = self._kernel_run(query)
            if run is not None:
                # Incremental path: fold in only the delta rows since the
                # last poll of this query (bitwise-equal to from-scratch).
                stats = run.poll(n)
            else:
                indices = self._sample_indices(query, n)
                stats = compute_grouped_stats(self.dataset, query, indices)
            values, margins = srs_estimate(
                stats, n, self.actual_rows, self.settings.confidence_level
            )
        return QueryResult(
            query=query,
            values=values,
            margins=margins,
            rows_processed=n,
            fraction=n / self.actual_rows,
            exact=(n >= self.actual_rows),
        )

    def _rotation_offset(self, query: AggQuery) -> int:
        """The query's deterministic rotation offset (memoized per query)."""
        offset = self._offsets.get(query)
        if offset is None:
            offset = (
                derive_seed(self.settings.seed, self.name, "rotation", query)
                % self.actual_rows
            )
            self._offsets[query] = offset
        return offset

    def _kernel_run(self, query: AggQuery) -> Optional[PrefixKernelRun]:
        """The query's incremental run (None when kernels are disabled)."""
        if self._permutation is None:
            raise EngineError("engine not prepared")
        run = self._kernel_runs.get(query)
        if run is None:
            kernel = get_kernel(self.dataset, query)
            if kernel is None:
                return None
            run = PrefixKernelRun(
                kernel, self._permutation, self._rotation_offset(query)
            )
            self._kernel_runs[query] = run
        return run

    def _sample_indices(self, query: AggQuery, n: int) -> np.ndarray:
        """First ``n`` rows of the query's rotated permutation.

        Each distinct query starts at its own deterministic rotation of the
        shared shuffle so concurrent samples are decorrelated, while
        re-executions of the *same* query extend the *same* sample — the
        property result reuse relies on.
        """
        if self._permutation is None:
            raise EngineError("engine not prepared")
        offset = self._rotation_offset(query)
        end = offset + n
        if end <= self.actual_rows:
            return self._permutation[offset:end]
        return np.concatenate(
            [self._permutation[offset:], self._permutation[: end - self.actual_rows]]
        )

    def _remember(self, query: AggQuery, n: int) -> None:
        if n > self._reuse.get(query, 0):
            self._reuse[query] = n

    def _before_cancel(self, state: _HandleState) -> None:
        # Keep the partial sample for reuse by identical future queries.
        # (Clamp to the scheduler's settled time: under a wall clock, real
        # time keeps moving between the settle and this hook.)
        snapshot_time = min(self.clock.now(), self.scheduler.settled_until)
        self._remember(state.query, self._tuples_at(state, snapshot_time))
        self._foreground.discard(state.handle)
        if not self._foreground:
            self._set_speculation_paused(False)

    def _set_speculation_paused(self, paused: bool) -> None:
        """Demote/restore speculative task weights around foreground work."""
        weight = _SPECULATIVE_WEIGHT_PAUSED if paused else _SPECULATIVE_WEIGHT
        for task_id, _rate in self._speculative.values():
            if self.scheduler.finished_at(task_id) is None and not (
                self.scheduler.is_cancelled(task_id)
            ):
                self.scheduler.set_weight(task_id, weight)

    # ------------------------------------------------------------------
    # Speculation (Exp. 3 extension)
    # ------------------------------------------------------------------
    def link_vizs(self, speculative_queries: Sequence[AggQuery]) -> None:
        """Start background executions for likely next queries.

        The driver enumerates the queries every single-bin selection on the
        source viz would trigger (§5.4) and passes them here; they run at
        low scheduler weight, i.e. essentially only during think time.
        """
        if not self.speculation:
            return
        initial_weight = (
            _SPECULATIVE_WEIGHT_PAUSED if self._foreground else _SPECULATIVE_WEIGHT
        )
        for query in speculative_queries:
            if query in self._speculative:
                continue
            if len(self._speculative) >= _MAX_SPECULATIVE:
                break
            rate = self._sampling_rate(query)
            work_total = self.actual_rows / rate
            task_id = self.scheduler.add_task(work_total, weight=initial_weight)
            # Seed with any reusable partial result.
            reuse_tuples = self._reuse.get(query, 0)
            if reuse_tuples > 0:
                self.scheduler.credit_work(task_id, reuse_tuples / rate)
            self._speculative[query] = (task_id, rate)

    def delete_vizs(self, queries: Sequence[AggQuery]) -> None:
        """Free per-query state of discarded visualizations (Listing 1)."""
        for query in queries:
            self._reuse.pop(query, None)
            self._kernel_runs.pop(query, None)
            speculative = self._speculative.pop(query, None)
            if speculative is not None:
                self.scheduler.cancel(speculative[0])

    def speculative_tuples(self, query: AggQuery) -> int:
        """Tuples a speculative execution of ``query`` has accumulated."""
        entry = self._speculative.get(query)
        if entry is None:
            return 0
        task_id, rate = entry
        return int(self.scheduler.work_done(task_id) * rate)

    # ------------------------------------------------------------------
    # Workflow lifecycle
    # ------------------------------------------------------------------
    def workflow_start(self) -> None:
        """New workflow: clear caches.

        The warm-up penalty is *not* re-armed here — it models a system
        (re)start, which happens once per benchmark run (§5.2: IDEA
        violated ≈1 % of TR=0.5 s queries, "the first query after a
        restart of the system").
        """
        for task_id, _rate in self._speculative.values():
            self.scheduler.cancel(task_id)
        self._speculative.clear()
        self._reuse.clear()
        # Incremental accumulators restart with the reuse cache: the next
        # workflow's polls rebuild from scratch (bitwise-equivalent).
        self._kernel_runs.clear()

    def workflow_end(self) -> None:
        for task_id, _rate in self._speculative.values():
            self.scheduler.cancel(task_id)
        self._speculative.clear()
