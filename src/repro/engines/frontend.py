"""IDE frontend layer over a backend engine — the System Y stand-in.

§5.6: *"System Y renders and updates the visualizations in the workload
roughly at the same speed as when one uses MonetDB directly, with an added
delay of about 1-2s per query. This is likely to be the rendering overhead
to draw the visualizations. … we were interested to see if System Y uses
an intermediate layer that pre-fetches/computes results … However, we did
not find this to be the case."*

:class:`FrontendEngine` therefore wraps any backend engine and delays the
*visibility* of every result by a per-query rendering overhead drawn
uniformly from 1–2 s (seeded, deterministic). It adds no prefetching — by
design, matching the paper's finding.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.common.errors import EngineError
from repro.common.rng import derive_rng
from repro.engines.base import Engine, PreparationReport
from repro.engines.cost import FRONTEND_RENDER_OVERHEAD
from repro.query.model import AggQuery, QueryResult


class FrontendEngine:
    """System Y-like rendering layer over a backend :class:`Engine`.

    Implements the same driver-facing interface as :class:`Engine` by
    delegation; it is intentionally *not* an ``Engine`` subclass because it
    owns no scheduler or cost model of its own.
    """

    name = "system-y-sim"

    def __init__(
        self,
        backend: Engine,
        render_overhead: Tuple[float, float] = FRONTEND_RENDER_OVERHEAD,
    ):
        low, high = render_overhead
        if not 0 <= low <= high:
            raise EngineError(
                f"render overhead bounds must satisfy 0 <= low <= high, got "
                f"({low}, {high})"
            )
        self.backend = backend
        self.render_overhead = (float(low), float(high))
        self._overheads: Dict[int, float] = {}

    # -- delegated properties ------------------------------------------
    @property
    def capabilities(self):
        return self.backend.capabilities

    @property
    def dataset(self):
        return self.backend.dataset

    @property
    def settings(self):
        return self.backend.settings

    @property
    def clock(self):
        return self.backend.clock

    @property
    def actual_rows(self) -> int:
        return self.backend.actual_rows

    @property
    def scheduler(self):
        """The backend's scheduler (the frontend adds no execution of
        its own, so session grouping/policies apply to the backend)."""
        return self.backend.scheduler

    @property
    def is_prepared(self) -> bool:
        return self.backend.is_prepared

    @property
    def kernel_runs(self):
        """The backend's per-query incremental kernel runs, if it keeps any.

        The frontend adds no execution of its own, so compiled-kernel
        state (like scheduling) lives entirely in the backend; exposing it
        keeps introspection uniform across engine stand-ins.
        """
        return getattr(self.backend, "_kernel_runs", {})

    # -- lifecycle ---------------------------------------------------------
    def prepare(self) -> PreparationReport:
        report = self.backend.prepare()
        return PreparationReport(
            engine=self.name,
            virtual_rows=report.virtual_rows,
            seconds=report.seconds,
            components=report.components + (("frontend_connect", 0.0),),
        )

    def workflow_start(self) -> None:
        self.backend.workflow_start()

    def workflow_end(self) -> None:
        self.backend.workflow_end()

    def link_vizs(self, speculative_queries: Sequence[AggQuery]) -> None:
        # §5.6: no prefetch layer was found — the hint is dropped.
        return None

    def delete_vizs(self, queries: Sequence[AggQuery]) -> None:
        self.backend.delete_vizs(queries)

    # -- query path ----------------------------------------------------------
    def submit(self, query: AggQuery) -> int:
        handle = self.backend.submit(query)
        rng = derive_rng(self.settings.seed, self.name, "render", handle)
        low, high = self.render_overhead
        self._overheads[handle] = float(rng.uniform(low, high))
        return handle

    def advance_to(self, time: float) -> None:
        self.backend.advance_to(time)

    def result_at(self, handle: int, time: float) -> Optional[QueryResult]:
        overhead = self._overhead(handle)
        visible_time = time - overhead
        state = self.backend._get(handle)  # noqa: SLF001 — deliberate delegation
        if visible_time < state.submitted_at:
            return None
        return self.backend.result_at(handle, visible_time)

    def cancel(self, handle: int) -> None:
        self.backend.cancel(handle)

    def finished_at(self, handle: int) -> Optional[float]:
        finished = self.backend.finished_at(handle)
        if finished is None:
            return None
        return finished + self._overhead(handle)

    def completion_time(self, handle: int, deadline: float) -> float:
        finished = self.finished_at(handle)
        if finished is not None and finished <= deadline:
            return finished
        return deadline

    def qualifying_fraction(self, query: AggQuery) -> float:
        return self.backend.qualifying_fraction(query)

    def _overhead(self, handle: int) -> float:
        try:
            return self._overheads[handle]
        except KeyError:
            raise EngineError(
                f"unknown handle {handle} for engine {self.name!r}"
            ) from None
