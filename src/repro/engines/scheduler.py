"""Weighted processor-sharing scheduler for concurrent query execution.

§2.2: one interaction on a linked dashboard can trigger *multiple
concurrent queries*. On a real DBMS those queries contend for CPU and
memory bandwidth; the simulators model that contention with classic
(weighted) processor sharing: at any instant, each active task receives a
share of the engine's capacity proportional to its weight. A blocking
query that would take 2 s alone takes ~6 s when a 1:N interaction launches
it alongside two siblings — which is exactly why 1:N workflows hurt
blocking engines in Fig. 6d.

Each task records its cumulative *service* (seconds of exclusive capacity)
as a step-linear history, so engines can ask "how much work had task T
received at time t?" for any past t. That is what report-interval engines
(XDB) need to reconstruct the result that was available at a tick, and
what makes driver-side polling deterministic.

How capacity splits among active tasks is a pluggable
:class:`SchedulingPolicy`:

* :class:`WeightedSharingPolicy` (the default) is the classic scheme
  above — each task's rate is ``weight / total_weight``;
* :class:`FairSessionPolicy` adds a *group* tier for the session server
  (docs/server.md): capacity first splits across groups with active
  tasks (one group per simulated session, each claiming
  ``min(1, Σ weights)``), then by weight within a group — so one session
  issuing ten concurrent queries cannot starve a session issuing one,
  mirroring per-connection fair scheduling in a multi-user DBMS, while
  sessions with only near-zero-weight background work yield their share.

Tasks are tagged with a group at :meth:`add_task` time, either explicitly
or via :meth:`ProcessorSharingScheduler.set_group` (a scoped default the
session server sets before stepping each session, so engine code that
predates groups keeps working unchanged).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.clock import Clock, perf_seconds
from repro.common.errors import EngineError
from repro.obs.metrics import get_metrics
from repro.obs.profile import STAGE_SCHEDULER, get_profiler
from repro.obs.tracer import get_tracer


@dataclass
class _Task:
    task_id: int
    work_total: float  # seconds of exclusive service needed; inf = open-ended
    weight: float
    group: Optional[str] = None
    work_done: float = 0.0
    finished_at: Optional[float] = None
    cancelled: bool = False
    #: (time, cumulative work) breakpoints; service is linear in between.
    history: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return self.finished_at is None and not self.cancelled

    @property
    def remaining(self) -> float:
        return self.work_total - self.work_done

    def record(self, time: float) -> None:
        if not self.history or self.history[-1] != (time, self.work_done):
            self.history.append((time, self.work_done))

    def work_at(self, time: float) -> float:
        """Cumulative service received by ``time`` (linear interpolation)."""
        if not self.history or time <= self.history[0][0]:
            return 0.0
        if time >= self.history[-1][0]:
            return self.history[-1][1]
        # Binary search for the segment containing ``time``.
        low, high = 0, len(self.history) - 1
        while high - low > 1:
            mid = (low + high) // 2
            if self.history[mid][0] <= time:
                low = mid
            else:
                high = mid
        t0, w0 = self.history[low]
        t1, w1 = self.history[high]
        if t1 <= t0:
            return w1
        frac = (time - t0) / (t1 - t0)
        return w0 + frac * (w1 - w0)


class SchedulingPolicy:
    """Hook deciding how engine capacity splits among active tasks.

    ``rates`` receives the currently active tasks and returns each task's
    instantaneous share of capacity (the shares must sum to 1.0). The
    scheduler re-queries the policy whenever the active set changes, so a
    policy only ever reasons about one instant.
    """

    def rates(self, active: Sequence[_Task]) -> Dict[int, float]:
        raise NotImplementedError


class WeightedSharingPolicy(SchedulingPolicy):
    """Classic weighted processor sharing: rate ∝ task weight (§2.2).

    This is the historical (and default) behavior — groups are ignored.
    """

    def rates(self, active: Sequence[_Task]) -> Dict[int, float]:
        total_weight = sum(task.weight for task in active)
        return {task.task_id: task.weight / total_weight for task in active}


class FairSessionPolicy(SchedulingPolicy):
    """Two-tier fair sharing for multi-session engines (docs/server.md).

    Capacity splits across *groups* of active tasks first, by task weight
    within a group second. With a group per simulated session this is
    per-session fair scheduling: a 1:N dashboard interaction that launches
    ten concurrent queries slows only its own session's queries down,
    never another session's — the contention the paper studies in §2.2
    stays confined to the session that caused it.

    A group's claim is ``min(1, Σ member weights)``: every session with
    ordinary foreground work (weight ≥ 1) claims one equal share no
    matter how many concurrent queries it runs — but a session whose only
    active tasks are near-zero-weight background work (the progressive
    engine parks paused speculation at weight 1e-4) claims almost
    nothing, preserving the engines' yield-to-foreground mechanics
    instead of granting an idle session a full share for its background
    noise.

    Tasks without a group (``None``) form one shared group.
    """

    def rates(self, active: Sequence[_Task]) -> Dict[int, float]:
        groups: Dict[Optional[str], List[_Task]] = {}
        for task in active:
            groups.setdefault(task.group, []).append(task)
        claims = {
            group: min(1.0, sum(task.weight for task in members))
            for group, members in groups.items()
        }
        total_claim = sum(claims.values())
        rates: Dict[int, float] = {}
        for group, members in groups.items():
            group_share = claims[group] / total_claim
            group_weight = sum(task.weight for task in members)
            for task in members:
                rates[task.task_id] = group_share * task.weight / group_weight
        return rates


class ProcessorSharingScheduler:
    """Simulates an engine's capacity shared among concurrent tasks.

    The scheduler is driven by :meth:`advance_to`; between calls no state
    changes. Total capacity is 1.0 service-second per second; an exclusive
    task therefore completes ``work_total`` after exactly ``work_total``
    seconds. How the capacity splits among concurrent tasks is delegated
    to ``policy`` (default: :class:`WeightedSharingPolicy`).
    """

    def __init__(self, clock: Clock, policy: Optional[SchedulingPolicy] = None):
        self._clock = clock
        self._tasks: Dict[int, _Task] = {}
        # Active-set index: the settle loop, group sweeps, and policy
        # arbitration touch only tasks still consuming capacity, so one
        # step costs O(active tasks) no matter how many tasks the engine
        # has completed over its lifetime (the 100k-session frontier).
        # Insertion order equals task-id order, exactly like filtering
        # ``_tasks`` did, so arbitration sees tasks in the same order.
        self._active: Dict[int, _Task] = {}
        self._next_id = 0
        self._last_advance = clock.now()
        self._policy = policy if policy is not None else WeightedSharingPolicy()
        self._current_group: Optional[str] = None

    # ------------------------------------------------------------------
    # Policy and group hooks (session server)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> SchedulingPolicy:
        """The active capacity-sharing policy."""
        return self._policy

    def set_policy(self, policy: SchedulingPolicy) -> None:
        """Install a policy; only allowed before any task exists.

        Swapping mid-run would retroactively change settled service
        histories' meaning, so the scheduler refuses once tasks exist.
        """
        if self._tasks:
            raise EngineError("cannot change scheduling policy once tasks exist")
        self._policy = policy

    def set_group(self, group: Optional[str]) -> None:
        """Set the default group tag for subsequently added tasks.

        The session server calls this with the session id before stepping
        each session, so every task an engine creates on the session's
        behalf lands in that session's group without the engine knowing
        about sessions at all.
        """
        self._current_group = group

    def task_group(self, task_id: int) -> Optional[str]:
        """The group a task was tagged with at creation."""
        return self._get(task_id).group

    def cancel_group(self, group: Optional[str]) -> int:
        """Cancel every still-active task tagged with ``group``.

        The session server calls this when a session departs mid-run
        from a *shared* engine — open-system churn, a remote frontend
        disconnecting while it holds the turn, or a turn timeout:
        whatever the departed session still had running — foreground
        queries the driver did not get to cancel, parked speculation —
        must stop consuming capacity, or ghost load from churned-out
        users would skew every remaining session. If the cancelled group
        is also the scheduler's *current default* group (the departing
        session held the step turn when it died), the default is reset
        to ``None`` so no later task can be tagged into a dead group.
        Returns the number of tasks cancelled.
        """
        now = self._clock.now()
        self._settle(now)
        cancelled = 0
        for task in list(self._active.values()):
            if task.group == group:
                task.cancelled = True
                task.record(now)
                del self._active[task.task_id]
                cancelled += 1
        if group is not None and self._current_group == group:
            self._current_group = None
        return cancelled

    def active_groups(self) -> List[Optional[str]]:
        """Groups that still own at least one active task, sorted.

        ``None`` (the ungrouped pool) sorts last. The session server's
        tests use this to assert a departed session's group was swept
        clean; it is also a useful live diagnostic of who is consuming
        capacity on a shared engine.
        """
        groups = {task.group for task in self._active.values()}
        return sorted(groups, key=lambda g: (g is None, g or ""))

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------
    def add_task(
        self,
        work_total: float,
        weight: float = 1.0,
        group: Optional[str] = None,
    ) -> int:
        """Register a task at the current time; returns its id.

        ``work_total`` may be ``math.inf`` for open-ended (speculative)
        tasks that run until cancelled. ``group`` defaults to the scoped
        group set via :meth:`set_group` (None outside the session server).
        """
        if work_total < 0:
            raise EngineError(f"work_total must be >= 0, got {work_total}")
        if weight <= 0:
            raise EngineError(f"weight must be positive, got {weight}")
        now = self._clock.now()
        self._settle(now)
        task = _Task(
            task_id=self._next_id,
            work_total=work_total,
            weight=weight,
            group=group if group is not None else self._current_group,
        )
        task.record(now)
        if work_total == 0.0:
            task.finished_at = now
        self._tasks[task.task_id] = task
        if task.active:
            self._active[task.task_id] = task
        self._next_id += 1
        return task.task_id

    def cancel(self, task_id: int) -> None:
        """Cancel a task (no-op if already finished)."""
        task = self._get(task_id)
        now = self._clock.now()
        self._settle(now)
        if task.active:
            task.cancelled = True
            task.record(now)
            del self._active[task.task_id]

    def set_weight(self, task_id: int, weight: float) -> None:
        """Change a task's weight (e.g. promote a speculative task)."""
        if weight <= 0:
            raise EngineError(f"weight must be positive, got {weight}")
        self._settle(self._clock.now())
        self._get(task_id).weight = weight

    def credit_work(self, task_id: int, amount: float) -> None:
        """Grant ``amount`` of pre-done service (result reuse).

        The credit is applied instantaneously at the current time; if it
        completes the task, the task finishes now.
        """
        if amount < 0:
            raise EngineError(f"credit must be >= 0, got {amount}")
        now = self._clock.now()
        self._settle(now)
        task = self._get(task_id)
        if not task.active:
            return
        task.work_done = min(task.work_total, task.work_done + amount)
        if task.remaining <= 1e-12:
            task.finished_at = now
            self._active.pop(task_id, None)
        task.record(now)

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------
    def advance_to(self, time: float) -> None:
        """Distribute service up to ``time`` (clock must already be there).

        Engines call this after the driver advanced the shared clock; it
        is idempotent for the same target time.
        """
        self._settle(time)

    def _settle(self, until: float) -> None:
        if until < self._last_advance - 1e-9:
            raise EngineError(
                f"cannot settle scheduler backwards: {until} < {self._last_advance}"
            )
        profiler = get_profiler()
        started = perf_seconds() if profiler.enabled else 0.0
        policy_queries = 0
        now = self._last_advance
        remaining_dt = until - now
        while remaining_dt > 1e-12:
            active = list(self._active.values())
            if not active:
                break
            rates = self._policy.rates(active)
            policy_queries += 1
            # Time until the earliest finite task finishes at current rates.
            earliest: Optional[float] = None
            for task in active:
                if math.isinf(task.work_total):
                    continue
                rate = rates[task.task_id]
                eta = task.remaining / rate if rate > 0 else math.inf
                if earliest is None or eta < earliest:
                    earliest = eta
            step = remaining_dt if earliest is None else min(remaining_dt, earliest)
            for task in active:
                task.work_done = min(
                    task.work_total, task.work_done + step * rates[task.task_id]
                )
            now += step
            remaining_dt -= step
            for task in active:
                if not math.isinf(task.work_total) and task.remaining <= 1e-9:
                    task.finished_at = now
                    task.record(now)
                    del self._active[task.task_id]
        for task in self._active.values():
            task.record(until)
        self._last_advance = until
        if profiler.enabled:
            # Arbitration cost: the settle loop re-queries the policy on
            # every active-set change — the 100k-session frontier's hot
            # spot (ROADMAP), so its wall time is attributed explicitly.
            profiler.add(STAGE_SCHEDULER, perf_seconds() - started)
            if policy_queries:
                get_metrics().counter(
                    "repro_scheduler_policy_queries_total",
                    help="Policy rate() arbitrations inside settle loops.",
                ).inc(policy_queries)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "scheduler.settle", until, policy_queries=policy_queries
                    )

    # ------------------------------------------------------------------
    # Queries
    @property
    def settled_until(self) -> float:
        """Latest time the scheduler state is valid for (see work_at)."""
        return self._last_advance

    # ------------------------------------------------------------------
    def work_done(self, task_id: int) -> float:
        """Cumulative service received so far."""
        return self._get(task_id).work_done

    def work_at(self, task_id: int, time: float) -> float:
        """Cumulative service the task had received at past time ``time``."""
        task = self._get(task_id)
        if time > self._last_advance + 1e-9:
            raise EngineError(
                f"cannot query work at future time {time} "
                f"(settled up to {self._last_advance})"
            )
        return task.work_at(time)

    def finished_at(self, task_id: int) -> Optional[float]:
        """Completion time, or None while running/cancelled."""
        return self._get(task_id).finished_at

    def is_cancelled(self, task_id: int) -> bool:
        return self._get(task_id).cancelled

    def active_tasks(self) -> List[int]:
        """Ids of tasks still consuming capacity."""
        return list(self._active)

    def release_task(self, task_id: int) -> None:
        """Forget a *settled* (finished or cancelled) task entirely.

        Long-lived shared engines accumulate one :class:`_Task` — service
        history included — per query ever submitted; a population-scale
        serving run must shed them or memory grows with *total* sessions,
        not active ones. Releasing is the caller's promise that nobody
        will query this task again (``work_at``, ``finished_at``); the
        session server makes that promise only when the owning session
        has fully retired. Releasing an unknown id is a no-op (the task
        may have been released already); releasing an active task is an
        error — its service history is still being written.
        """
        task = self._tasks.get(task_id)
        if task is None:
            return
        if task.active:
            raise EngineError(f"cannot release active task {task_id}")
        del self._tasks[task_id]

    def _get(self, task_id: int) -> _Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise EngineError(f"unknown task id {task_id}") from None
