"""Blocking analytical column store — the MonetDB stand-in.

Execution model (§5: "a blocking query execution model that requires users
to wait until an exact query result is computed. Thus, upon initiating a
query, the run-time of the query is unknown"):

* every query runs to completion as a full scan (plus hash joins on the
  star schema) and returns an **exact** answer;
* no intermediate results exist — before completion, ``result_at`` is
  None, so any TR shorter than the query's run time is violated and the
  proportion of missing bins for that query is 100 %;
* concurrent queries share capacity (processor sharing), which is what
  hurts this engine on 1:N workflows (Fig. 6d).

Answers are computed lazily at the first successful poll: queries that are
cancelled before completion (the common case at tight TRs) never pay the
evaluation cost.
"""

from __future__ import annotations

from typing import Optional

from repro.engines.base import Engine, EngineCapabilities, _HandleState
from repro.engines.cost import (
    COLUMNSTORE_COST,
    COLUMNSTORE_PREP,
    EngineCostModel,
    PreparationModel,
)
from repro.query.groundtruth import evaluate_exact
from repro.query.model import QueryResult


class ColumnStoreEngine(Engine):
    """MonetDB-like blocking, exact execution."""

    name = "monetdb-sim"
    capabilities = EngineCapabilities(
        supports_joins=True, progressive=False, returns_margins=False
    )

    def _default_cost(self) -> EngineCostModel:
        return COLUMNSTORE_COST

    def _default_prep(self) -> PreparationModel:
        return COLUMNSTORE_PREP

    def _do_submit(self, state: _HandleState) -> None:
        demand = self.cost_model.blocking_service_demand(
            query=state.query,
            dataset=self.dataset,
            virtual_rows=self.settings.virtual_rows,
            scale=self.settings.scale,
            qualifying_fraction=self.qualifying_fraction(state.query),
        )
        state.task_id = self.scheduler.add_task(demand)

    def _result_at(self, state: _HandleState, time: float) -> Optional[QueryResult]:
        finished = self.scheduler.finished_at(state.task_id)
        if finished is None or finished > time + 1e-12:
            return None
        if "result" not in state.extra:
            state.extra["result"] = evaluate_exact(self.dataset, state.query)
        return state.extra["result"]
