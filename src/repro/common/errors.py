"""Exception hierarchy for the IDEBench reproduction (§4.4's components).

Every error raised by this package derives from :class:`BenchmarkError`, so
callers embedding the benchmark can catch one type. Subclasses separate the
major components (configuration, data generation, workflow handling, query
processing, engine simulation, SQL parsing) because the benchmark driver
reacts differently to each: configuration and workflow errors abort a run,
while query errors are recorded as failed queries in the detailed report.
"""


class BenchmarkError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(BenchmarkError):
    """A benchmark setting or JSON configuration value is invalid."""


class DataGenerationError(BenchmarkError):
    """The data generator could not scale or normalize the seed dataset."""


class WorkflowError(BenchmarkError):
    """A workflow specification is malformed or an interaction is invalid.

    Examples: referencing an unknown visualization, linking a visualization
    to itself, or creating a cycle in the link graph (the paper models
    dashboards as dependency *DAGs*, see §2.2).
    """


class QueryError(BenchmarkError):
    """A query specification cannot be evaluated against the dataset."""


class EngineError(BenchmarkError):
    """An engine simulator was driven incorrectly.

    Raised e.g. when polling a handle that was never submitted, advancing a
    virtual clock backwards, or submitting queries before :meth:`prepare`.
    """


class SQLParseError(QueryError):
    """The SQL round-trip parser rejected a statement."""


class ProtocolError(BenchmarkError):
    """A network frame or message violates the wire protocol.

    Raised for malformed frames (bad length prefix, oversized body,
    invalid JSON), unknown or missing message types, version mismatches,
    and messages arriving in an illegal state (e.g. an INTERACT before
    ATTACH). The TCP server answers with an ERROR frame and closes the
    connection; clients surface the message to the caller.
    """
