"""Deterministic random-stream derivation.

Reproducibility is a headline requirement of IDEBench (§1: "standardized,
automated, and re-producible"). Everything stochastic in this package —
seed-data synthesis, copula scaling, Markov workflow sampling, engine
sample shuffles — draws from a :class:`numpy.random.Generator` derived
from a root seed plus a *purpose string*, so that

* two runs with the same root seed are bit-identical, and
* adding a new consumer of randomness never perturbs existing streams
  (each purpose hashes to an independent child seed).
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *purpose: object) -> int:
    """Derive a stable 64-bit child seed from ``root_seed`` and a purpose.

    The purpose components are stringified and hashed with SHA-256 together
    with the root seed, so any hashable/printable discriminators (names,
    indices, workflow ids) can be mixed in::

        seed = derive_seed(42, "workflow", "mixed", 3)
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed) & _MASK64).encode("utf-8"))
    for part in purpose:
        hasher.update(b"\x1f")
        hasher.update(str(part).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little")


def derive_rng(root_seed: int, *purpose: object) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for a purpose."""
    return np.random.default_rng(derive_seed(root_seed, *purpose))


def derive_cell_seed(root_seed: int, cell_fingerprint: str) -> int:
    """Seed for one run-matrix cell, derived from its content fingerprint.

    The parallel runtime executes experiment cells in arbitrary order
    across worker processes; seeding each cell from its own fingerprint
    (rather than from a submission counter) is what makes parallel output
    bit-identical to serial — the stream a cell draws from depends only on
    *what* the cell is, never on *when* or *where* it runs.
    """
    return derive_seed(root_seed, "runtime-cell", cell_fingerprint)


def derive_session_seed(root_seed: int, session_index: int) -> int:
    """Seed for one simulated IDE session of the session server.

    Every session the server multiplexes gets its own seed, derived from
    the run's root seed plus the session's index via the
    ``("server-session", index)`` purpose string. Session *i*'s workflow
    suite is therefore a pure function of ``(root_seed, i)`` — invariant
    to how many sessions run alongside it, to stepping interleave, and to
    wall-clock pacing — which is what lets the same suite be re-run
    through the serial driver and compared byte-for-byte
    (docs/server.md's determinism guarantee).
    """
    return derive_seed(root_seed, "server-session", session_index)
