"""Small structured logger for diagnostic (non-report) output.

Benchmark *results* (§4.8 reporting) go to stdout / result files and are byte-pinned;
everything else — progress notes, retry warnings, drain timeouts — used
to be ad-hoc ``print(..., file=sys.stderr)`` calls scattered through the
REPL, the network bench and the executor. They now go through here, so
diagnostic output is uniform (``repro[name] LEVEL: message key=value``),
filterable, and silenceable in CI.

Level selection, most specific wins:

1. ``configure(level=...)`` — what the CLI's ``--log-level`` flag calls;
2. the ``REPRO_LOG`` environment variable (``debug``/``info``/
   ``warning``/``error``/``silent``);
3. the default, ``warning`` — quiet unless something is wrong.

``get_logger(name)`` returns a tiny wrapper whose methods accept
``**fields`` rendered as stable ``key=value`` pairs (sorted), keeping
messages grep-friendly without a formatting dependency.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

from repro.common.errors import ConfigurationError

#: Accepted level names (``silent`` suppresses everything).
LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "silent": logging.CRITICAL + 10,
}

_ROOT_NAME = "repro"
_configured = False


def _default_level() -> str:
    return os.environ.get("REPRO_LOG", "warning").strip().lower() or "warning"


def parse_level(name: str) -> int:
    key = name.strip().lower()
    if key not in LEVELS:
        raise ConfigurationError(
            f"unknown log level {name!r} (choose from {', '.join(sorted(LEVELS))})"
        )
    return LEVELS[key]


class _Formatter(logging.Formatter):
    """Renders ``repro[net.bench]`` instead of ``repro[repro.net.bench]``."""

    def format(self, record: logging.LogRecord) -> str:
        name = record.name
        prefix = _ROOT_NAME + "."
        record.shortname = name[len(prefix):] if name.startswith(prefix) else name
        return super().format(record)


def configure(level: Optional[str] = None, stream=None) -> None:
    """(Re)configure the shared stderr handler and threshold.

    Idempotent; later calls adjust the level/stream of the existing
    handler rather than stacking new ones.
    """
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    root.propagate = False
    if not _configured or not root.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            _Formatter("repro[%(shortname)s] %(levelname)s: %(message)s")
        )
        root.handlers = [handler]
        _configured = True
    elif stream is not None:
        root.handlers[0].setStream(stream)
    root.setLevel(parse_level(level) if level else parse_level(_default_level()))


class Logger:
    """Thin wrapper adding ``key=value`` structured fields to stdlib logging."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @staticmethod
    def _render(message: str, fields: dict) -> str:
        if not fields:
            return message
        pairs = " ".join(f"{key}={fields[key]!r}" for key in sorted(fields))
        return f"{message} {pairs}"

    def debug(self, message: str, **fields) -> None:
        self._logger.debug(self._render(message, fields))

    def info(self, message: str, **fields) -> None:
        self._logger.info(self._render(message, fields))

    def warning(self, message: str, **fields) -> None:
        self._logger.warning(self._render(message, fields))

    def error(self, message: str, **fields) -> None:
        self._logger.error(self._render(message, fields))

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)


def get_logger(name: str) -> Logger:
    """A namespaced logger; configures the shared handler on first use.

    ``name`` is relative to the ``repro`` root: ``get_logger("net.bench")``
    logs as ``repro[net.bench]``.
    """
    if not _configured:
        configure()
    short = name[len(_ROOT_NAME) + 1:] if name.startswith(_ROOT_NAME + ".") else name
    return Logger(logging.getLogger(f"{_ROOT_NAME}.{short}"))
