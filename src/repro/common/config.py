"""Benchmark settings (paper §4.6) and default configurations (§5.1).

The paper parameterizes a benchmark run by five settings:

==================  =========================================================
Time Requirement    maximum execution duration for a query (queries past the
(TR)                TR are cancelled; violation is recorded as a boolean)
Dataset and Size    which dataset, and how many tuples to scale it to
Think Time          delay between two consecutive user interactions
Using Joins         normalized (star schema) vs. de-normalized execution
Confidence Level    level at which AQP engines report margins of error
==================  =========================================================

:class:`BenchmarkSettings` is the in-memory form of those settings plus the
reproduction-specific knobs documented in DESIGN.md §1.3 (the
virtual-to-actual ``scale`` factor and the root random seed). Settings can
be round-tripped through JSON, matching the original IDEBench driver's
configuration files.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from enum import Enum
from pathlib import Path
from typing import Union

from repro.common.errors import ConfigurationError

#: TRs used throughout the paper's evaluation (§5.1): 0.5s, 1s, 3s, 5s, 10s.
DEFAULT_TIME_REQUIREMENTS = (0.5, 1.0, 3.0, 5.0, 10.0)

#: Think times used in Exp. 3 (§5.4): one to ten seconds.
DEFAULT_THINK_TIMES = tuple(float(t) for t in range(1, 11))

#: Confidence level at which AQP engines report margins of error (§4.6).
DEFAULT_CONFIDENCE_LEVEL = 0.95


class DataSize(Enum):
    """The three default dataset sizes of §5.1, in *virtual* tuple counts.

    The paper uses S=100 million, M=500 million and L=1 billion tuples in
    de-normalized form. The reproduction keeps these virtual sizes and maps
    them to actual row counts through ``BenchmarkSettings.scale``.
    """

    S = 100_000_000
    M = 500_000_000
    L = 1_000_000_000

    @property
    def virtual_rows(self) -> int:
        """Number of tuples this size denotes in the paper's terms."""
        return self.value

    @classmethod
    def parse(cls, text: Union[str, int, "DataSize"]) -> "DataSize":
        """Parse ``"S"``/``"M"``/``"L"`` / ``"500m"`` / row counts."""
        if isinstance(text, DataSize):
            return text
        if isinstance(text, int):
            for size in cls:
                if size.value == text:
                    return size
            raise ConfigurationError(f"no named data size has {text} rows")
        label = str(text).strip().upper()
        if label in cls.__members__:
            return cls[label]
        normalized = label.replace("_", "").replace(",", "")
        suffixes = {"M": 1_000_000, "B": 1_000_000_000}
        if normalized and normalized[-1] in suffixes and normalized[:-1].isdigit():
            return cls.parse(int(normalized[:-1]) * suffixes[normalized[-1]])
        raise ConfigurationError(f"cannot parse data size {text!r}")


@dataclass(frozen=True)
class BenchmarkSettings:
    """All knobs of a benchmark run; immutable so runs cannot drift.

    Use :meth:`with_` (a thin wrapper over :func:`dataclasses.replace`) to
    derive variations for parameter sweeps::

        base = BenchmarkSettings()
        for tr in DEFAULT_TIME_REQUIREMENTS:
            run(base.with_(time_requirement=tr))
    """

    #: Maximum execution duration for a query, seconds (§4.6).
    time_requirement: float = 3.0
    #: Dataset identifier; the default configuration uses the flights data.
    dataset: str = "flights"
    #: Virtual dataset size (S/M/L of §5.1).
    data_size: DataSize = DataSize.M
    #: Delay between two consecutive interactions, seconds.
    think_time: float = 1.0
    #: Whether engines run on the normalized star schema (True) or the
    #: de-normalized single table (False).
    use_joins: bool = False
    #: Confidence level for AQP margins of error.
    confidence_level: float = DEFAULT_CONFIDENCE_LEVEL
    #: Virtual-rows-per-actual-row factor (DESIGN.md §1.3). 1000 means the
    #: M=500M configuration is executed over 500k actual rows with engine
    #: throughputs scaled down by the same factor.
    scale: int = 1000
    #: Root seed from which all random streams are derived.
    seed: int = 42
    #: Interval at which report-interval engines (XDB) publish results, s.
    report_interval: float = 0.25
    #: Number of workflows per workflow type in the default configuration.
    workflows_per_type: int = 10

    def __post_init__(self):
        if self.time_requirement <= 0:
            raise ConfigurationError(
                f"time requirement must be positive, got {self.time_requirement!r}"
            )
        if self.think_time < 0:
            raise ConfigurationError(
                f"think time must be non-negative, got {self.think_time!r}"
            )
        if not 0.5 <= self.confidence_level < 1.0:
            raise ConfigurationError(
                f"confidence level must be in [0.5, 1), got {self.confidence_level!r}"
            )
        if self.scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {self.scale!r}")
        if self.report_interval <= 0:
            raise ConfigurationError(
                f"report interval must be positive, got {self.report_interval!r}"
            )
        if self.workflows_per_type < 1:
            raise ConfigurationError(
                f"workflows per type must be >= 1, got {self.workflows_per_type!r}"
            )

    @property
    def actual_rows(self) -> int:
        """Actual (materialized) row count for the configured data size."""
        return max(1, self.data_size.virtual_rows // self.scale)

    @property
    def virtual_rows(self) -> int:
        """Virtual row count the engines believe they are processing."""
        return self.data_size.virtual_rows

    def with_(self, **changes) -> "BenchmarkSettings":
        """Return a copy with ``changes`` applied (validates again)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dictionary."""
        data = asdict(self)
        data["data_size"] = self.data_size.name
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BenchmarkSettings":
        """Inverse of :meth:`to_dict`; unknown keys are rejected loudly."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown benchmark settings: {sorted(unknown)}"
            )
        payload = dict(data)
        if "data_size" in payload:
            payload["data_size"] = DataSize.parse(payload["data_size"])
        return cls(**payload)

    def to_json(self, path: Union[str, Path]) -> None:
        """Write the settings to ``path`` as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "BenchmarkSettings":
        """Load settings previously written with :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
