"""Canonical fingerprints for cache keys (§1's reproducibility, on disk).

Python's built-in ``hash()`` is salted per process (``PYTHONHASHSEED``),
so it can never key an on-disk cache or compare cells across worker
processes. This module provides the stable alternative every cache in the
package uses:

* :func:`canonicalize` — reduce a value (settings, queries, specs, plain
  containers) to a canonical JSON-compatible structure;
* :func:`canonical_json` — its deterministic serialization (sorted keys,
  no whitespace);
* :func:`fmt_cell` — the fixed-format float-to-CSV-cell renderer every
  deterministic report shares (one definition, so "stable CSV bytes"
  means the same thing everywhere);
* :func:`stable_digest` — a SHA-256 hex digest of that serialization,
  identical across processes, machines and Python invocations.

Objects participate by exposing ``to_dict()`` (the package-wide JSON
convention: :class:`~repro.common.config.BenchmarkSettings`,
:class:`~repro.query.model.AggQuery`, filters, workflows, run specs all
have one), so a fingerprint covers exactly what the object would persist.
"""

from __future__ import annotations

import hashlib
import json
import math
from enum import Enum

#: Bump when the canonical representation of cached artifacts changes in a
#: way that would make previously stored entries unsafe to reuse.
CACHE_SCHEMA_VERSION = 1

#: Length of the short digests used in file names and cell ids.
DIGEST_LENGTH = 16


def canonicalize(value):
    """Reduce ``value`` to a canonical JSON-compatible structure.

    Supported inputs: ``None``, bools, ints, floats, strings, enums,
    lists/tuples, sets/frozensets (sorted by their canonical serialization)
    and dicts (keys coerced to strings), plus any object exposing a
    ``to_dict()`` method. Anything else raises ``TypeError`` loudly —
    silent fallbacks (e.g. ``repr``) would make digests depend on memory
    addresses.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # json round-trips floats through repr (shortest form) — stable
        # across platforms for IEEE-754 doubles.
        return value
    if isinstance(value, Enum):
        return [type(value).__name__, value.name]
    if isinstance(value, dict):
        return {str(key): canonicalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (canonicalize(item) for item in value),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return [type(value).__name__, canonicalize(to_dict())]
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting; "
        "give it a to_dict() or pass plain JSON-compatible data"
    )


def canonical_json(value) -> str:
    """Deterministic JSON serialization of :func:`canonicalize`'s output."""
    return json.dumps(
        canonicalize(value), sort_keys=True, separators=(",", ":")
    )


def stable_digest(value, length: int = DIGEST_LENGTH) -> str:
    """Stable SHA-256 hex digest of ``value`` (first ``length`` chars).

    ``length=None`` returns the full 64-character digest. Two values with
    equal canonical forms digest identically in every process — the
    property on-disk caches and cross-worker cache keys rely on.
    """
    digest = hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
    return digest if length is None else digest[:length]


def fmt_cell(value) -> str:
    """Render a float for a deterministic CSV cell (NaN/None → empty).

    Shared by every report module that promises byte-stable CSVs
    (:mod:`repro.runtime.report`, :mod:`repro.server.report`,
    :mod:`repro.bench.report`): six fixed decimals, locale-independent.

    This function is **the** serialization boundary for non-finite
    values, and it canonicalizes them to exactly one token each so the
    byte-wise snapshot diffs of :mod:`repro.runtime.regression` can
    never report a false regression from formatting drift:

    * ``None`` and *any* NaN → the empty cell ``""`` — including NaN
      carried by a non-``float`` numeric type such as ``numpy.float32``,
      which ``isinstance(value, float)`` checks miss and a bare
      ``f"{value:.6f}"`` would have leaked as a platform-spelled
      ``"nan"``/``"-nan"`` token;
    * ``±inf`` → ``"inf"`` / ``"-inf"`` (never the locale/format
      dependent spellings ``Infinity``, ``1.#INF``, …).
    """
    if value is None:
        return ""
    number = float(value)
    if math.isnan(number):
        return ""
    if math.isinf(number):
        return "inf" if number > 0 else "-inf"
    return f"{number:.6f}"
