"""Shared infrastructure: errors, clocks, RNG helpers and benchmark settings.

This subpackage holds everything that more than one part of the benchmark
depends on but that is not itself part of the paper's conceptual model:

* :mod:`repro.common.errors` — the exception hierarchy.
* :mod:`repro.common.clock` — virtual and wall clocks; the virtual clock is
  what makes benchmark runs deterministic and laptop-scale (see DESIGN.md).
* :mod:`repro.common.rng` — seed-derivation utilities so that every
  component draws from an independent, reproducible stream.
* :mod:`repro.common.config` — the benchmark settings of paper §4.6.
* :mod:`repro.common.fingerprint` — canonical JSON and stable digests for
  process-portable cache keys (the parallel runtime's foundation).
"""

from repro.common.clock import Clock, VirtualClock, WallClock
from repro.common.config import BenchmarkSettings, DataSize, DEFAULT_TIME_REQUIREMENTS
from repro.common.errors import (
    BenchmarkError,
    ConfigurationError,
    DataGenerationError,
    EngineError,
    QueryError,
    SQLParseError,
    WorkflowError,
)
from repro.common.fingerprint import canonical_json, canonicalize, stable_digest
from repro.common.rng import (
    derive_cell_seed,
    derive_rng,
    derive_seed,
    derive_session_seed,
)

__all__ = [
    "BenchmarkError",
    "BenchmarkSettings",
    "Clock",
    "ConfigurationError",
    "DataGenerationError",
    "DataSize",
    "DEFAULT_TIME_REQUIREMENTS",
    "EngineError",
    "QueryError",
    "SQLParseError",
    "VirtualClock",
    "WallClock",
    "WorkflowError",
    "canonical_json",
    "canonicalize",
    "derive_cell_seed",
    "derive_rng",
    "derive_seed",
    "derive_session_seed",
    "stable_digest",
]
