"""Clock abstraction: virtual (simulated) and wall-clock time sources.

The paper runs its benchmark against live database systems and measures
wall-clock latencies. This reproduction replaces the live systems with
engine simulators (see DESIGN.md §1.2), and those simulators account for
time through a :class:`Clock`:

* :class:`VirtualClock` — a simulated clock that only moves when the
  benchmark driver advances it. All default benchmark runs use it, which
  makes results deterministic, hardware-independent, and lets the paper's
  100M–1B-row configurations finish in seconds.
* :class:`WallClock` — real (monotonic) time, used by smoke tests that
  exercise the same code paths under genuine timing.

Both expose ``now()`` (seconds, float) and ``advance(dt)``; for the wall
clock ``advance`` sleeps, mirroring the think-time delays a real user
introduces between interactions (§4.6).

This module is also the single place the codebase reads *measurement*
wall time from: :func:`perf_seconds` wraps :func:`time.perf_counter`
behind a swappable source, so every profiling/elapsed-time stamp
(CLI timings, executor cell walls, server ``wall_seconds``, network
bench walls, the :mod:`repro.obs` profiler) is monotonic and mockable
in tests via :func:`set_perf_source`.
"""

from __future__ import annotations

import time

from repro.common.errors import EngineError

_perf_source = time.perf_counter


def perf_seconds() -> float:
    """Monotonic wall-clock timestamp (seconds) for elapsed-time math.

    Use this instead of calling :func:`time.perf_counter` or
    :func:`time.time` directly: differences are guaranteed monotonic, and
    tests can substitute a deterministic source with
    :func:`set_perf_source`. Absolute values are meaningless; only
    differences are.
    """
    return _perf_source()


def set_perf_source(source) -> "object":
    """Swap the wall-time source behind :func:`perf_seconds`.

    Returns the previous source so tests can restore it. Pass a callable
    returning float seconds (e.g. an incrementing fake for deterministic
    profiling tests).
    """
    global _perf_source
    previous = _perf_source
    _perf_source = source
    return previous


class Clock:
    """Interface for time sources used by the driver and the engines."""

    def now(self) -> float:
        """Return the current time in seconds."""
        raise NotImplementedError

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds (sleep, for a wall clock)."""
        raise NotImplementedError

    @property
    def is_virtual(self) -> bool:
        """Whether this clock is simulated (and thus deterministic)."""
        raise NotImplementedError


class VirtualClock(Clock):
    """A deterministic, manually advanced clock.

    The benchmark driver is a discrete-event simulation on top of this
    clock: interactions, query deadlines and think times are all events
    that advance it. Engines never sleep; they translate elapsed virtual
    time into an amount of work done via their cost model.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise EngineError(f"virtual clock cannot start at negative time {start!r}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise EngineError(f"cannot advance clock by negative dt {dt!r}")
        self._now += dt

    def advance_to(self, t: float) -> None:
        """Move the clock to absolute time ``t`` (must not be in the past)."""
        if t < self._now - 1e-9:
            raise EngineError(
                f"cannot move virtual clock backwards from {self._now} to {t}"
            )
        self._now = max(self._now, float(t))

    @property
    def is_virtual(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class WallClock(Clock):
    """Real time, based on :func:`time.monotonic`.

    ``advance`` sleeps, so a driver running on a wall clock really does
    wait out think times and time requirements, exactly like the original
    IDEBench command-line driver.
    """

    def __init__(self):
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise EngineError(f"cannot advance clock by negative dt {dt!r}")
        if dt > 0:
            time.sleep(dt)

    @property
    def is_virtual(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"WallClock(now={self.now():.6f})"
