"""Trace sinks: bounded ring buffer, JSONL files, and CSV summaries.

The tracer (:mod:`repro.obs.tracer`, over the §4.4 timeline) produces a
stream of entry dicts.
This module holds the places such a stream can go:

* :class:`RingBuffer` — a bounded in-memory buffer that keeps the most
  recent ``capacity`` entries and counts what it dropped, so always-on
  tracing in a long-lived server cannot grow without bound;
* :func:`write_jsonl` / :func:`iter_jsonl` — the on-disk interchange
  format (one canonical-JSON object per line, ``--trace`` output);
* :func:`summarize` / :func:`csv_summary` — the deterministic per-span
  aggregation behind ``repro trace summary``: it reads *virtual-time
  fields only*, so two runs of the same seed summarize byte-identically
  (the two-axis contract, docs/observability.md).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.common.errors import BenchmarkError
from repro.common.fingerprint import canonical_json


class RingBuffer:
    """Keep the newest ``capacity`` entries; count evictions.

    A plain list with a moving start index — O(1) amortized append, and
    iteration yields entries oldest-first without re-sorting.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise BenchmarkError(f"ring buffer capacity must be positive, got {capacity!r}")
        self.capacity = int(capacity)
        self.dropped = 0
        self._entries: List[dict] = []
        self._start = 0

    def append(self, entry: dict) -> None:
        if len(self._entries) - self._start >= self.capacity:
            self._entries[self._start] = None  # release the reference
            self._start += 1
            self.dropped += 1
            # Compact occasionally so the backing list stays bounded.
            if self._start >= self.capacity:
                self._entries = self._entries[self._start:]
                self._start = 0
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries) - self._start

    def __iter__(self) -> Iterator[dict]:
        return iter(self._entries[self._start:])

    def clear(self) -> None:
        self._entries = []
        self._start = 0
        self.dropped = 0


#: Keys carrying wall-clock measurements. Everything else in an entry is
#: derived from virtual time / deterministic run state and may be pinned.
WALL_KEYS = ("wall",)


def virtual_view(entry: dict) -> dict:
    """The golden-pinnable projection of a trace entry (no wall fields)."""
    # repro: allow[DET003] -- order-preserving projection: every serialization of the result (entry_line -> canonical_json) sorts keys, so entry insertion order never reaches bytes
    return {k: v for k, v in entry.items() if k not in WALL_KEYS}


def entry_line(entry: dict, virtual_only: bool = False) -> str:
    """One canonical-JSON line for an entry (sorted keys, minimal seps)."""
    return canonical_json(virtual_view(entry) if virtual_only else entry)


def write_jsonl(
    path: Union[str, Path],
    entries: Iterable[dict],
    virtual_only: bool = False,
) -> int:
    """Write entries as JSONL; returns the number of lines written.

    Binary I/O end to end, like the golden corpus: no platform newline
    translation may touch a file whose bytes are compared.
    """
    count = 0
    with open(path, "wb") as handle:
        for entry in entries:
            handle.write(entry_line(entry, virtual_only=virtual_only).encode("utf-8"))
            handle.write(b"\n")
            count += 1
    return count


def iter_jsonl(path: Union[str, Path]) -> Iterator[dict]:
    """Parse a JSONL trace file back into entry dicts."""
    with open(path, "rb") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise BenchmarkError(f"{path}:{lineno}: not a JSONL trace line: {exc}")
            if not isinstance(entry, dict):
                raise BenchmarkError(f"{path}:{lineno}: trace entry is not an object")
            yield entry


def filter_entries(
    entries: Iterable[dict],
    session: Optional[str] = None,
    kind: Optional[str] = None,
) -> Iterator[dict]:
    """Yield entries matching the given ``session`` / ``kind`` (if set).

    The `repro trace summary|export --session/--kind` selection: at
    10⁵-session scale an unfiltered trace is noise. Filters compose
    (logical AND); ``None`` means "don't filter on this field".
    """
    for entry in entries:
        if session is not None and entry.get("session") != session:
            continue
        if kind is not None and entry.get("kind") != kind:
            continue
        yield entry


def merge_traces(paths: Iterable[Union[str, Path]]) -> List[dict]:
    """Stitch per-host trace files into one globally-ordered timeline.

    Entries sort by ``(vt, host, seq)`` — virtual time is the shared
    global axis (every host replays the same deterministic timeline), the
    ``host`` context field breaks cross-host ties deterministically, and
    ``seq`` preserves each host's own recording order. The result is a
    pure function of the input files, so merged output is
    byte-deterministic (``repro trace merge``).
    """
    merged: List[dict] = []
    for path in paths:
        merged.extend(iter_jsonl(path))
    merged.sort(
        key=lambda entry: (
            float(entry.get("vt", 0.0)),
            str(entry.get("host", "")),
            int(entry.get("seq", 0)),
        )
    )
    return merged


def summarize(entries: Iterable[dict]) -> List[Dict[str, object]]:
    """Aggregate entries per span/event name, virtual-time fields only.

    Returns rows sorted by name, each with: ``name``, ``kind``, ``count``,
    ``vt_total`` (summed span durations; 0 for point events), ``vt_first``
    and ``vt_last`` (earliest/latest virtual timestamps). Wall fields are
    ignored entirely, so the summary of a fixed-seed run is deterministic.
    """
    rows: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        name = str(entry.get("name", "?"))
        vt = float(entry.get("vt", 0.0))
        vt_end = float(entry.get("vt_end", vt))
        row = rows.get(name)
        if row is None:
            row = rows[name] = {
                "name": name,
                "kind": entry.get("kind", "event"),
                "count": 0,
                "vt_total": 0.0,
                "vt_first": vt,
                "vt_last": vt,
            }
        row["count"] = int(row["count"]) + 1
        row["vt_total"] = float(row["vt_total"]) + (vt_end - vt)
        row["vt_first"] = min(float(row["vt_first"]), vt)
        row["vt_last"] = max(float(row["vt_last"]), vt)
    return [rows[name] for name in sorted(rows)]


_SUMMARY_HEADER = "name,kind,count,vt_total,vt_first,vt_last"


def csv_summary(entries: Iterable[dict]) -> str:
    """The ``repro trace summary`` rendering: a deterministic CSV."""
    lines = [_SUMMARY_HEADER]
    for row in summarize(entries):
        lines.append(
            "{name},{kind},{count},{vt_total:.6f},{vt_first:.6f},{vt_last:.6f}".format(
                **row
            )
        )
    return "\n".join(lines) + "\n"


def render_summary_table(entries: Iterable[dict]) -> str:
    """Human-oriented fixed-width table of the same deterministic rows."""
    rows = summarize(entries)
    if not rows:
        return "(empty trace)\n"
    name_width = max(len("name"), max(len(str(r["name"])) for r in rows))
    lines = [
        f"{'name':<{name_width}}  {'kind':<5}  {'count':>7}  "
        f"{'vt_total':>12}  {'vt_first':>10}  {'vt_last':>10}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  {row['kind']:<5}  {row['count']:>7}  "
            f"{row['vt_total']:>12.6f}  {row['vt_first']:>10.6f}  {row['vt_last']:>10.6f}"
        )
    return "\n".join(lines) + "\n"


class JsonlSink:
    """Stream entries straight to an open JSONL file as they are recorded.

    Used for long server runs where buffering the whole trace in memory
    is undesirable. The file is written in binary mode; call
    :meth:`close` (or use as a context manager) to flush.
    """

    def __init__(self, path: Union[str, Path], virtual_only: bool = False):
        self.path = Path(path)
        self.virtual_only = virtual_only
        self.count = 0
        self._handle: Optional[object] = open(self.path, "wb")

    def __call__(self, entry: dict) -> None:
        if self._handle is None:
            raise BenchmarkError(f"trace sink {self.path} is closed")
        self._handle.write(
            entry_line(entry, virtual_only=self.virtual_only).encode("utf-8")
        )
        self._handle.write(b"\n")
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
