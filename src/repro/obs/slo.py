"""Deterministic SLO watchdog over windowed virtual-time telemetry.

Evaluates threshold rules against every flushed
:class:`~repro.obs.timeseries.TimeSeries` window — the paper's §4.7
metrics (violation rate, latency, throughput), time-resolved — and
emits typed alert events — into the trace (``slo.alert`` events at the window's closing
virtual time) and into pushed STATS snapshots (the ``alerts`` field of
STATS_PUSH frames). Because windows are pure functions of the run
configuration (the two-axis contract), so are the alerts: a rule that
fires in window 7 of one run fires in window 7 of every repeat.

Rules are compact strings, ``METRIC OP THRESHOLD``::

    pct_tr_violated>75        # alert when >75% of a window's deadlines violate
    mean_latency>2.5          # alert when answered latency exceeds 2.5 vt-seconds
    kernel_hit_rate<0.5       # alert when the kernel cache degrades

``METRIC`` is any numeric field of a window dict
(:mod:`repro.obs.timeseries` documents the catalog); ``OP`` is ``>`` or
``<``. Empty windows evaluate like any other (rates are 0.0 there), so a
``<`` rule can deliberately page on silence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.common.errors import BenchmarkError
from repro.obs.tracer import get_tracer

#: Comparison operators a rule may use.
SLO_OPS = (">", "<")


@dataclass(frozen=True)
class SloRule:
    """One threshold rule over a window metric."""

    metric: str
    op: str
    threshold: float
    name: str = ""

    def __post_init__(self):
        if self.op not in SLO_OPS:
            raise BenchmarkError(
                f"unknown SLO operator {self.op!r} "
                f"(choose from: {', '.join(SLO_OPS)})"
            )

    @property
    def label(self) -> str:
        """The rule's display/trace name (defaults to its source text)."""
        return self.name or f"{self.metric}{self.op}{self.threshold:g}"

    def check(self, window: dict) -> Optional[dict]:
        """The typed alert this rule raises on ``window``, or ``None``."""
        value = window.get(self.metric)
        if not isinstance(value, (int, float)):
            return None
        fired = value > self.threshold if self.op == ">" else value < self.threshold
        if not fired:
            return None
        return {
            "rule": self.label,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "value": value,
            "w": window.get("w"),
            "vt": window.get("vt_end"),
        }


def parse_rule(text: str) -> SloRule:
    """Parse ``METRIC>THRESHOLD`` / ``METRIC<THRESHOLD`` into a rule."""
    for op in SLO_OPS:
        metric, sep, threshold = text.partition(op)
        if not sep:
            continue
        metric = metric.strip()
        if not metric:
            raise BenchmarkError(f"malformed SLO rule {text!r}: empty metric")
        try:
            return SloRule(metric=metric, op=op, threshold=float(threshold))
        except ValueError as error:
            raise BenchmarkError(
                f"malformed SLO rule {text!r}: {error}"
            ) from error
    raise BenchmarkError(
        f"malformed SLO rule {text!r} (expected METRIC>THRESHOLD or "
        f"METRIC<THRESHOLD over a window field, e.g. pct_tr_violated>75)"
    )


class SloWatchdog:
    """Evaluates rules per flushed window; collects and traces alerts.

    Attach to a series with :meth:`attach` (a plain window listener) or
    call :meth:`evaluate` manually per window. Alerts accumulate on
    :attr:`alerts` in window order; each one is also recorded as an
    ``slo.alert`` trace event at the window's closing virtual time when
    tracing is enabled.
    """

    def __init__(self, rules: Sequence[Union[SloRule, str]] = ()):
        self.rules: Tuple[SloRule, ...] = tuple(
            rule if isinstance(rule, SloRule) else parse_rule(rule)
            for rule in rules
        )
        self.alerts: List[dict] = []

    def evaluate(self, window: dict) -> List[dict]:
        """Check every rule against one window; returns the new alerts."""
        fired = []
        for rule in self.rules:
            alert = rule.check(window)
            if alert is not None:
                fired.append(alert)
        if fired:
            tracer = get_tracer()
            if tracer.enabled:
                for alert in fired:
                    tracer.event(
                        "slo.alert",
                        float(alert["vt"] or 0.0),
                        rule=alert["rule"],
                        metric=alert["metric"],
                        value=alert["value"],
                        threshold=alert["threshold"],
                        w=alert["w"],
                    )
            self.alerts.extend(fired)
        return fired

    def attach(self, series) -> "SloWatchdog":
        """Register this watchdog as a window listener on ``series``."""
        series.add_listener(self.evaluate)
        return self
