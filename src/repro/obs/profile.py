"""Per-stage wall-time attribution across the serving stack.

Answers "where does *wall* time go inside a §5-style run?" — the
question the end-of-run CSVs cannot: how much real time the process spent in engine
step kernels vs. predicate evaluation vs. binning vs. scheduler
arbitration vs. turn-grant round-trips vs. PENDING stalls. This is the
before/after lens for every subsequent performance PR (ROADMAP:
vectorized engine core, timing-wheel scheduler).

Stage totals are **wall-clock only** (via
:func:`repro.common.clock.perf_seconds`) and therefore live entirely on
the nondeterministic axis: they are never written into golden-pinned
output, only into ``--metrics-out`` files, ``BENCH_*.json`` payloads and
the STATS wire message (docs/observability.md's two-axis contract).

The profiler is a process-wide singleton that defaults to *disabled*;
``stage()`` then returns a shared no-op context manager so instrumented
hot loops pay one attribute check and nothing else.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.clock import perf_seconds

#: The canonical stage taxonomy (docs/observability.md). Call sites may
#: introduce new stages freely; these are the ones wired in today.
STAGE_ENGINE_STEP = "engine_step"            # progressive-engine estimate kernels
STAGE_PREDICATE_EVAL = "predicate_eval"      # filter/predicate mask evaluation
STAGE_BINNING = "binning"                    # group-by bin assignment
STAGE_COMPILE = "compile"                    # query-kernel compilation (docs/kernels.md)
STAGE_SCHEDULER = "scheduler_arbitration"    # processor-sharing settle loops
STAGE_TURN_GRANT = "turn_grant"              # shared-TCP grant→TURN_DONE round-trips
STAGE_PENDING_STALL = "pending_stall"        # waiting on external client input
STAGE_FRAME_IO = "frame_io"                  # wire frame encode/send/receive

KNOWN_STAGES = (
    STAGE_ENGINE_STEP,
    STAGE_PREDICATE_EVAL,
    STAGE_BINNING,
    STAGE_COMPILE,
    STAGE_SCHEDULER,
    STAGE_TURN_GRANT,
    STAGE_PENDING_STALL,
    STAGE_FRAME_IO,
)


class _NullStage:
    """Shared do-nothing context manager for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_STAGE = _NullStage()


class _Stage:
    __slots__ = ("_profiler", "_name", "_started")

    def __init__(self, profiler: "StageProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Stage":
        self._started = perf_seconds()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler.add(self._name, perf_seconds() - self._started)


class StageProfiler:
    """Accumulates wall seconds and entry counts per named stage."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def stage(self, name: str):
        """Context manager timing one entry of ``name`` (no-op if disabled)."""
        if not self.enabled:
            return _NULL_STAGE
        return _Stage(self, name)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Attribute ``seconds`` of wall time to ``name`` directly."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + count

    def totals(self) -> Dict[str, float]:
        return dict(self._seconds)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def rows(self) -> List[Tuple[str, int, float]]:
        """(stage, entries, wall seconds), sorted by descending seconds."""
        return sorted(
            ((name, self._counts.get(name, 0), secs)
             for name, secs in self._seconds.items()),
            key=lambda row: (-row[2], row[0]),
        )

    def snapshot(self) -> dict:
        """JSON-ready stage table (sorted by name for stable diffs)."""
        return {
            "stages": [
                {
                    "name": name,
                    "count": self._counts.get(name, 0),
                    "wall_seconds": self._seconds[name],
                }
                for name in sorted(self._seconds)
            ]
        }

    def report(self) -> str:
        """Human-readable attribution table, widest stages first."""
        rows = self.rows()
        if not rows:
            return "(no stages profiled)\n"
        total = sum(secs for _, _, secs in rows)
        width = max(len("stage"), max(len(name) for name, _, _ in rows))
        lines = [f"{'stage':<{width}}  {'entries':>8}  {'wall s':>10}  {'share':>6}"]
        for name, count, secs in rows:
            share = (secs / total * 100.0) if total > 0 else 0.0
            lines.append(
                f"{name:<{width}}  {count:>8}  {secs:>10.4f}  {share:>5.1f}%"
            )
        lines.append(f"{'total':<{width}}  {'':>8}  {total:>10.4f}")
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        self._seconds.clear()
        self._counts.clear()


#: Process-wide profiler; disabled until observability is switched on
#: (``--trace``/``--metrics-out`` or :func:`repro.obs.enable`).
_GLOBAL = StageProfiler(enabled=False)


def get_profiler() -> StageProfiler:
    return _GLOBAL


def set_profiler(profiler: StageProfiler) -> StageProfiler:
    """Swap the global profiler (tests, per-run isolation); returns the old."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = profiler
    return previous
