"""Deterministic virtual-time windowed telemetry series.

IDEBench's argument is *time-resolved*: an interactive-exploration
backend must be judged by how its §4.7 metrics — violations, latency,
throughput — evolve while the population churns; cumulative counters
flatten exactly the signal the paper cares about. This module folds the serving stack's event
stream into fixed-width **virtual-time windows**, incrementally, in
global virtual-time order (the scheduler's grant order), so a live run
can stream its windows out (STATS_PUSH frames, ``repro top``) while the
series stays a pure function of the run configuration.

Two-axis contract (docs/observability.md): every field of a flushed
window is derived from virtual time and deterministic run state — no
wall readings — so window streams are golden-pinnable
(``tests/golden/timeseries_serial.jsonl``) and byte-identical across
repeated runs and across in-process vs over-the-wire consumption.

Window *w* covers the half-open virtual interval
``[w·width, (w+1)·width)``. Observations arrive in nondecreasing
virtual-time order; the first observation at or past a window's end
flushes it (and any empty windows in between), and :meth:`TimeSeries.finalize`
flushes the trailing partial window. Per-window fields:

``active_sessions``
    sessions live at the window's flush point (a gauge);
``sessions_started`` / ``sessions_finished``
    lifecycle deltas inside the window;
``records`` / ``tr_violations`` / ``pct_tr_violated``
    evaluated deadlines, violations, and the violation rate in percent;
``mean_latency``
    mean answered-query latency (virtual seconds) inside the window;
``records_per_s``
    records over the window width — the §4.7 throughput axis;
``turns`` / ``queue_depth``
    scheduler grants inside the window and the maximum number of
    sessions waiting for a turn at any grant;
``kernel_hits`` / ``kernel_misses`` / ``kernel_hit_rate``
    compiled-kernel cache activity deltas (cumulative counters sampled
    at each turn grant).

The incremental fold is pinned against :func:`recompute`, a
from-scratch reference that rebuilds the same windows from the full
event stream — ``tests/test_timeseries.py`` fuzzes bitwise equality of
the two over growing, shrinking and empty windows.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import BenchmarkError
from repro.common.fingerprint import canonical_json

#: Default window width in virtual seconds.
DEFAULT_WINDOW = 1.0


class TimeSeries:
    """Incrementally folded virtual-time windowed series.

    Observations must arrive in nondecreasing virtual-time order (the
    serving stack's global grant order guarantees this). Flushed windows
    accumulate on :attr:`windows` and fan out to listeners registered
    with :meth:`add_listener` — the hook the SLO watchdog
    (:mod:`repro.obs.slo`) and the STATS_PUSH stream attach to.

    Disabled by default at the module level (:func:`get_timeseries`):
    instrumented call sites pay one attribute check until a run installs
    an enabled series via :func:`set_timeseries`.
    """

    def __init__(self, window: float = DEFAULT_WINDOW, enabled: bool = True):
        if window <= 0:
            raise BenchmarkError(
                f"time-series window must be positive, got {window!r}"
            )
        self.window = float(window)
        self.enabled = enabled
        #: Flushed windows, oldest first.
        self.windows: List[dict] = []
        self._listeners: List[Callable[[dict], None]] = []
        self._index = 0
        self._finalized = False
        # Run-level gauges (persist across windows).
        self._active = 0
        self._kernel_hits = 0
        self._kernel_misses = 0
        # Per-window accumulators (reset at each flush).
        self._reset_window()
        self._kernel_seen = False
        self._kernel_hits_start = 0
        self._kernel_misses_start = 0

    def _reset_window(self) -> None:
        self._records = 0
        self._violations = 0
        self._latency_sum = 0.0
        self._answered = 0
        self._turns = 0
        self._queue_depth = 0
        self._started = 0
        self._finished = 0

    # -- folding hooks --------------------------------------------------

    def advance(self, vt: float) -> None:
        """Flush every window whose end lies at or before ``vt``."""
        if self._finalized:
            raise BenchmarkError("time series is finalized")
        while (self._index + 1) * self.window <= vt:
            self._flush()

    def observe_record(
        self, vt: float, tr_violated: bool, latency: float = 0.0
    ) -> None:
        """Fold one evaluated deadline at virtual time ``vt``."""
        self.advance(vt)
        self._records += 1
        if tr_violated:
            self._violations += 1
        else:
            self._latency_sum += latency
            self._answered += 1

    def observe_turn(self, vt: float, queue_depth: int = 0) -> None:
        """Fold one scheduler grant; ``queue_depth`` = sessions waiting."""
        self.advance(vt)
        self._turns += 1
        if queue_depth > self._queue_depth:
            self._queue_depth = queue_depth

    def observe_kernel(self, vt: float, hits: int, misses: int) -> None:
        """Sample the kernel cache's cumulative hit/miss counters.

        The first sample is the series' baseline: the cache counters are
        process-global, so without it the first window's delta would
        absorb whatever warmed the cache before this run — and the
        windows would no longer be a pure function of the run.
        """
        self.advance(vt)
        if not self._kernel_seen:
            self._kernel_seen = True
            self._kernel_hits_start = int(hits)
            self._kernel_misses_start = int(misses)
        self._kernel_hits = int(hits)
        self._kernel_misses = int(misses)

    def session_started(self, vt: float) -> None:
        self.advance(vt)
        self._active += 1
        self._started += 1

    def session_finished(self, vt: float) -> None:
        self.advance(vt)
        self._active -= 1
        self._finished += 1

    def finalize(self) -> None:
        """Flush the trailing partial window; the series is then frozen."""
        if self._finalized:
            return
        self._flush()
        self._finalized = True

    # -- flushing -------------------------------------------------------

    def _flush(self) -> None:
        index = self._index
        width = self.window
        hits = self._kernel_hits - self._kernel_hits_start
        misses = self._kernel_misses - self._kernel_misses_start
        lookups = hits + misses
        window = {
            "w": index,
            "vt_start": index * width,
            "vt_end": (index + 1) * width,
            "active_sessions": self._active,
            "sessions_started": self._started,
            "sessions_finished": self._finished,
            "records": self._records,
            "tr_violations": self._violations,
            "pct_tr_violated": (
                100.0 * self._violations / self._records
                if self._records
                else 0.0
            ),
            "mean_latency": (
                self._latency_sum / self._answered if self._answered else 0.0
            ),
            "records_per_s": self._records / width,
            "turns": self._turns,
            "queue_depth": self._queue_depth,
            "kernel_hits": hits,
            "kernel_misses": misses,
            "kernel_hit_rate": (hits / lookups if lookups else 0.0),
        }
        self._kernel_hits_start = self._kernel_hits
        self._kernel_misses_start = self._kernel_misses
        self._reset_window()
        self._index += 1
        self.windows.append(window)
        for listener in self._listeners:
            listener(window)

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        """Call ``listener(window)`` at every window flush."""
        self._listeners.append(listener)

    # -- access ---------------------------------------------------------

    def lines(self) -> Iterator[str]:
        """Canonical-JSON lines of the flushed windows (golden format)."""
        for window in self.windows:
            yield canonical_json(window)

    def text(self) -> str:
        """All flushed windows as one JSONL blob (trailing newline)."""
        return "".join(line + "\n" for line in self.lines())

    def __len__(self) -> int:
        return len(self.windows)


#: Event tuples accepted by :func:`replay` / :func:`recompute`:
#: ``("record", vt, tr_violated, latency)``, ``("turn", vt, depth)``,
#: ``("kernel", vt, hits, misses)``, ``("start", vt)``, ``("finish", vt)``.
EVENT_KINDS = ("record", "turn", "kernel", "start", "finish")

_EVENT_METHODS = {
    "record": "observe_record",
    "turn": "observe_turn",
    "kernel": "observe_kernel",
    "start": "session_started",
    "finish": "session_finished",
}


def replay(
    events: Sequence[Tuple], window: float = DEFAULT_WINDOW
) -> TimeSeries:
    """Fold an event stream incrementally through a fresh series."""
    series = TimeSeries(window=window)
    for event in events:
        kind, args = event[0], event[1:]
        method = _EVENT_METHODS.get(kind)
        if method is None:
            raise BenchmarkError(f"unknown time-series event kind {kind!r}")
        getattr(series, method)(*args)
    series.finalize()
    return series


def recompute(
    events: Sequence[Tuple], window: float = DEFAULT_WINDOW
) -> List[dict]:
    """From-scratch reference recompute of the windows of ``events``.

    Rebuilds every window by bucketing the *full* event stream, without
    incremental state — the specification the incremental fold is fuzzed
    against (bitwise equality of canonical lines). The window-boundary
    arithmetic is the same ``(w+1)·width <= vt`` test the incremental
    path uses, so float edge cases cannot diverge between the two.
    """
    if window <= 0:
        raise BenchmarkError(
            f"time-series window must be positive, got {window!r}"
        )
    # Assign each event to its window with the shared boundary rule.
    index = 0
    buckets: List[List[Tuple]] = [[]]
    for event in events:
        if event[0] not in _EVENT_METHODS:
            raise BenchmarkError(
                f"unknown time-series event kind {event[0]!r}"
            )
        vt = event[1]
        while (index + 1) * window <= vt:
            index += 1
            buckets.append([])
        buckets[index].append(event)
    windows: List[dict] = []
    active = 0
    # Same first-sample baseline rule as the incremental fold: the
    # cumulative cache counters start wherever the process left them.
    first_kernel = next(
        (event for event in events if event[0] == "kernel"), None
    )
    kernel_hits = int(first_kernel[2]) if first_kernel else 0
    kernel_misses = int(first_kernel[3]) if first_kernel else 0
    last_hits, last_misses = kernel_hits, kernel_misses
    for w, bucket in enumerate(buckets):
        records = violations = answered = turns = depth = 0
        started = finished = 0
        latency_sum = 0.0
        for event in bucket:
            kind = event[0]
            if kind == "record":
                records += 1
                if event[2]:
                    violations += 1
                else:
                    latency_sum += event[3] if len(event) > 3 else 0.0
                    answered += 1
            elif kind == "turn":
                turns += 1
                d = event[2] if len(event) > 2 else 0
                if d > depth:
                    depth = d
            elif kind == "kernel":
                kernel_hits, kernel_misses = int(event[2]), int(event[3])
            elif kind == "start":
                active += 1
                started += 1
            else:  # finish
                active -= 1
                finished += 1
        hits = kernel_hits - last_hits
        misses = kernel_misses - last_misses
        last_hits, last_misses = kernel_hits, kernel_misses
        lookups = hits + misses
        windows.append({
            "w": w,
            "vt_start": w * window,
            "vt_end": (w + 1) * window,
            "active_sessions": active,
            "sessions_started": started,
            "sessions_finished": finished,
            "records": records,
            "tr_violations": violations,
            "pct_tr_violated": (
                100.0 * violations / records if records else 0.0
            ),
            "mean_latency": latency_sum / answered if answered else 0.0,
            "records_per_s": records / window,
            "turns": turns,
            "queue_depth": depth,
            "kernel_hits": hits,
            "kernel_misses": misses,
            "kernel_hit_rate": hits / lookups if lookups else 0.0,
        })
    return windows


def series_lines(windows: Sequence[dict]) -> List[str]:
    """Canonical-JSON lines for a list of window dicts."""
    return [canonical_json(window) for window in windows]


#: Process-wide series. Disabled by default: the serving stack's feeding
#: call sites do ``series = get_timeseries()`` + one ``.enabled`` check
#: and nothing more, so golden-pinned report bytes are untouched.
_GLOBAL = TimeSeries(enabled=False)


def get_timeseries() -> TimeSeries:
    return _GLOBAL


def set_timeseries(series: TimeSeries) -> TimeSeries:
    """Swap the global series (per-run isolation); returns the old one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = series
    return previous
