"""Structured trace spans and events with two segregated time axes.

Instruments the §4.4 discrete-event timeline. Every trace entry carries
up to two kinds of timestamps:

* **virtual time** (``vt``, ``vt_end``) — simulation time from the
  deterministic :class:`~repro.common.clock.VirtualClock`. These fields,
  plus ``kind``/``name``/``seq``/``session``/``attrs``, are a pure
  function of the run's configuration and seed, so they may be pinned in
  ``tests/golden/`` byte-for-byte;
* **wall time** (everything under the reserved ``wall`` key) — real
  measurements from :func:`repro.common.clock.perf_seconds`. These vary
  run to run and machine to machine, and are therefore *segregated*
  under one key that every golden-facing export strips
  (:func:`repro.obs.sink.virtual_view`).

That segregation is the **two-axis determinism contract**
(docs/observability.md): enabling tracing never changes any
golden-pinned byte, because deterministic output either omits trace data
entirely (the existing report corpus) or strips the wall axis (the
golden trace files).

The tracer defaults to *disabled* and costs one attribute check per
instrumented call site when off; ``span()`` returns a shared no-op
handle, so hot loops (engine estimate kernels, scheduler settles) are
unaffected until someone passes ``--trace``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.common.clock import perf_seconds
from repro.obs.sink import RingBuffer, entry_line

#: Bumped when the entry schema changes incompatibly.
TRACE_SCHEMA_VERSION = 1


class _NullSpan:
    """Shared no-op span handle returned while tracing is disabled."""

    __slots__ = ()

    def end(self, vt_end: float) -> None:
        return None

    def set(self, key: str, value) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class SpanHandle:
    """An open span: close it via ``with`` or an explicit :meth:`close`.

    ``vt_end`` defaults to the opening ``vt`` (a point span) unless the
    caller advances it with :meth:`end` — virtual durations must come
    from the simulation, never from wall measurements.
    """

    __slots__ = ("_tracer", "entry", "_wall_started", "_closed")

    def __init__(self, tracer: "Tracer", entry: dict):
        self._tracer = tracer
        self.entry = entry
        self._wall_started = perf_seconds()
        self._closed = False

    def end(self, vt_end: float) -> None:
        """Set the span's closing virtual timestamp."""
        self.entry["vt_end"] = float(vt_end)

    def set(self, key: str, value) -> None:
        """Attach a (deterministic!) attribute to the span."""
        self.entry.setdefault("attrs", {})[key] = value

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.entry["wall"] = {"dur": perf_seconds() - self._wall_started}
        self._tracer._record(self.entry)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Tracer:
    """Collects trace entries in memory (optionally bounded) and fans
    them out to registered sinks as they are recorded."""

    def __init__(
        self,
        enabled: bool = True,
        capacity: Optional[int] = None,
    ):
        self.enabled = enabled
        self._entries: Union[List[dict], RingBuffer] = (
            RingBuffer(capacity) if capacity else []
        )
        self._seq = 0
        self._sinks: List[Callable[[dict], None]] = []
        #: Correlation fields stamped onto every entry (e.g. ``run``,
        #: ``host``) — the cross-host axis ``repro trace merge`` stitches
        #: on. Empty by default, so single-host traces are byte-identical
        #: to pre-context ones.
        self.context: Dict[str, object] = {}

    def set_context(self, **fields) -> None:
        """Stamp ``fields`` (run id, host id, ...) onto future entries.

        Values must be deterministic: they land in the virtual view and
        therefore in golden-comparable bytes. ``None`` values clear keys.
        """
        for key, value in sorted(fields.items()):
            if value is None:
                self.context.pop(key, None)
            else:
                self.context[key] = value

    # -- recording ----------------------------------------------------

    def _base(self, kind: str, name: str, vt: float,
              session: Optional[str], attrs: Optional[dict]) -> dict:
        entry: Dict[str, object] = {
            "kind": kind,
            "name": name,
            "seq": self._seq,
            "vt": float(vt),
        }
        self._seq += 1
        if self.context:
            entry.update(self.context)
        if session is not None:
            entry["session"] = session
        if attrs:
            entry["attrs"] = attrs
        return entry

    def event(self, name: str, vt: float, session: Optional[str] = None,
              **attrs) -> None:
        """Record a point event at virtual time ``vt``."""
        if not self.enabled:
            return
        self._record(self._base("event", name, vt, session, attrs or None))

    def span(self, name: str, vt: float, session: Optional[str] = None,
             **attrs) -> Union[SpanHandle, _NullSpan]:
        """Open a span at virtual time ``vt``; wall duration is measured
        from this call until the handle closes."""
        if not self.enabled:
            return NULL_SPAN
        return SpanHandle(self, self._base("span", name, vt, session, attrs or None))

    def _record(self, entry: dict) -> None:
        self._entries.append(entry)
        for sink in self._sinks:
            sink(entry)

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        """Stream every future entry to ``sink(entry)`` as it's recorded."""
        self._sinks.append(sink)

    # -- access -------------------------------------------------------

    def entries(self) -> Iterator[dict]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def dropped(self) -> int:
        return getattr(self._entries, "dropped", 0)

    def lines(self, virtual_only: bool = False) -> Iterator[str]:
        """Canonical-JSON lines; ``virtual_only`` strips the wall axis."""
        for entry in self._entries:
            yield entry_line(entry, virtual_only=virtual_only)

    def clear(self) -> None:
        if isinstance(self._entries, RingBuffer):
            self._entries.clear()
        else:
            self._entries = []
        self._seq = 0


#: Process-wide tracer. Disabled by default: instrumented call sites do
#: ``t = get_tracer()`` + one ``.enabled`` check and nothing more.
_GLOBAL = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (tests, per-run isolation); returns the old."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = tracer
    return previous
