"""Counters, gauges and histograms with deterministic exposition.

Operational counterpart to the §4.7 result-quality metrics. A
:class:`MetricsRegistry` holds named metrics, optionally labelled, and
renders them two ways:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` + samples), served live to
  ``repro connect --stats`` clients via the STATS wire message;
* :meth:`MetricsRegistry.snapshot` / :meth:`snapshot_json` — a canonical
  JSON snapshot (sorted keys, sorted metric order) whose
  encode→decode→encode cycle is a fixpoint (pinned by a seeded fuzz test
  in ``tests/test_obs.py``), so snapshots can be diffed byte-for-byte.

Histograms use **fixed bucket boundaries** chosen at construction time
(defaults below) — never adaptive ones — so the exposition of two runs
with the same observations is byte-identical and bucket counts from
different runs are directly comparable.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import BenchmarkError
from repro.common.fingerprint import canonical_json

#: Fixed wall-latency buckets (seconds): micro- to tens-of-seconds range,
#: covering engine-step kernels up to whole-session walls.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fixed virtual-time buckets (seconds): the think-time / TR scale of the
#: simulation (§4.6 defaults put TRs at 0.5–3 s and think time at 1 s).
DEFAULT_VT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 30.0, 60.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise BenchmarkError(f"counter {self.name} cannot decrease (inc {amount!r})")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, active sessions)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram: cumulative buckets, sum, and count."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: _LabelKey = (),
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise BenchmarkError(f"histogram {name} needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise BenchmarkError(
                f"histogram {name} bounds must be strictly increasing: {bounds!r}"
            )
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with deterministic renderings."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, _LabelKey], object] = {}
        self._help: Dict[str, str] = {}
        self._kinds: Dict[str, str] = {}

    # -- registration -------------------------------------------------

    def _get(self, kind: str, name: str, labels, help, **kwargs):
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise BenchmarkError(
                f"metric {name!r} already registered as {known}, not {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            cls = _METRIC_KINDS[kind]
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = kind
            if help:
                self._help[name] = help
        return metric

    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None,
                help: str = "") -> Counter:
        return self._get("counter", name, labels, help)

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None,
              help: str = "") -> Gauge:
        return self._get("gauge", name, labels, help)

    def histogram(self, name: str, labels: Optional[Mapping[str, str]] = None,
                  help: str = "",
                  bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        return self._get("histogram", name, labels, help, bounds=bounds)

    # -- introspection ------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def _ordered(self) -> List[object]:
        return [self._metrics[key] for key in sorted(self._metrics)]

    # -- renderings ---------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition, deterministically ordered."""
        lines: List[str] = []
        seen_header = set()
        for metric in self._ordered():
            name = metric.name
            if name not in seen_header:
                seen_header.add(name)
                help_text = self._help.get(name)
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {metric.kind}")
            labels = metric.labels
            if metric.kind == "histogram":
                cumulative = 0
                for bound, bucket in zip(metric.bounds, metric.counts):
                    cumulative += bucket
                    key = labels + (("le", _format_bound(bound)),)
                    lines.append(f"{name}_bucket{_render_labels(key)} {cumulative}")
                cumulative += metric.counts[-1]
                key = labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_render_labels(key)} {cumulative}")
                lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(metric.sum)}")
                lines.append(f"{name}_count{_render_labels(labels)} {metric.count}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} {_format_value(metric.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """A canonical, JSON-ready snapshot of every metric."""
        metrics = []
        for metric in self._ordered():
            entry: Dict[str, object] = {
                "name": metric.name,
                "type": metric.kind,
                "labels": {k: v for k, v in metric.labels},
            }
            help_text = self._help.get(metric.name)
            if help_text:
                entry["help"] = help_text
            if metric.kind == "histogram":
                entry["bounds"] = list(metric.bounds)
                entry["counts"] = list(metric.counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value
            metrics.append(entry)
        return {"version": 1, "metrics": metrics}

    def snapshot_json(self) -> str:
        return canonical_json(self.snapshot())

    @classmethod
    def from_snapshot(cls, data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output.

        ``registry.snapshot_json()`` of the rebuilt registry equals the
        original encoding — the fixpoint the fuzz test pins.
        """
        if not isinstance(data, Mapping) or data.get("version") != 1:
            raise BenchmarkError(f"not a metrics snapshot: {data!r}")
        registry = cls()
        for entry in data.get("metrics", ()):
            kind = entry.get("type")
            if kind not in _METRIC_KINDS:
                raise BenchmarkError(f"unknown metric type {kind!r} in snapshot")
            name = entry["name"]
            labels = entry.get("labels") or None
            help_text = entry.get("help", "")
            if kind == "histogram":
                metric = registry.histogram(
                    name, labels=labels, help=help_text, bounds=entry["bounds"]
                )
                counts = list(entry["counts"])
                if len(counts) != len(metric.bounds) + 1:
                    raise BenchmarkError(
                        f"histogram {name!r} snapshot has {len(counts)} counts "
                        f"for {len(metric.bounds)} bounds"
                    )
                metric.counts = [int(c) for c in counts]
                metric.sum = float(entry["sum"])
                metric.count = int(entry["count"])
            elif kind == "counter":
                registry.counter(name, labels=labels, help=help_text).value = float(
                    entry["value"]
                )
            else:
                registry.gauge(name, labels=labels, help=help_text).value = float(
                    entry["value"]
                )
        return registry

    def clear(self) -> None:
        self._metrics.clear()
        self._help.clear()
        self._kinds.clear()


def _format_bound(bound: float) -> str:
    """Bucket bounds render without trailing float noise (0.1, 1, 10)."""
    return repr(bound) if bound != int(bound) else str(int(bound))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: The process-wide registry the instrumented call sites write to.
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return _GLOBAL


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests, per-run isolation); returns the old."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous
