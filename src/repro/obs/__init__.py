"""Observability: deterministic tracing, metrics and wall-time profiling.

The instrument panel over the §4.4 event loop and §4.7 metric pipeline
(docs/observability.md).
Three cooperating singletons, all *disabled/empty by default* so the
simulation's golden-pinned output is untouched unless observability is
explicitly switched on:

* :mod:`repro.obs.tracer` — structured spans/events on two segregated
  time axes (deterministic virtual time, nondeterministic wall time);
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms
  with Prometheus text exposition and canonical-JSON snapshots (served
  live over the wire via the STATS message);
* :mod:`repro.obs.profile` — per-stage wall-time attribution (engine
  step, predicate eval, binning, scheduler arbitration, turn grants,
  PENDING stalls);
* :mod:`repro.obs.sink` — JSONL trace files, bounded ring buffers, and
  the deterministic ``repro trace summary`` aggregation.

:func:`observed` is the one-stop switch the CLI flags (``--trace``,
``--metrics-out``) use: fresh instruments for the run, files written on
the way out, previous singletons restored.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Union

from repro.common.fingerprint import canonical_json
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    DEFAULT_VT_BUCKETS,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.profile import (
    KNOWN_STAGES,
    STAGE_BINNING,
    STAGE_ENGINE_STEP,
    STAGE_FRAME_IO,
    STAGE_PENDING_STALL,
    STAGE_PREDICATE_EVAL,
    STAGE_SCHEDULER,
    STAGE_TURN_GRANT,
    StageProfiler,
    get_profiler,
    set_profiler,
)
from repro.obs.sink import (
    JsonlSink,
    RingBuffer,
    csv_summary,
    entry_line,
    filter_entries,
    iter_jsonl,
    merge_traces,
    render_summary_table,
    summarize,
    virtual_view,
    write_jsonl,
)
from repro.obs.slo import SloRule, SloWatchdog, parse_rule
from repro.obs.timeseries import (
    DEFAULT_WINDOW,
    TimeSeries,
    get_timeseries,
    recompute,
    replay,
    series_lines,
    set_timeseries,
)
from repro.obs.tracer import TRACE_SCHEMA_VERSION, Tracer, get_tracer, set_tracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_VT_BUCKETS",
    "DEFAULT_WINDOW",
    "JsonlSink",
    "KNOWN_STAGES",
    "MetricsRegistry",
    "RingBuffer",
    "STAGE_BINNING",
    "STAGE_ENGINE_STEP",
    "STAGE_FRAME_IO",
    "STAGE_PENDING_STALL",
    "STAGE_PREDICATE_EVAL",
    "STAGE_SCHEDULER",
    "STAGE_TURN_GRANT",
    "SloRule",
    "SloWatchdog",
    "StageProfiler",
    "TRACE_SCHEMA_VERSION",
    "TimeSeries",
    "Tracer",
    "csv_summary",
    "entry_line",
    "export_metrics_text",
    "filter_entries",
    "get_metrics",
    "get_profiler",
    "get_timeseries",
    "get_tracer",
    "iter_jsonl",
    "merge_traces",
    "observed",
    "parse_rule",
    "recompute",
    "render_summary_table",
    "replay",
    "series_lines",
    "set_metrics",
    "set_profiler",
    "set_timeseries",
    "set_tracer",
    "stats_payload",
    "summarize",
    "virtual_view",
    "write_jsonl",
]


def _fold_profile_into(registry: MetricsRegistry, profiler: StageProfiler) -> None:
    """Publish the profiler's stage table as ordinary metrics, so one
    exposition (text or snapshot) carries both."""
    for name, count, seconds in profiler.rows():
        registry.counter(
            "repro_stage_wall_seconds_total",
            labels={"stage": name},
            help="Wall seconds attributed to each profiled stage.",
        ).value = seconds
        registry.counter(
            "repro_stage_entries_total",
            labels={"stage": name},
            help="Entries into each profiled stage.",
        ).value = float(count)


def export_metrics_text(
    registry: Optional[MetricsRegistry] = None,
    profiler: Optional[StageProfiler] = None,
) -> str:
    """Prometheus text for a registry, stage profile folded in."""
    registry = registry if registry is not None else get_metrics()
    profiler = profiler if profiler is not None else get_profiler()
    _fold_profile_into(registry, profiler)
    return registry.render_prometheus()


def stats_payload(
    registry: Optional[MetricsRegistry] = None,
    profiler: Optional[StageProfiler] = None,
) -> dict:
    """The STATS wire message's ``data``: snapshot + stage attribution."""
    registry = registry if registry is not None else get_metrics()
    profiler = profiler if profiler is not None else get_profiler()
    _fold_profile_into(registry, profiler)
    return {
        "metrics": registry.snapshot(),
        "profile": profiler.snapshot(),
        "trace_schema": TRACE_SCHEMA_VERSION,
    }


@contextmanager
def observed(
    trace_path: Optional[Union[str, Path]] = None,
    metrics_path: Optional[Union[str, Path]] = None,
    capacity: Optional[int] = None,
    enabled: Optional[bool] = None,
):
    """Run a block with fresh, enabled instruments; write files on exit.

    This is what ``--trace PATH`` / ``--metrics-out PATH`` expand to:

    * a fresh :class:`Tracer` (bounded by ``capacity`` if given), a fresh
      :class:`MetricsRegistry` and a fresh enabled :class:`StageProfiler`
      become the process singletons for the duration;
    * on exit, the trace is written to ``trace_path`` as JSONL (both
      axes; strip with ``repro trace export --virtual-only``) and the
      metrics + folded stage profile go to ``metrics_path`` (Prometheus
      text, or a canonical-JSON stats payload for ``*.json`` paths);
    * the previous singletons are restored no matter what.

    With ``enabled=None`` the instruments activate only if at least one
    output path was requested — so plain runs keep zero-cost defaults.
    Yields the tracer.
    """
    active = enabled if enabled is not None else bool(trace_path or metrics_path)
    tracer = Tracer(enabled=active, capacity=capacity)
    registry = MetricsRegistry()
    profiler = StageProfiler(enabled=active)
    prev_tracer = set_tracer(tracer)
    prev_metrics = set_metrics(registry)
    prev_profiler = set_profiler(profiler)
    try:
        yield tracer
        if trace_path:
            write_jsonl(trace_path, tracer.entries())
        if metrics_path:
            path = Path(metrics_path)
            if path.suffix == ".json":
                text = canonical_json(stats_payload(registry, profiler)) + "\n"
            else:
                text = export_metrics_text(registry, profiler)
            path.write_bytes(text.encode("utf-8"))
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
        set_profiler(prev_profiler)
