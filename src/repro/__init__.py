"""IDEBench reproduction — a benchmark for interactive data exploration.

A from-scratch Python reproduction of *IDEBench: A Benchmark for
Interactive Data Exploration* (Eichmann, Binnig, Kraska, Zgraggen), with
simulated stand-ins for the five database systems of the paper's
evaluation so every table and figure can be regenerated on a laptop.

Public API tour (see README.md for the quickstart)::

    from repro import (
        BenchmarkSettings,        # §4.6 settings
        generate_flights_seed,    # §4.2 seed data
        scale_dataset,            # §4.2 copula scaler
        normalize,                # §4.2 star-schema normalization
        WorkflowGenerator,        # §4.3 workload generator
        BenchmarkDriver,          # §4.4 driver
        SummaryReport,            # §4.8 reporting
    )
    from repro.engines import ColumnStoreEngine, ProgressiveEngine  # §5 systems
    from repro.bench.experiments import ExperimentContext, exp_overall

Subpackages: :mod:`repro.common` (settings, clocks, RNG),
:mod:`repro.data` (storage, seed, scaler, star schemas),
:mod:`repro.query` (query model, ground truth, SQL), :mod:`repro.workflow`
(interaction specs, viz graph, generator), :mod:`repro.engines` (the five
systems under test), :mod:`repro.bench` (driver, metrics, reports,
experiments), :mod:`repro.runtime` (parallel run-matrix planner/executor
with persistent artifact caching and resumption), :mod:`repro.server`
(async session server multiplexing concurrent simulated IDE sessions —
see docs/server.md).
"""

from repro.bench import (
    BenchmarkDriver,
    DetailedReport,
    QueryRecord,
    SessionDriver,
    SummaryReport,
    SystemAdapter,
    compute_metrics,
)
from repro.common import BenchmarkSettings, DataSize, VirtualClock, WallClock
from repro.data import (
    Dataset,
    Table,
    denormalize,
    generate_flights_seed,
    normalize,
    profile_table,
    scale_dataset,
)
from repro.query import (
    AggFunc,
    Aggregate,
    AggQuery,
    BinDimension,
    BinKind,
    GroundTruthOracle,
    QueryResult,
    evaluate_exact,
    parse_sql,
    query_to_sql,
)
from repro.runtime import (
    ArtifactStore,
    MatrixExecutor,
    RunSpec,
    WorkflowSelector,
    plan_matrix,
)
from repro.server import SessionManager, SessionResult, SessionSpec
from repro.workflow import (
    Workflow,
    WorkflowGenerator,
    WorkflowType,
    generate_default_suite,
    render_workflow,
)

__version__ = "1.0.0"

__all__ = [
    "AggFunc",
    "Aggregate",
    "AggQuery",
    "ArtifactStore",
    "BenchmarkDriver",
    "BenchmarkSettings",
    "BinDimension",
    "BinKind",
    "DataSize",
    "Dataset",
    "DetailedReport",
    "GroundTruthOracle",
    "MatrixExecutor",
    "QueryRecord",
    "QueryResult",
    "RunSpec",
    "SessionDriver",
    "SessionManager",
    "SessionResult",
    "SessionSpec",
    "SummaryReport",
    "SystemAdapter",
    "Table",
    "VirtualClock",
    "WallClock",
    "Workflow",
    "WorkflowGenerator",
    "WorkflowSelector",
    "WorkflowType",
    "__version__",
    "compute_metrics",
    "denormalize",
    "evaluate_exact",
    "generate_default_suite",
    "generate_flights_seed",
    "normalize",
    "parse_sql",
    "plan_matrix",
    "profile_table",
    "query_to_sql",
    "render_workflow",
    "scale_dataset",
]
