"""Command-line interface — the paper's §4.4 "benchmark driver" binary.

The original IDEBench is "a simple command line application (written in
Python) configured to load and simulate workflows". This reproduction's
CLI exposes the same lifecycle::

    repro generate-data --rows 500000 --out flights.csv
    repro generate-workflows --out workflows/ --per-type 10
    repro view workflows/mixed_0.json
    repro run --engine idea-sim --tr 3 --out report.csv
    repro run-matrix --jobs 4 --cache-dir .repro-cache --out matrix.csv
    repro serve --engine idea-sim --sessions 4 --verify
    repro serve --engine idea-sim --tcp 127.0.0.1:8642 --sessions 4
    repro connect 127.0.0.1:8642 --session 0 --out session.csv
    repro bench-sessions --engines idea-sim --sessions 1,2,4
    repro bench-net --sessions 2
    repro report report.csv
    repro report snapshot matrix.csv --kind matrix
    repro report diff a1b2c3d e4f5a6b

``run`` executes the default configuration (mixed workflows) against one
engine simulator under the given settings and writes the detailed report;
``run-matrix`` plans an engines × TRs × sizes × workflow-types matrix and
executes it through the parallel runtime (sharded across ``--jobs``
worker processes, cached/resumable via ``--cache-dir``); ``serve`` runs N
concurrent simulated IDE sessions through the asyncio session server
(§2.2 multi-user serving; see docs/server.md); ``bench-sessions`` sweeps
session counts × engines into a load report; ``report`` renders the
Fig.-5-style summary from a detailed CSV.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.experiments import ExperimentContext, MAIN_ENGINES, make_engine
from repro.bench.driver import BenchmarkDriver
from repro.bench.report import DetailedReport, SummaryReport
from repro.common import log
from repro.common.clock import VirtualClock, perf_seconds
from repro.common.errors import BenchmarkError
from repro.common.config import (
    BenchmarkSettings,
    DataSize,
    DEFAULT_TIME_REQUIREMENTS,
)
from repro.data.generator import scale_dataset
from repro.data.seed import generate_flights_seed
from repro.runtime import (
    ArtifactStore,
    DEFAULT_CACHE_BUDGET_BYTES,
    MatrixExecutor,
    plan_matrix,
    render_matrix,
    write_matrix_csv,
)
from repro.workflow.policy import POLICY_NAMES
from repro.workflow.spec import Workflow, WorkflowType, load_suite, save_suite
from repro.workflow.viewer import render_workflow


def _add_settings_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", default="M", help="data size: S, M, or L")
    parser.add_argument("--scale", type=int, default=1000,
                        help="virtual-to-actual row scale factor")
    parser.add_argument("--seed", type=int, default=42, help="root random seed")


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """``--trace``/``--metrics-out``: run the command under observability.

    Both expand to :func:`repro.obs.observed` around the whole command
    (fresh instruments, files written on exit). Tracing never changes
    any report's bytes — the acceptance property bench_obs.py checks.
    """
    parser.add_argument("--trace", default=None, metavar="JSONL",
                        help="record a structured trace of the run to this "
                             "JSONL file (digest it with `repro trace`)")
    parser.add_argument("--metrics-out", default=None, dest="metrics_out",
                        metavar="PATH",
                        help="write end-of-run metrics here (Prometheus "
                             "text; .json = canonical stats snapshot)")


def _settings_from_args(args) -> BenchmarkSettings:
    return BenchmarkSettings(
        data_size=DataSize.parse(args.size),
        scale=args.scale,
        seed=args.seed,
        time_requirement=getattr(args, "tr", 3.0),
        think_time=getattr(args, "think_time", 1.0),
        workflows_per_type=getattr(args, "per_type", 10),
    )


def _cmd_generate_data(args) -> int:
    settings = _settings_from_args(args)
    rows = args.rows if args.rows is not None else settings.actual_rows
    if args.seed_csv:
        from repro.data.storage import Table

        seed_table = Table.from_csv(args.seed_csv, name="flights")
    else:
        seed_table = generate_flights_seed(min(rows, 100_000), seed=settings.seed)
    table = scale_dataset(seed_table, rows, seed_value=settings.seed)
    if args.normalize_spec or args.normalize:
        from repro.data.normalize import (
            FLIGHTS_STAR_SPEC,
            load_star_spec,
            normalize,
        )

        specs = (
            load_star_spec(args.normalize_spec)
            if args.normalize_spec
            else FLIGHTS_STAR_SPEC
        )
        dataset = normalize(table, specs)
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, part in dataset.tables.items():
            part.to_csv(out_dir / f"{name}.csv")
        print(
            f"wrote star schema ({', '.join(sorted(dataset.tables))}) "
            f"with {rows} fact rows to {out_dir}/"
        )
    else:
        table.to_csv(args.out)
        print(f"wrote {rows} rows to {args.out}")
    return 0


def _cmd_generate_workflows(args) -> int:
    settings = _settings_from_args(args)
    ctx = ExperimentContext(settings)
    config = None
    if args.config:
        from repro.workflow.generator import WorkloadConfig

        config = WorkloadConfig.from_json(args.config)
    workflows: List[Workflow] = []
    for workflow_type in (
        WorkflowType.INDEPENDENT,
        WorkflowType.SEQUENTIAL,
        WorkflowType.ONE_TO_N,
        WorkflowType.N_TO_ONE,
        WorkflowType.MIXED,
    ):
        workflows.extend(ctx.workflows(workflow_type, args.per_type, config=config))
    paths = save_suite(workflows, args.out)
    print(f"wrote {len(paths)} workflows to {args.out}")
    return 0


def _cmd_view(args) -> int:
    workflow = Workflow.from_json(args.workflow)
    print(render_workflow(workflow, show_sql=args.sql))
    return 0


def _cmd_run(args) -> int:
    settings = _settings_from_args(args)
    ctx = ExperimentContext(settings)
    if args.workflows:
        workflows = load_suite(args.workflows)
    else:
        workflows = ctx.workflows(WorkflowType.MIXED, args.per_type)
    normalized = args.normalized
    dataset = ctx.dataset(settings.data_size, normalized)
    oracle = ctx.oracle(settings.data_size, normalized)
    clock = VirtualClock()
    engine = make_engine(
        args.engine, dataset, settings, clock, speculation=args.speculation
    )
    prep = engine.prepare()
    print(f"{engine.name}: data preparation {prep.minutes:.1f} min (modeled)")
    driver = BenchmarkDriver(engine, oracle, settings)
    records = driver.run_suite(workflows)
    report = DetailedReport(records)
    if args.out:
        report.to_csv(args.out)
        print(f"wrote detailed report ({len(report)} queries) to {args.out}")
    print()
    print(SummaryReport(records).render(
        f"{engine.name} @ TR={settings.time_requirement}s, "
        f"{settings.data_size.name} ({settings.virtual_rows:,} virtual rows)"
    ))
    if args.cdf:
        from repro.bench.plotting import ascii_cdf
        from repro.bench.report import mre_cdf

        print()
        print(ascii_cdf(
            mre_cdf(records, points=41),
            title="CDF of mean relative errors (truncated at 100%)",
        ))
    return 0


def _split(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _make_store(cache_dir: Optional[str], budget: Optional[int]) -> Optional[ArtifactStore]:
    """Build the CLI's artifact store: GC budget applied by default.

    ``budget`` is the ``--cache-budget`` value in bytes; ``0`` disables
    the budget (unbounded store).
    """
    if not cache_dir:
        return None
    max_bytes = None if budget == 0 else budget
    return ArtifactStore(cache_dir, max_bytes=max_bytes)


def _check_engines(engines: List[str]) -> bool:
    """Print a stderr message and return False on unknown engine names."""
    known_engines = list(MAIN_ENGINES) + ["system-y-sim"]
    unknown = [engine for engine in engines if engine not in known_engines]
    if unknown:
        print(
            f"unknown engines: {', '.join(unknown)} "
            f"(choose from {', '.join(known_engines)})",
            file=sys.stderr,
        )
        return False
    return True


def _cmd_run_matrix(args) -> int:
    settings = BenchmarkSettings(
        scale=args.scale,
        seed=args.seed,
        think_time=args.think_time,
        workflows_per_type=args.per_type,
    )
    engines = _split(args.engines)
    if not _check_engines(engines):
        return 1
    specs = plan_matrix(
        settings,
        engines=engines,
        time_requirements=[float(tr) for tr in _split(args.trs)],
        sizes=[DataSize.parse(size) for size in _split(args.sizes)],
        workflow_types=_split(args.workflow_types),
        per_type=args.per_type,
        schemas=_split(args.schemas),
    )
    store = _make_store(args.cache_dir, args.cache_budget)
    if args.resume and store is None:
        print("--resume requires --cache-dir", file=sys.stderr)
        return 1
    if args.resume and args.force:
        print("--resume and --force are mutually exclusive", file=sys.stderr)
        return 1
    executor = MatrixExecutor(
        jobs=args.jobs,
        store=store,
        reuse_results=not args.force,
        progress=None if args.quiet else print,
    )
    print(
        f"run matrix: {len(specs)} cells "
        f"({len(engines)} engines × {len(_split(args.trs))} TRs × "
        f"{len(_split(args.sizes))} sizes × {len(_split(args.workflow_types))} "
        f"workflow types × {len(_split(args.schemas))} schemas), "
        f"jobs={args.jobs}"
        + (f", cache={args.cache_dir}" if args.cache_dir else "")
    )
    started = perf_seconds()
    results = executor.run(specs)
    elapsed = perf_seconds() - started
    print()
    print(render_matrix(results, title="run-matrix summary"))
    cached = sum(result.from_cache for result in results)
    print(
        f"\n{len(results)} cells in {elapsed:.2f}s "
        f"({cached} restored from cache, {len(results) - cached} executed)"
    )
    if store is not None:
        stats = store.stats()
        print(
            f"artifact store: {stats['entries']} artifacts, "
            f"{stats['bytes'] / 1e6:.1f} MB, "
            f"{stats['hits']} hits / {stats['misses']} misses this run"
        )
    if args.out:
        write_matrix_csv(args.out, results)
        print(f"wrote matrix summary ({len(results)} cells) to {args.out}")
    if args.detailed_dir:
        out_dir = Path(args.detailed_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in results:
            if result.records:
                DetailedReport(result.records).to_csv(
                    out_dir / f"{result.spec.cell_id}.csv"
                )
        print(f"wrote per-cell detailed reports to {out_dir}/")
    return 0


def _parse_address(text: str) -> Optional[tuple]:
    """Split ``HOST:PORT`` (port may be 0 for ephemeral); None if malformed."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        return None
    try:
        port = int(port_text)
    except ValueError:
        return None
    if not 0 <= port <= 65535:
        return None
    return host, port


def _cmd_serve_tcp(args, settings) -> int:
    """``repro serve --tcp``: expose the session server over a socket."""
    from repro.net.server import TcpSessionServer

    address = _parse_address(args.tcp)
    if address is None:
        print(
            f"--tcp expects HOST:PORT (port 0 picks an ephemeral port), "
            f"got {args.tcp!r}",
            file=sys.stderr,
        )
        return 1
    blocked = [
        (args.verify, "--verify"),
        (args.arrivals is not None, "--arrivals"),
        (args.arrival_schedule is not None, "--arrival-schedule"),
        (args.horizon is not None, "--horizon"),
        (args.residence is not None, "--residence"),
        (args.follow, "--follow"),
        (args.out is not None, "--out"),
        (args.accel is not None, "--accel"),
        (args.spill is not None, "--spill"),
    ]
    if not args.share_engine:
        # Isolated serving: the workload is configured per connection at
        # ATTACH, so server-side workload flags would be silently dead.
        # Streaming telemetry folds the ONE shared run's global timeline,
        # so it is shared-engine-only too.
        blocked += [
            (args.policy is not None, "--policy"),
            (args.per_session != 2, "--per-session"),
            (args.workflow_type != "mixed", "--workflow-type"),
            (args.stats_window is not None, "--stats-window"),
            (bool(args.slo), "--slo"),
        ]
    offending = [flag for used, flag in blocked if used]
    if offending:
        print(
            f"{', '.join(offending)} cannot combine with --tcp: "
            + (
                "a shared-engine run is configured server-side "
                "(--sessions/--per-session/--workflow-type/--policy), "
                "its reports are reassembled client-side, and the whole "
                "population rides one unpaced virtual timeline "
                "(docs/protocol.md)"
                if args.share_engine
                else "sessions are isolated, their workload (suite "
                "size, workflow type, policy, pacing) is configured per "
                "connection at ATTACH (`repro connect` flags), and "
                "reports are reassembled on the client side "
                "(docs/protocol.md)"
            ),
            file=sys.stderr,
        )
        return 1
    if args.share_engine and args.sessions < 1:
        print(
            "--tcp --share-engine needs --sessions N (N >= 1): the "
            "shared run's global virtual timeline must know its whole "
            "population before the first turn grant",
            file=sys.stderr,
        )
        return 1
    host, port = address
    if args.slo:
        from repro.obs.slo import parse_rule

        try:
            for rule_text in args.slo:
                parse_rule(rule_text)
        except BenchmarkError as error:
            print(str(error), file=sys.stderr)
            return 1
    ctx = ExperimentContext(settings)
    max_sessions = args.sessions if args.sessions > 0 else None
    # Correlation: a deterministic run id is stamped into spans and
    # propagated to clients in HELLO — but only when telemetry is
    # actually on, so plain serves keep byte-identical transcripts.
    run_id = ""
    if args.trace or args.stats_window is not None:
        from repro.common.fingerprint import stable_digest

        run_id = stable_digest({
            "kind": "serve-tcp",
            "engine": args.engine,
            "sessions": args.sessions,
            "per_session": args.per_session,
            "workflow_type": args.workflow_type,
            "seed": settings.seed,
        })
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.set_context(run=run_id, host="server")
    server = TcpSessionServer(
        ctx,
        args.engine,
        host=host,
        port=port,
        max_sessions=max_sessions,
        speculation=args.speculation,
        share_engine=args.share_engine,
        per_session=args.per_session,
        workflow_type=WorkflowType(args.workflow_type),
        policy=args.policy,
        stats_window=args.stats_window,
        slo_rules=tuple(args.slo or ()),
        run_id=run_id,
        on_ready=lambda h, p: print(
            f"listening on {h}:{p} ({args.engine}, "
            + (
                f"ONE shared-engine run of {max_sessions} sessions"
                if args.share_engine
                else (f"up to {max_sessions} sessions" if max_sessions
                      else "serving until interrupted")
            )
            + ") — connect with: repro connect "
            f"{h}:{p}",
            flush=True,
        ),
    )
    try:
        served = server.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        print(f"\ninterrupted after {server.sessions_served} sessions")
        return 0
    print(f"served {served} TCP sessions")
    return 0


def _cmd_serve(args) -> int:
    from repro.server import (
        ArrivalProcess,
        FollowPrinter,
        OpenSystemManager,
        RateSchedule,
        RecordSpool,
        SessionManager,
        render_aggregate_report,
        render_session_table,
        resolve_scheduler,
        serial_baseline,
        total_records,
    )

    settings = BenchmarkSettings(
        data_size=DataSize.parse(args.size),
        scale=args.scale,
        seed=args.seed,
        time_requirement=args.tr,
        think_time=args.think_time,
    )
    if args.tcp is not None:
        return _cmd_serve_tcp(args, settings)
    adaptive = args.policy in ("markov", "uncertainty", "load-adaptive")
    if args.arrivals is None and (
        args.horizon is not None
        or args.residence is not None
        or args.arrival_schedule is not None
    ):
        print(
            "--horizon/--residence/--arrival-schedule configure the "
            "open-system arrival process and need --arrivals RATE; "
            "without it the run is a closed system and they would be "
            "silently ignored",
            file=sys.stderr,
        )
        return 1
    if args.verify and args.share_engine:
        print(
            "--verify needs isolated sessions (omit --share-engine): "
            "under a shared engine sessions contend, so per-session "
            "reports legitimately differ from serial runs",
            file=sys.stderr,
        )
        return 1
    if args.verify and (adaptive or args.arrivals is not None):
        print(
            "--verify compares against pre-generated serial runs, which "
            "adaptive policies and open-system arrivals do not have; "
            "determinism of those modes is checked by "
            "benchmarks/bench_adaptive.py and the golden corpus",
            file=sys.stderr,
        )
        return 1
    if args.spill is not None:
        blocked = [
            flag
            for used, flag in [
                (args.verify, "--verify"),
                (args.out is not None, "--out"),
            ]
            if used
        ]
        if blocked:
            print(
                f"{', '.join(blocked)} cannot combine with --spill: "
                "spooled serving streams records to disk instead of "
                "retaining them, so per-session reports are not "
                "available after the run (read the spill file back "
                "with repro.server.iter_spool)",
                file=sys.stderr,
            )
            return 1
        try:
            if resolve_scheduler(args.scheduler) != "calendar":
                print(
                    "--spill requires the calendar scheduler (drop "
                    "--scheduler tasks / REPRO_SCHEDULER=tasks): the "
                    "legacy task-per-session path retains records by "
                    "construction",
                    file=sys.stderr,
                )
                return 1
        except BenchmarkError as error:
            print(str(error), file=sys.stderr)
            return 1
    ctx = ExperimentContext(settings)
    workflow_type = WorkflowType(args.workflow_type)
    on_record = None
    follow = None
    if args.follow:
        # Per-query lines for small populations; periodic aggregate
        # lines at scale (repro.server.report.FOLLOW_AGGREGATE_THRESHOLD).
        follow = FollowPrinter(args.sessions)
        on_record = follow
    mode = "shared engine" if args.share_engine else "isolated engines"
    pacing = f", paced at {args.accel:g}x" if args.accel else ""
    users = args.policy or "scripted"
    spool = RecordSpool(args.spill) if args.spill is not None else None
    if args.arrivals is not None:
        horizon = args.horizon if args.horizon is not None else 120.0
        try:
            rate_schedule = None
            if args.arrival_schedule is not None:
                rate_schedule = RateSchedule.parse(
                    args.arrival_schedule, args.arrivals, horizon
                )
            arrivals = ArrivalProcess(
                args.arrivals,
                horizon,
                seed=settings.seed,
                mean_residence=args.residence,
                max_sessions=args.sessions,
                rate_schedule=rate_schedule,
            )
        except BenchmarkError as error:
            print(str(error), file=sys.stderr)
            return 1
        manager = OpenSystemManager.for_engine(
            ctx,
            args.engine,
            arrivals,
            policy=args.policy,
            per_session=args.per_session,
            workflow_type=workflow_type,
            share_engine=args.share_engine,
            accel=args.accel,
            speculation=args.speculation,
            on_record=on_record,
            scheduler=args.scheduler,
            spool=spool,
        )
        shape = (
            f"{args.arrival_schedule} schedule @ base {args.arrivals:g}/s"
            if args.arrival_schedule is not None
            else f"Poisson({args.arrivals:g}/s)"
        )
        print(
            f"open system: {shape} arrivals over "
            f"{horizon:g}s (≤{args.sessions} sessions, "
            f"{users} users) on {args.engine} ({mode}{pacing})"
        )
    else:
        manager = SessionManager.for_engine(
            ctx,
            args.engine,
            args.sessions,
            per_session=args.per_session,
            workflow_type=workflow_type,
            share_engine=args.share_engine,
            accel=args.accel,
            speculation=args.speculation,
            on_record=on_record,
            policy=args.policy,
            scheduler=args.scheduler,
            spool=spool,
        )
        print(
            f"serving {args.sessions} sessions × {args.per_session} "
            f"{workflow_type.value} workflows ({users} users) on "
            f"{args.engine} ({mode}{pacing})"
        )
    results = manager.run()
    if follow is not None:
        follow.close()
    if spool is not None:
        spool.close()
        print()
        print(render_aggregate_report(
            manager.aggregate,
            title=f"{args.engine} @ TR={settings.time_requirement}s "
                  f"({mode}, spooled)",
            spill_path=args.spill,
        ))
        print(
            f"\n{spool.count} records spooled in "
            f"{manager.wall_seconds:.2f}s wall"
        )
        return 0
    print()
    print(render_session_table(
        results,
        title=f"{args.engine} @ TR={settings.time_requirement}s, "
              f"{len(results)} sessions ({mode})",
    ))
    departed = sum(r.departed_at is not None for r in results)
    churn = f" ({departed} departed mid-run)" if departed else ""
    print(f"\n{total_records(results)} queries across {len(results)} "
          f"sessions{churn} in {manager.wall_seconds:.2f}s wall")
    # Activity footer: printed *after* the report body, so the table and
    # the per-session CSVs above stay byte-identical to earlier releases.
    total_steps = sum(r.steps for r in results)
    total_interactions = sum(
        sum(r.interaction_counts.values()) for r in results
    )
    print(
        f"driver activity: {total_steps} steps, "
        f"{total_interactions} interactions, {departed} abandoned"
    )
    if args.follow:
        for result in results:
            fired = sum(result.interaction_counts.values())
            flag = " (abandoned)" if result.abandoned else ""
            print(
                f"  {result.session_id}: steps={result.steps} "
                f"interactions={fired}{flag}"
            )
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in results:
            result.detailed_report().to_csv(
                out_dir / f"{result.session_id}.csv"
            )
        print(f"wrote per-session detailed reports to {out_dir}/")
    if args.verify:
        baseline = serial_baseline(
            ctx, args.engine, manager.specs, speculation=args.speculation
        )
        mismatched = [
            result.session_id
            for result, reference in zip(results, baseline)
            if result.csv_text() != reference.csv_text()
        ]
        if mismatched:
            print(
                f"VERIFY FAILED: sessions {', '.join(mismatched)} differ "
                f"from their serial runs",
                file=sys.stderr,
            )
            return 1
        print(
            f"verify: all {len(results)} per-session reports byte-identical "
            f"to serial runs"
        )
    return 0


def _cmd_bench_sessions(args) -> int:
    from repro.server import (
        render_session_bench,
        run_session_bench,
        write_session_bench_csv,
    )

    settings = BenchmarkSettings(
        data_size=DataSize.parse(args.size),
        scale=args.scale,
        seed=args.seed,
        time_requirement=args.tr,
        think_time=args.think_time,
    )
    engines = _split(args.engines)
    if not _check_engines(engines):
        return 1
    session_counts = [int(count) for count in _split(args.sessions)]
    modes = _split(args.modes)
    ctx = ExperimentContext(settings)
    store = _make_store(args.cache_dir, args.cache_budget)
    print(
        f"session load sweep: {len(engines)} engines × "
        f"{len(session_counts)} session counts × {len(modes)} modes, "
        f"{args.per_session} {args.workflow_type} workflows/session"
        + (f", cache={args.cache_dir}" if args.cache_dir else "")
    )
    try:
        cells = run_session_bench(
            ctx,
            engines,
            session_counts,
            per_session=args.per_session,
            workflow_type=WorkflowType(args.workflow_type),
            modes=modes,
            incremental=args.incremental,
            store=store,
            progress=None if args.quiet else print,
        )
    except ValueError as error:
        # run_session_bench validates modes before any cell runs.
        print(str(error), file=sys.stderr)
        return 1
    print()
    print(render_session_bench(cells, title="sessions × engine load report"))
    if args.out:
        write_session_bench_csv(args.out, cells)
        print(f"\nwrote load report ({len(cells)} cells) to {args.out}")
    return 0


def _cmd_bench_adaptive(args) -> int:
    from repro.server import (
        render_adaptive_bench,
        run_adaptive_bench,
        write_adaptive_bench_csv,
    )
    from repro.workflow.policy import POLICY_NAMES

    settings = BenchmarkSettings(
        data_size=DataSize.parse(args.size),
        scale=args.scale,
        seed=args.seed,
        time_requirement=args.tr,
        think_time=args.think_time,
    )
    if not _check_engines([args.engine]):
        return 1
    policies = _split(args.policies)
    known = ("scripted",) + POLICY_NAMES
    unknown = [p for p in policies if p not in known]
    if unknown:
        print(
            f"unknown policies: {', '.join(unknown)} "
            f"(choose from {', '.join(known)})",
            file=sys.stderr,
        )
        return 1
    session_counts = [int(count) for count in _split(args.sessions)]
    churn_modes = _split(args.churn)
    ctx = ExperimentContext(settings)
    store = _make_store(args.cache_dir, args.cache_budget)
    print(
        f"adaptive sweep: {len(policies)} policies × "
        f"{len(session_counts)} session counts × {len(churn_modes)} churn "
        f"modes on {args.engine}, {args.per_session} workflows/session"
        + (f", cache={args.cache_dir}" if args.cache_dir else "")
    )
    try:
        cells = run_adaptive_bench(
            ctx,
            args.engine,
            policies,
            session_counts,
            per_session=args.per_session,
            workflow_type=WorkflowType(args.workflow_type),
            churn_modes=churn_modes,
            arrival_rate=args.arrivals,
            horizon=args.horizon,
            residence=args.residence,
            share_engine=args.share_engine,
            incremental=args.incremental,
            store=store,
            progress=None if args.quiet else print,
        )
    except (ValueError, BenchmarkError) as error:
        # run_adaptive_bench validates churn modes and arrival
        # parameters before any cell runs.
        print(str(error), file=sys.stderr)
        return 1
    print()
    print(render_adaptive_bench(cells, title="sessions × policy × churn report"))
    if args.out:
        write_adaptive_bench_csv(args.out, cells)
        print(f"\nwrote adaptive report ({len(cells)} cells) to {args.out}")
    return 0


def _cmd_connect(args) -> int:
    from repro.net.client import (
        fetch_scripted_session,
        records_csv_text,
        replay_workflow,
    )

    address = _parse_address(args.address)
    if address is None or address[1] == 0:
        print(
            f"connect expects HOST:PORT, got {args.address!r}",
            file=sys.stderr,
        )
        return 1
    host, port = address
    # Correlation: stamp this client's spans with its identity; the
    # server's run id joins the context at HELLO (NetClient.hello).
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    if tracer.enabled:
        tracer.set_context(host=f"client-{args.session}")
    if args.stats:
        from repro.common.fingerprint import canonical_json
        from repro.net.client import fetch_server_stats

        try:
            stats = fetch_server_stats(host, port, timeout=args.timeout)
        except (BenchmarkError, OSError) as error:
            print(f"connect failed: {error}", file=sys.stderr)
            return 1
        print(f"sessions served: {stats.sessions_served}")
        if args.out:
            text = canonical_json(stats.data) + "\n"
            Path(args.out).write_bytes(text.encode("utf-8"))
            print(f"wrote stats snapshot to {args.out}")
        else:
            print(canonical_json(stats.data))
        return 0
    if args.repl:
        from repro.net.repl import Repl

        return Repl(
            host, port, workflow_type=args.workflow_type, timeout=args.timeout
        ).run()
    try:
        if args.replay:
            workflow = Workflow.from_json(args.replay)
            session_id, records, summary = replay_workflow(
                host, port, workflow, accel=args.accel,
                session_index=args.session, timeout=args.timeout,
            )
            print(
                f"replayed {workflow.name!r} ({len(workflow.interactions)} "
                f"interactions) over the wire as session {session_id!r}"
            )
        else:
            session_id, records, summary = fetch_scripted_session(
                host,
                port,
                args.session,
                per_session=args.per_session,
                workflow_type=args.workflow_type,
                policy=args.policy,
                accel=args.accel,
                timeout=args.timeout,
            )
            users = args.policy or "scripted"
            print(
                f"fetched session {session_id!r} ({users}, "
                f"{args.per_session} {args.workflow_type} workflows)"
            )
    except (BenchmarkError, OSError) as error:
        print(f"connect failed: {error}", file=sys.stderr)
        return 1
    violated = sum(record.tr_violated for record in records)
    print(
        f"{summary.queries} queries, {violated} TR-violated, "
        f"virtual makespan {summary.makespan:.2f}s"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8", newline="") as handle:
            handle.write(records_csv_text(records))
        print(f"wrote detailed report ({len(records)} queries) to {args.out}")
    return 0


def _cmd_bench_net(args) -> int:
    from repro.net.bench import (
        render_net_bench,
        render_remote_bench,
        render_shared_net_bench,
        run_net_bench,
        run_remote_bench,
        run_shared_net_bench,
    )

    settings = BenchmarkSettings(
        data_size=DataSize.parse(args.size),
        scale=args.scale,
        seed=args.seed,
        time_requirement=args.tr,
        think_time=args.think_time,
    )
    if not _check_engines([args.engine]):
        return 1
    ctx = ExperimentContext(settings)
    workflow_type = WorkflowType(args.workflow_type)
    if args.remote or args.host is not None:
        host = port = None
        if args.host is not None:
            address = _parse_address(args.host)
            if address is None or address[1] == 0:
                print(
                    f"--host expects HOST:PORT of a running "
                    f"`repro serve --tcp --share-engine` server, got "
                    f"{args.host!r}",
                    file=sys.stderr,
                )
                return 1
            host, port = address
        where = (
            f"against {host}:{port}" if host is not None
            else "against a loopback shared-engine server"
        )
        print(
            f"remote load generation: {args.sessions} `repro connect` "
            f"client processes × {args.per_session} "
            f"{workflow_type.value} workflows {where}"
        )
        try:
            result = run_remote_bench(
                ctx,
                args.engine,
                args.sessions,
                per_session=args.per_session,
                workflow_type=workflow_type,
                host=host,
                port=port,
                trace_dir=Path(args.trace_dir) if args.trace_dir else None,
            )
        except BenchmarkError as error:
            print(str(error), file=sys.stderr)
            return 1
        for line in render_remote_bench(result):
            print(line)
        if args.out:
            with open(args.out, "w", encoding="utf-8", newline="") as handle:
                handle.write(result.report)
            print(f"wrote aggregated contention report to {args.out}")
        print("PASS" if result.ok else "FAIL: remote runs diverged")
        return 0 if result.ok else 1
    print(
        f"net benchmark: {args.sessions} scripted sessions × "
        f"{args.per_session} {workflow_type.value} workflows on "
        f"{args.engine} over loopback TCP"
    )
    result = run_net_bench(
        ctx,
        args.engine,
        args.sessions,
        per_session=args.per_session,
        workflow_type=workflow_type,
    )
    for line in render_net_bench(result):
        print(line)
    shared = run_shared_net_bench(
        ctx,
        args.engine,
        max(2, min(args.sessions, 4)),
        per_session=args.per_session,
        workflow_type=workflow_type,
    )
    for line in render_shared_net_bench(shared):
        print(line)
    ok = result.ok and shared.ok
    print("PASS" if ok else
          "FAIL: TCP reports differ from in-process serve")
    return 0 if ok else 1


def _cmd_trace(args) -> int:
    """``repro trace summary|export|merge``: digest ``--trace`` JSONL files.

    All subcommands read only virtual-time fields, so their output for a
    fixed-seed run is byte-identical across repeats — the two-axis
    contract of docs/observability.md. ``merge`` stitches per-host trace
    files (server + N clients of one correlated run) into one stream
    globally ordered by virtual time, tie-broken by host then seq.
    ``--session``/``--kind`` narrow any action to matching entries.
    """
    from repro.obs.sink import (
        csv_summary,
        entry_line,
        filter_entries,
        iter_jsonl,
        merge_traces,
        render_summary_table,
        write_jsonl,
    )

    if args.action == "merge":
        try:
            merged = merge_traces(args.trace_file)
        except (OSError, BenchmarkError) as error:
            print(f"cannot read trace: {error}", file=sys.stderr)
            return 1
        merged = list(
            filter_entries(merged, session=args.session, kind=args.kind)
        )
        if args.out:
            count = write_jsonl(args.out, merged)
            print(
                f"merged {len(args.trace_file)} trace files "
                f"({count} entries) to {args.out}"
            )
        else:
            for entry in merged:
                sys.stdout.write(entry_line(entry) + "\n")
        return 0
    if len(args.trace_file) != 1:
        print(
            f"trace {args.action} takes exactly one trace file "
            "(use `repro trace merge` to stitch several first)",
            file=sys.stderr,
        )
        return 1
    try:
        entries = list(iter_jsonl(args.trace_file[0]))
    except (OSError, BenchmarkError) as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 1
    entries = list(
        filter_entries(entries, session=args.session, kind=args.kind)
    )
    if args.action == "summary":
        if args.csv:
            sys.stdout.write(csv_summary(entries))
        else:
            sys.stdout.write(render_summary_table(entries))
        return 0
    # export
    if not args.out:
        print("trace export needs --out PATH", file=sys.stderr)
        return 1
    out = Path(args.out)
    if out.suffix == ".jsonl":
        count = write_jsonl(out, entries, virtual_only=True)
        print(f"wrote {count} virtual-time trace lines to {out}")
    else:
        out.write_bytes(csv_summary(entries).encode("utf-8"))
        print(f"wrote trace summary CSV ({len(entries)} entries) to {out}")
    return 0


def _cmd_top(args) -> int:
    """``repro top``: live dashboard over a streaming STATS subscription.

    Connects as a probe (never joins the timeline), subscribes, and
    renders each pushed virtual-time window as one line — rate-limited
    on the wall clock, while the payloads stay byte-deterministic.
    """
    from repro.net.top import run_top

    address = _parse_address(args.address)
    if address is None or address[1] == 0:
        print(f"top expects HOST:PORT, got {args.address!r}", file=sys.stderr)
        return 1
    host, port = address
    try:
        run_top(host, port, interval=args.interval, timeout=args.timeout)
    except (BenchmarkError, OSError) as error:
        print(f"top failed: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args) -> int:
    store = ArtifactStore(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        print(f"artifact store at {store.root}")
        print(f"  entries: {stats['entries']}")
        print(f"  bytes:   {stats['bytes']} ({stats['bytes'] / 1e6:.1f} MB)")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return 0
    # evict: shrink to the byte budget (LRU; hits refresh recency).
    budget = (
        args.max_bytes if args.max_bytes is not None else DEFAULT_CACHE_BUDGET_BYTES
    )
    removed = store.evict(budget)
    stats = store.stats()
    print(
        f"evicted {removed} artifacts from {store.root} "
        f"(budget {budget} bytes; {stats['entries']} entries / "
        f"{stats['bytes']} bytes remain)"
    )
    return 0


def _report_snapshot(args) -> int:
    """``repro report snapshot CSV``: store it under the current revision."""
    from repro.runtime.regression import current_revision, snapshot

    if len(args.extra) != 1:
        print(
            "usage: repro report snapshot CSV [--kind K] [--rev R] [--dir D]",
            file=sys.stderr,
        )
        return 1
    revision = args.rev or current_revision()
    try:
        target = snapshot(args.dir, revision, args.kind, args.extra[0])
    except BenchmarkError as error:
        print(str(error), file=sys.stderr)
        return 1
    print(
        f"snapshot: {args.extra[0]} -> {target} "
        f"(revision {revision}, kind {args.kind})"
    )
    return 0


def _report_diff(args) -> int:
    """``repro report diff REV_A REV_B``: compare two revisions' snapshots."""
    from repro.runtime.regression import diff_revisions, snapshots

    if len(args.extra) != 2:
        known = ", ".join(snapshots(args.dir)) or "none"
        print(
            f"usage: repro report diff REV_A REV_B [--dir D] "
            f"(known revisions: {known})",
            file=sys.stderr,
        )
        return 1
    try:
        identical, report = diff_revisions(args.dir, *args.extra)
    except BenchmarkError as error:
        print(str(error), file=sys.stderr)
        return 1
    print(report)
    if identical:
        print(f"revisions {args.extra[0]} and {args.extra[1]} are identical")
        return 0
    print(
        f"revisions {args.extra[0]} and {args.extra[1]} DIFFER — these "
        f"CSVs are deterministic, so this is a real behavior change"
    )
    return 1


def _cmd_report(args) -> int:
    if args.detailed == "snapshot":
        return _report_snapshot(args)
    if args.detailed == "diff":
        return _report_diff(args)
    if args.extra:
        print(
            f"unexpected arguments {args.extra!r} "
            f"(summary mode takes one CSV path)",
            file=sys.stderr,
        )
        return 1
    # Rebuild a summary from a detailed CSV (settings travel in the rows).
    import csv

    with open(args.detailed, "r", encoding="utf-8", newline="") as handle:
        rows = list(csv.DictReader(handle))
    if not rows:
        print("detailed report is empty", file=sys.stderr)
        return 1
    violated = sum(row["tr_violated"] == "True" for row in rows)
    print(f"queries: {len(rows)}")
    print(f"TR violated: {100.0 * violated / len(rows):.1f}%")
    missing = [float(row["missing_bins"]) for row in rows if row["missing_bins"]]
    if missing:
        print(f"mean missing bins: {sum(missing) / len(missing):.3f}")
    errors = [
        float(row["rel_error_avg"])
        for row in rows
        if row["rel_error_avg"] and row["tr_violated"] == "False"
    ]
    if errors:
        errors.sort()
        median = errors[len(errors) // 2]
        area = sum(min(e, 1.0) for e in errors) / len(errors)
        print(f"MRE median: {median:.3f}")
        print(f"MRE area above CDF (<=100%): {area:.3f}")
    return 0


def _cmd_lint(args) -> int:
    """``repro lint``: statically enforce the byte-determinism contract.

    Exit-code contract (documented in docs/determinism.md and relied on
    by CI): 0 = clean, 1 = findings (or, under ``--strict``, stale
    baseline entries), 2 = usage error (bad path, unparseable source or
    baseline). Argparse itself exits 2 on bad flags, completing the
    contract.
    """
    from repro.analysis import (
        BaselineError,
        DEFAULT_BASELINE_PATH,
        load_baseline,
        render_json,
        render_rule_table,
        render_text,
        run_lint,
    )

    if args.list_rules:
        print(render_rule_table(), end="")
        return 0
    baseline = None
    if not args.no_baseline:
        baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE_PATH
        if baseline_path.exists():
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        elif args.baseline:
            print(f"error: baseline file not found: {baseline_path}",
                  file=sys.stderr)
            return 2
    result = run_lint(args.paths, baseline=baseline)
    render = render_json if args.json_out else render_text
    print(render(result, strict=args.strict), end="")
    return result.exit_code(args.strict)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="idebench-repro",
        description="IDEBench reproduction: benchmark driver CLI",
    )
    parser.add_argument("--log-level", default=None, dest="log_level",
                        choices=["debug", "info", "warning", "error", "silent"],
                        help="structured stderr log threshold (default: "
                             "$REPRO_LOG or warning)")
    parser.add_argument("--no-kernels", action="store_true", dest="no_kernels",
                        help="disable the compiled-query kernel cache and run "
                             "the uncompiled aggregation path (answers are "
                             "bitwise-identical, just slower; also "
                             "$REPRO_KERNELS=off)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_data = sub.add_parser("generate-data", help="generate a scaled flights CSV")
    _add_settings_arguments(p_data)
    p_data.add_argument("--rows", type=int, default=None,
                        help="actual rows to generate (default: size/scale)")
    p_data.add_argument("--out", required=True,
                        help="output CSV path (directory when normalizing)")
    p_data.add_argument("--seed-csv", default=None, dest="seed_csv",
                        help="scale this CSV instead of the synthetic seed")
    p_data.add_argument("--normalize", action="store_true",
                        help="emit the default flights star schema")
    p_data.add_argument("--normalize-spec", default=None, dest="normalize_spec",
                        help="JSON star-schema specification to apply")
    p_data.set_defaults(func=_cmd_generate_data)

    p_wf = sub.add_parser("generate-workflows", help="generate workflow JSON files")
    _add_settings_arguments(p_wf)
    p_wf.add_argument("--per-type", type=int, default=10, dest="per_type")
    p_wf.add_argument("--config", default=None,
                      help="JSON WorkloadConfig with custom probabilities")
    p_wf.add_argument("--out", required=True, help="output directory")
    p_wf.set_defaults(func=_cmd_generate_workflows)

    p_view = sub.add_parser("view", help="inspect a workflow JSON file")
    p_view.add_argument("workflow", help="path to workflow JSON")
    p_view.add_argument("--sql", action="store_true", help="show triggered SQL")
    p_view.set_defaults(func=_cmd_view)

    p_run = sub.add_parser("run", help="run the benchmark on one engine")
    _add_settings_arguments(p_run)
    p_run.add_argument("--engine", default="idea-sim",
                       choices=list(MAIN_ENGINES) + ["system-y-sim"])
    p_run.add_argument("--tr", type=float, default=3.0,
                       help="time requirement in seconds")
    p_run.add_argument("--think-time", type=float, default=1.0, dest="think_time")
    p_run.add_argument("--per-type", type=int, default=10, dest="per_type",
                       help="number of mixed workflows to run")
    p_run.add_argument("--workflows", default=None,
                       help="directory of workflow JSONs (default: generated)")
    p_run.add_argument("--normalized", action="store_true",
                       help="run on the star schema (joins)")
    p_run.add_argument("--speculation", action="store_true",
                       help="enable speculative execution (idea-sim)")
    p_run.add_argument("--out", default=None, help="detailed report CSV path")
    p_run.add_argument("--cdf", action="store_true",
                       help="render the MRE CDF as ASCII (Fig.-5 style)")
    p_run.set_defaults(func=_cmd_run)

    p_matrix = sub.add_parser(
        "run-matrix",
        help="run an engines × TRs × sizes matrix through the parallel runtime",
    )
    p_matrix.add_argument("--engines", default=",".join(MAIN_ENGINES),
                          help="comma-separated engine names")
    p_matrix.add_argument(
        "--trs",
        default=",".join(str(tr) for tr in DEFAULT_TIME_REQUIREMENTS),
        help="comma-separated time requirements (seconds)",
    )
    p_matrix.add_argument("--sizes", default="M",
                          help="comma-separated data sizes (S, M, L)")
    p_matrix.add_argument("--workflow-types", default="mixed",
                          dest="workflow_types",
                          help="comma-separated workflow types")
    p_matrix.add_argument("--schemas", default="denormalized",
                          help="comma-separated schema layouts "
                               "(denormalized, normalized)")
    p_matrix.add_argument("--per-type", type=int, default=10, dest="per_type",
                          help="workflows per workflow type")
    p_matrix.add_argument("--think-time", type=float, default=1.0,
                          dest="think_time")
    p_matrix.add_argument("--scale", type=int, default=1000,
                          help="virtual-to-actual row scale factor")
    p_matrix.add_argument("--seed", type=int, default=42, help="root random seed")
    p_matrix.add_argument("--jobs", type=int, default=1,
                          help="worker processes to shard cells across")
    p_matrix.add_argument("--cache-dir", default=None, dest="cache_dir",
                          help="artifact store directory (enables caching "
                               "and resumption)")
    p_matrix.add_argument("--cache-budget", type=int, dest="cache_budget",
                          default=DEFAULT_CACHE_BUDGET_BYTES,
                          help="store byte budget (LRU eviction; 0 = "
                               "unlimited; default 2 GiB)")
    p_matrix.add_argument("--resume", action="store_true",
                          help="resume a crashed/partial run from --cache-dir "
                               "(cached cell results are reused by default; "
                               "this flag documents intent and validates "
                               "that a cache dir is given)")
    p_matrix.add_argument("--force", action="store_true",
                          help="re-execute every cell even if cached")
    p_matrix.add_argument("--out", default=None,
                          help="matrix summary CSV path (deterministic bytes)")
    p_matrix.add_argument("--detailed-dir", default=None, dest="detailed_dir",
                          help="directory for per-cell detailed CSVs")
    p_matrix.add_argument("--quiet", action="store_true",
                          help="suppress per-cell progress lines")
    p_matrix.set_defaults(func=_cmd_run_matrix)

    p_serve = sub.add_parser(
        "serve",
        help="serve N concurrent simulated IDE sessions (asyncio server)",
    )
    _add_settings_arguments(p_serve)
    p_serve.add_argument("--engine", default="idea-sim",
                         choices=list(MAIN_ENGINES) + ["system-y-sim"])
    p_serve.add_argument("--sessions", type=int, default=4,
                         help="number of concurrent sessions to serve")
    p_serve.add_argument("--per-session", type=int, default=2,
                         dest="per_session",
                         help="workflows per session (seeded per session)")
    p_serve.add_argument("--workflow-type", default="mixed",
                         dest="workflow_type",
                         help="workflow type of the per-session suites")
    p_serve.add_argument("--tr", type=float, default=3.0,
                         help="time requirement in seconds")
    p_serve.add_argument("--think-time", type=float, default=1.0,
                         dest="think_time")
    p_serve.add_argument("--share-engine", action="store_true",
                         dest="share_engine",
                         help="all sessions contend on ONE engine "
                              "(per-session fair scheduling)")
    p_serve.add_argument("--policy", default=None,
                         choices=list(POLICY_NAMES),
                         help="user model: scripted suites (default), "
                              "replayed suites through the policy path, "
                              "or adaptive users that react to what "
                              "they see (load-adaptive also reacts to "
                              "server-side latency/queue signals)")
    p_serve.add_argument("--arrivals", type=float, default=None,
                         help="open-system mode: Poisson arrival rate in "
                              "sessions per virtual second (sessions "
                              "then join mid-run; --sessions caps them)")
    p_serve.add_argument("--arrival-schedule", default=None,
                         dest="arrival_schedule",
                         help="non-stationary arrivals (with --arrivals "
                              "as the base rate): constant, "
                              "diurnal[:amplitude=A,period=P], "
                              "flash[:peak=5x,at=T,width=W], or "
                              "piecewise:T=R,T=R,...")
    p_serve.add_argument("--horizon", type=float, default=None,
                         help="virtual seconds during which arrivals "
                              "occur (with --arrivals; default 120)")
    p_serve.add_argument("--residence", type=float, default=None,
                         help="mean session residence in virtual seconds "
                              "(exponential; sessions then depart "
                              "mid-run, abandoning in-flight queries); "
                              "default: stay to completion")
    p_serve.add_argument("--accel", type=float, default=None,
                         help="pace events to wall time at this "
                              "acceleration (1 = real time; default: "
                              "as fast as possible)")
    p_serve.add_argument("--speculation", action="store_true",
                         help="enable speculative execution (idea-sim)")
    p_serve.add_argument("--follow", action="store_true",
                         help="stream per-query results live as deadlines "
                              "are evaluated")
    p_serve.add_argument("--verify", action="store_true",
                         help="re-run every session serially and check the "
                              "per-session reports are byte-identical")
    p_serve.add_argument("--out", default=None,
                         help="directory for per-session detailed CSVs")
    p_serve.add_argument("--spill", default=None, metavar="PATH",
                         help="constant-memory serving: stream every "
                              "record to a JSONL spill file instead of "
                              "retaining it, and report run-level "
                              "aggregates (how 100k+ sessions fit in "
                              "one process; docs/server.md)")
    p_serve.add_argument("--scheduler", default=None,
                         choices=["calendar", "tasks"],
                         help="session scheduler: the event-calendar "
                              "heap (default) or the legacy "
                              "task-per-session path; REPRO_SCHEDULER "
                              "sets the default")
    p_serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                         help="expose the server over a TCP socket "
                              "instead of serving in-process (port 0 = "
                              "ephemeral; --sessions bounds how many "
                              "connections are served, 0 = forever; "
                              "see docs/protocol.md)")
    p_serve.add_argument("--stats-window", type=float, default=None,
                         dest="stats_window", metavar="SECONDS",
                         help="with --tcp --share-engine: fold live "
                              "telemetry into virtual-time windows of "
                              "this width and push each flushed window "
                              "to STATS_SUBSCRIBE probes (`repro top`)")
    p_serve.add_argument("--slo", action="append", default=None,
                         metavar="RULE",
                         help="with --stats-window: SLO watchdog rule "
                              "METRIC>X or METRIC<X over window fields "
                              "(e.g. pct_tr_violated>25, "
                              "mean_latency>2.5); repeatable; alerts "
                              "ride the pushed windows and the trace")
    _add_obs_arguments(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_connect = sub.add_parser(
        "connect",
        help="connect to a repro TCP session server (client or REPL)",
    )
    p_connect.add_argument("address", metavar="HOST:PORT",
                           help="address of a running `repro serve --tcp`")
    p_connect.add_argument("--session", type=int, default=0,
                           help="scripted mode: server-side session index "
                                "to run (its seeded suite); on a "
                                "shared-engine server this is the "
                                "timeline slot to claim (also with "
                                "--replay)")
    p_connect.add_argument("--per-session", type=int, default=1,
                           dest="per_session",
                           help="scripted mode: workflows per session")
    p_connect.add_argument("--workflow-type", default="mixed",
                           dest="workflow_type",
                           help="workflow type of the scripted suite "
                                "(or REPL session label)")
    p_connect.add_argument("--policy", default=None,
                           choices=list(POLICY_NAMES),
                           help="scripted mode: run this adaptive policy "
                                "server-side instead of the suite")
    p_connect.add_argument("--replay", default=None, metavar="WORKFLOW_JSON",
                           help="drive a client-mode session by sending "
                                "this workflow's interactions over the "
                                "wire")
    p_connect.add_argument("--repl", action="store_true",
                           help="interactive client-driven session "
                                "(load/send/records/detach commands)")
    p_connect.add_argument("--accel", type=float, default=None,
                           help="ask the server to pace this session to "
                                "wall time at this acceleration")
    p_connect.add_argument("--timeout", type=float, default=60.0,
                           help="socket timeout in seconds")
    p_connect.add_argument("--stats", action="store_true",
                           help="pull the server's live metrics/profile "
                                "snapshot (STATS message) instead of "
                                "attaching a session; --out writes the "
                                "canonical-JSON payload")
    p_connect.add_argument("--out", default=None,
                           help="detailed report CSV path (reassembled "
                                "client-side; byte-identical to the "
                                "server's); with --stats: the stats "
                                "snapshot JSON")
    _add_obs_arguments(p_connect)
    p_connect.set_defaults(func=_cmd_connect)

    p_top = sub.add_parser(
        "top",
        help="live dashboard over a server's streaming telemetry "
             "(STATS_SUBSCRIBE probe; shared-engine --stats-window runs)",
    )
    p_top.add_argument("address", metavar="HOST:PORT",
                       help="address of a running `repro serve --tcp "
                            "--share-engine --stats-window W` server")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="minimum wall seconds between rendered "
                            "frames (alert and final frames always "
                            "render; payloads stay deterministic)")
    p_top.add_argument("--timeout", type=float, default=60.0,
                       help="socket timeout in seconds")
    p_top.set_defaults(func=_cmd_top)

    p_bench_net = sub.add_parser(
        "bench-net",
        help="loopback TCP benchmark: byte-equivalence + round-trip "
             "overhead vs in-process serving",
    )
    _add_settings_arguments(p_bench_net)
    p_bench_net.add_argument("--engine", default="idea-sim",
                             choices=list(MAIN_ENGINES) + ["system-y-sim"])
    p_bench_net.add_argument("--sessions", type=int, default=2,
                             help="scripted sessions to compare")
    p_bench_net.add_argument("--per-session", type=int, default=1,
                             dest="per_session",
                             help="workflows per session")
    p_bench_net.add_argument("--workflow-type", default="mixed",
                             dest="workflow_type",
                             help="workflow type of the per-session suites")
    p_bench_net.add_argument("--tr", type=float, default=3.0,
                             help="time requirement in seconds")
    p_bench_net.add_argument("--think-time", type=float, default=1.0,
                             dest="think_time")
    p_bench_net.add_argument("--remote", action="store_true",
                             help="remote load generation: spawn "
                                  "--sessions real `repro connect` "
                                  "client processes against one "
                                  "shared-engine server and aggregate "
                                  "their client-side CSVs into one "
                                  "deterministic contention report")
    p_bench_net.add_argument("--host", default=None, metavar="HOST:PORT",
                             help="with --remote: target an "
                                  "already-running `repro serve --tcp "
                                  "--share-engine` server instead of a "
                                  "loopback one (no reference check)")
    p_bench_net.add_argument("--out", default=None,
                             help="with --remote: write the aggregated "
                                  "contention report to this file")
    p_bench_net.add_argument("--trace-dir", default=None, dest="trace_dir",
                             metavar="DIR",
                             help="with --remote: each client process "
                                  "writes its correlated trace to "
                                  "DIR/client-N.jsonl (stitch with "
                                  "`repro trace merge`)")
    _add_obs_arguments(p_bench_net)
    p_bench_net.set_defaults(func=_cmd_bench_net)

    p_bench = sub.add_parser(
        "bench-sessions",
        help="sessions × engine load report for the session server",
    )
    _add_settings_arguments(p_bench)
    p_bench.add_argument("--engines", default="idea-sim",
                         help="comma-separated engine names")
    p_bench.add_argument("--sessions", default="1,2,4",
                         help="comma-separated session counts")
    p_bench.add_argument("--modes", default="isolated,shared",
                         help="comma-separated serving modes "
                              "(isolated, shared)")
    p_bench.add_argument("--per-session", type=int, default=2,
                         dest="per_session",
                         help="workflows per session")
    p_bench.add_argument("--workflow-type", default="mixed",
                         dest="workflow_type",
                         help="workflow type of the per-session suites")
    p_bench.add_argument("--tr", type=float, default=3.0,
                         help="time requirement in seconds")
    p_bench.add_argument("--think-time", type=float, default=1.0,
                         dest="think_time")
    p_bench.add_argument("--cache-dir", default=None, dest="cache_dir",
                         help="artifact store directory (cells restore on "
                              "re-run)")
    p_bench.add_argument("--cache-budget", type=int, dest="cache_budget",
                         default=DEFAULT_CACHE_BUDGET_BYTES,
                         help="store byte budget (LRU eviction; 0 = "
                              "unlimited; default 2 GiB)")
    p_bench.add_argument("--out", default=None,
                         help="load report CSV path (deterministic bytes)")
    p_bench.add_argument("--incremental", action="store_true",
                         help="fold each cell incrementally instead of "
                              "retaining every record (constant memory "
                              "per cell; skips the cell cache)")
    p_bench.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress lines")
    _add_obs_arguments(p_bench)
    p_bench.set_defaults(func=_cmd_bench_sessions)

    p_adaptive = sub.add_parser(
        "bench-adaptive",
        help="sessions × policy × churn report (adaptive + open system)",
    )
    _add_settings_arguments(p_adaptive)
    p_adaptive.add_argument("--engine", default="idea-sim",
                            choices=list(MAIN_ENGINES) + ["system-y-sim"])
    p_adaptive.add_argument("--policies",
                            default="replay,markov,uncertainty",
                            help="comma-separated user models (scripted, "
                                 "replay, markov, uncertainty)")
    p_adaptive.add_argument("--sessions", default="2,4",
                            help="comma-separated session counts (open "
                                 "cells treat them as arrival caps)")
    p_adaptive.add_argument("--churn", default="closed,open",
                            help="comma-separated churn modes "
                                 "(closed, open)")
    p_adaptive.add_argument("--per-session", type=int, default=1,
                            dest="per_session",
                            help="workflows per session")
    p_adaptive.add_argument("--workflow-type", default="mixed",
                            dest="workflow_type",
                            help="workflow type of scripted/markov "
                                 "sessions")
    p_adaptive.add_argument("--tr", type=float, default=3.0,
                            help="time requirement in seconds")
    p_adaptive.add_argument("--think-time", type=float, default=1.0,
                            dest="think_time")
    p_adaptive.add_argument("--arrivals", type=float, default=0.1,
                            dest="arrivals",
                            help="open cells: Poisson arrival rate "
                                 "(sessions per virtual second)")
    p_adaptive.add_argument("--horizon", type=float, default=60.0,
                            help="open cells: arrival horizon in virtual "
                                 "seconds")
    p_adaptive.add_argument("--residence", type=float, default=30.0,
                            help="open cells: mean session residence in "
                                 "virtual seconds")
    p_adaptive.add_argument("--share-engine", action="store_true",
                            dest="share_engine",
                            help="sessions contend on ONE engine per cell")
    p_adaptive.add_argument("--cache-dir", default=None, dest="cache_dir",
                            help="artifact store directory (cells restore "
                                 "on re-run)")
    p_adaptive.add_argument("--cache-budget", type=int, dest="cache_budget",
                            default=DEFAULT_CACHE_BUDGET_BYTES,
                            help="store byte budget (LRU eviction; 0 = "
                                 "unlimited; default 2 GiB)")
    p_adaptive.add_argument("--incremental", action="store_true",
                            help="fold each cell incrementally instead "
                                 "of retaining every record (constant "
                                 "memory per cell; skips the cell cache)")
    p_adaptive.add_argument("--out", default=None,
                            help="adaptive report CSV path "
                                 "(deterministic bytes)")
    p_adaptive.add_argument("--quiet", action="store_true",
                            help="suppress per-cell progress lines")
    _add_obs_arguments(p_adaptive)
    p_adaptive.set_defaults(func=_cmd_bench_adaptive)

    p_trace = sub.add_parser(
        "trace",
        help="summarize or export a structured trace captured with --trace",
    )
    p_trace.add_argument("action", choices=["summary", "export", "merge"],
                         help="summary: deterministic per-span digest; "
                              "export: virtual-time-only JSONL (--out "
                              "*.jsonl) or summary CSV (--out *.csv); "
                              "merge: stitch per-host trace files into "
                              "one stream globally ordered by virtual "
                              "time (vt, then host, then seq)")
    p_trace.add_argument("trace_file", metavar="TRACE_JSONL", nargs="+",
                         help="trace file(s) written by --trace runs "
                              "(summary/export take one; merge takes "
                              "many)")
    p_trace.add_argument("--csv", action="store_true",
                         help="summary: print the CSV form instead of "
                              "the table")
    p_trace.add_argument("--session", default=None, metavar="NAME",
                         help="keep only entries of this session")
    p_trace.add_argument("--kind", default=None, metavar="KIND",
                         help="keep only entries of this kind (e.g. "
                              "span, event)")
    p_trace.add_argument("--out", default=None,
                         help="export: output path (.jsonl = virtual-only "
                              "trace, anything else = summary CSV); "
                              "merge: merged JSONL path (stdout if "
                              "omitted)")
    p_trace.set_defaults(func=_cmd_trace)

    p_lint = sub.add_parser(
        "lint",
        help="statically enforce the byte-determinism contract "
             "(AST rules DET001-DET006; see docs/determinism.md)",
        description="Determinism sentinel: lints python sources against "
                    "the byte-determinism contract (wall-clock reads, "
                    "salted hash(), unstable iteration, unseeded RNG, "
                    "set-repr seeding, trace wall leaks). Exit codes: "
                    "0 clean, 1 findings, 2 usage error.",
    )
    p_lint.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                        help="files or directories to lint "
                             "(default: src)")
    p_lint.add_argument("--json", action="store_true", dest="json_out",
                        help="emit the machine-readable JSON report "
                             "instead of text")
    p_lint.add_argument("--strict", action="store_true",
                        help="also fail (exit 1) on stale baseline "
                             "entries — the CI gate mode")
    p_lint.add_argument("--baseline", default=None, metavar="JSON",
                        help="baseline file of grandfathered findings "
                             "(default: tools/lint_baseline.json if "
                             "present)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        dest="no_baseline",
                        help="ignore any baseline file: report every "
                             "finding")
    p_lint.add_argument("--list-rules", action="store_true",
                        dest="list_rules",
                        help="print the rule catalog and exit")
    p_lint.set_defaults(func=_cmd_lint)

    p_cache = sub.add_parser(
        "cache",
        help="inspect and garbage-collect an artifact store",
    )
    p_cache.add_argument("action", choices=["stats", "clear", "evict"],
                         help="stats: entry/byte counts; clear: remove "
                              "everything; evict: LRU-shrink to a byte "
                              "budget")
    p_cache.add_argument("--cache-dir", required=True, dest="cache_dir",
                         help="artifact store directory")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         dest="max_bytes",
                         help="evict: byte budget to shrink to "
                              "(default: the 2 GiB default budget)")
    p_cache.set_defaults(func=_cmd_cache)

    p_rep = sub.add_parser(
        "report",
        help="summarize a detailed CSV, or snapshot/diff deterministic "
             "reports across git revisions",
    )
    p_rep.add_argument("detailed",
                       help="path to a detailed report CSV to summarize, "
                            "or the keyword 'snapshot' (store a "
                            "deterministic CSV under a revision) or "
                            "'diff' (compare two revisions' snapshots)")
    p_rep.add_argument("extra", nargs="*",
                       help="snapshot: the CSV to store; diff: REV_A REV_B")
    p_rep.add_argument("--dir", default=".repro-regress",
                       help="snapshot directory (default .repro-regress)")
    p_rep.add_argument("--kind", default="matrix",
                       help="snapshot label, e.g. matrix, sessions, "
                            "adaptive (default matrix)")
    p_rep.add_argument("--rev", default=None,
                       help="snapshot revision (default: git rev-parse "
                            "--short HEAD, else 'worktree')")
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``idebench-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    log.configure(args.log_level)
    if getattr(args, "no_kernels", False):
        from repro.engines.kernel_cache import set_kernels_enabled

        set_kernels_enabled(False)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    if trace_path or metrics_path:
        from repro.obs import observed

        with observed(trace_path=trace_path, metrics_path=metrics_path):
            code = args.func(args)
        if trace_path:
            print(f"wrote trace to {trace_path}")
        if metrics_path:
            print(f"wrote metrics to {metrics_path}")
        return code
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
