"""Predicate trees and vectorized filter evaluation.

Filters originate from two user actions (§2.2): explicitly added filter
widgets (range sliders on quantitative columns, category pickers on nominal
ones) and *selections* on linked visualizations, which the driver converts
to predicates over the selected bins (see
:meth:`repro.workflow.graph.VizGraph.effective_filter`).

The tree grammar is small on purpose — conjunctions/disjunctions over
range, set and comparison leaves — because that is exactly what the visual
frontends of Fig. 1 can express. Each node serializes to/from JSON (the
workflow file format) and evaluates to a boolean numpy mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import QueryError

#: A function resolving a logical column name to its value array.
ColumnGetter = Callable[[str], np.ndarray]


class Filter:
    """Base class for all predicate nodes."""

    def evaluate(self, get_column: ColumnGetter) -> np.ndarray:
        """Return a boolean mask of the rows satisfying this predicate."""
        raise NotImplementedError

    def fields(self) -> Tuple[str, ...]:
        """All column names referenced (used for cost models and joins)."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-compatible representation (inverse of :func:`filter_from_dict`)."""
        raise NotImplementedError


@dataclass(frozen=True)
class RangePredicate(Filter):
    """``low <= column < high`` — the predicate a quantitative bin or range
    slider produces. Either bound may be None (unbounded)."""

    field: str
    low: Union[float, None]
    high: Union[float, None]

    def __post_init__(self):
        if self.low is None and self.high is None:
            raise QueryError(f"range predicate on {self.field!r} needs a bound")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise QueryError(
                f"range predicate on {self.field!r} has low {self.low} > high {self.high}"
            )

    def evaluate(self, get_column: ColumnGetter) -> np.ndarray:
        values = get_column(self.field)
        if values.dtype.kind not in ("i", "f"):
            raise QueryError(
                f"range predicate on non-numeric column {self.field!r}"
            )
        mask = np.ones(len(values), dtype=bool)
        if self.low is not None:
            mask &= values >= self.low
        if self.high is not None:
            mask &= values < self.high
        return mask

    def fields(self) -> Tuple[str, ...]:
        return (self.field,)

    def to_dict(self) -> dict:
        return {"type": "range", "field": self.field, "low": self.low, "high": self.high}


@dataclass(frozen=True)
class SetPredicate(Filter):
    """``column IN {values}`` — what a nominal category picker produces."""

    field: str
    values: FrozenSet[str]

    def __post_init__(self):
        if not self.values:
            raise QueryError(f"set predicate on {self.field!r} needs values")

    def evaluate(self, get_column: ColumnGetter) -> np.ndarray:
        column = get_column(self.field)
        return np.isin(column.astype(str), sorted(self.values))

    def fields(self) -> Tuple[str, ...]:
        return (self.field,)

    def __repr__(self) -> str:
        # The default dataclass repr would print the frozenset in hash
        # order, which varies per process (PYTHONHASHSEED) — and engines
        # derive rotation seeds from str(query), so the repr must be
        # canonical for runs to be reproducible across processes.
        return f"SetPredicate(field={self.field!r}, values={sorted(self.values)!r})"

    def to_dict(self) -> dict:
        return {"type": "in", "field": self.field, "values": sorted(self.values)}


_COMPARISON_OPS: Dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "<": lambda col, v: col < v,
    "<=": lambda col, v: col <= v,
    ">": lambda col, v: col > v,
    ">=": lambda col, v: col >= v,
    "=": lambda col, v: col == v,
    "!=": lambda col, v: col != v,
}


@dataclass(frozen=True)
class Comparison(Filter):
    """A single comparison ``column OP value``.

    ``value`` may be numeric or a string; ``=``/``!=`` work on both kinds,
    the ordering operators require a numeric column.
    """

    field: str
    op: str
    value: Union[float, str]

    def __post_init__(self):
        if self.op not in _COMPARISON_OPS:
            raise QueryError(
                f"unknown comparison operator {self.op!r}; "
                f"expected one of {sorted(_COMPARISON_OPS)}"
            )
        if self.op not in ("=", "!=") and isinstance(self.value, str):
            raise QueryError(
                f"operator {self.op!r} requires a numeric value, got {self.value!r}"
            )

    def evaluate(self, get_column: ColumnGetter) -> np.ndarray:
        column = get_column(self.field)
        value = self.value
        if isinstance(value, str):
            column = column.astype(str)
        elif column.dtype.kind not in ("i", "f"):
            raise QueryError(
                f"numeric comparison on non-numeric column {self.field!r}"
            )
        return _COMPARISON_OPS[self.op](column, value)

    def fields(self) -> Tuple[str, ...]:
        return (self.field,)

    def to_dict(self) -> dict:
        return {"type": "cmp", "field": self.field, "op": self.op, "value": self.value}


class _Combinator(Filter):
    """Shared machinery of :class:`And` / :class:`Or`."""

    _children: Tuple[Filter, ...]

    def __init__(self, *children: Filter):
        flattened: List[Filter] = []
        for child in children:
            if not isinstance(child, Filter):
                raise QueryError(f"expected Filter, got {type(child).__name__}")
            # Flatten nested combinators of the same type for canonical form.
            if type(child) is type(self):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        if not flattened:
            raise QueryError(f"{type(self).__name__} needs at least one child")
        self._children = tuple(flattened)

    @property
    def children(self) -> Tuple[Filter, ...]:
        return self._children

    def fields(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for child in self._children:
            for field in child.fields():
                if field not in seen:
                    seen.append(field)
        return tuple(seen)

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._children == other._children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._children))

    def __repr__(self) -> str:
        inner = ", ".join(repr(child) for child in self._children)
        return f"{type(self).__name__}({inner})"


class And(_Combinator):
    """Conjunction of predicates (the dominant form: incremental filtering)."""

    def evaluate(self, get_column: ColumnGetter) -> np.ndarray:
        mask = self._children[0].evaluate(get_column)
        for child in self._children[1:]:
            mask = mask & child.evaluate(get_column)
        return mask

    def to_dict(self) -> dict:
        return {"type": "and", "children": [c.to_dict() for c in self._children]}


class Or(_Combinator):
    """Disjunction — selections of several bins OR their predicates."""

    def evaluate(self, get_column: ColumnGetter) -> np.ndarray:
        mask = self._children[0].evaluate(get_column)
        for child in self._children[1:]:
            mask = mask | child.evaluate(get_column)
        return mask

    def to_dict(self) -> dict:
        return {"type": "or", "children": [c.to_dict() for c in self._children]}


def evaluate_filter(
    filter_expr: Union[Filter, None], get_column: ColumnGetter, num_rows: int
) -> np.ndarray:
    """Evaluate an optional filter; ``None`` selects all rows."""
    if filter_expr is None:
        return np.ones(num_rows, dtype=bool)
    mask = filter_expr.evaluate(get_column)
    if mask.shape != (num_rows,):
        raise QueryError(
            f"filter produced mask of shape {mask.shape}, expected ({num_rows},)"
        )
    return mask


def filter_from_dict(data: Union[dict, None]) -> Union[Filter, None]:
    """Deserialize a predicate tree from its JSON form."""
    if data is None:
        return None
    kind = data.get("type")
    if kind == "range":
        return RangePredicate(data["field"], data.get("low"), data.get("high"))
    if kind == "in":
        return SetPredicate(data["field"], frozenset(data["values"]))
    if kind == "cmp":
        return Comparison(data["field"], data["op"], data["value"])
    if kind == "and":
        return And(*[filter_from_dict(child) for child in data["children"]])
    if kind == "or":
        return Or(*[filter_from_dict(child) for child in data["children"]])
    raise QueryError(f"unknown filter node type {kind!r}")


def conjoin(parts: Sequence[Union[Filter, None]]) -> Union[Filter, None]:
    """AND together the non-None parts (None if none remain).

    The driver uses this to compose a visualization's own filter with the
    selection filters arriving through incoming links.
    """
    present = [part for part in parts if part is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return And(*present)
