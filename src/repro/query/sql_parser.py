"""Round-trip parser for the Fig.-4 SQL emitted by :mod:`repro.query.sql`.

A real IDEBench deployment hands SQL to external systems (§4.4: the
driver "automatically translates queries to SQL"); adapters that
*receive* SQL (e.g. a proxy in front of an actual DBMS) need to get the
structured query back. This module implements a tokenizer plus a recursive-
descent parser for exactly the statement shape :func:`query_to_sql`
produces::

    SELECT <bin-expr> AS bin_0 [, ...], <agg> AS <label> [, ...]
    FROM <table>
    [JOIN <dim> AS <alias> ON <fact>.<fk> = <alias>.<key>]*
    [WHERE <boolean-expr>]
    GROUP BY bin_0 [, ...]

The parser reconstructs an :class:`AggQuery`; when given the
:class:`Dataset` the SQL was generated against, dimension-table columns
are resolved back to their logical (de-normalized) names, making
``parse_sql(query_to_sql(q, ds), ds)`` semantically identical to ``q``
(tests assert both structural and mask-level equivalence).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import SQLParseError
from repro.data.storage import Dataset
from repro.query.filters import (
    And,
    Comparison,
    Filter,
    Or,
    RangePredicate,
    SetPredicate,
)
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),.*/+\-])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND", "OR", "IN",
    "JOIN", "ON", "FLOOR", "COUNT", "SUM", "AVG", "MIN", "MAX",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "op" | "punct"
    text: str


def tokenize(sql: str) -> List[_Token]:
    """Split a statement into tokens, upper-casing keywords."""
    tokens: List[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SQLParseError(
                f"unexpected character {sql[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        text = match.group()
        if kind == "ident" and text.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", text.upper()))
        else:
            tokens.append(_Token(kind, text))
    return tokens


class _TokenStream:
    """Cursor over the token list with expectation helpers."""

    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self._index + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SQLParseError("unexpected end of statement")
        self._index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            expected = f"{kind} {text!r}" if text else kind
            raise SQLParseError(
                f"expected {expected}, got {token.kind} {token.text!r}"
            )
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token is not None and token.kind == kind and (text is None or token.text == text):
            self._index += 1
            return token
        return None

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def _parse_number(text: str) -> float:
    value = float(text)
    return value


@dataclass
class _SelectItem:
    label: str
    bin_dim: Optional[BinDimension] = None
    aggregate: Optional[Aggregate] = None
    source_column: Optional[str] = None  # nominal bin column (possibly qualified)


class _Parser:
    """Recursive-descent parser for generated statements."""

    def __init__(self, sql: str, dataset: Optional[Dataset] = None):
        self._stream = _TokenStream(tokenize(sql))
        self._dataset = dataset
        # Aliases are deterministic (``t_<fk column>``), so the map can be
        # built upfront — the SELECT list references them before the JOIN
        # clauses have been parsed.
        self._alias_to_fk: Dict[str, object] = {}
        if dataset is not None:
            for fk in dataset.foreign_keys:
                self._alias_to_fk[f"t_{fk.fact_column.lower()}"] = fk

    # -- entry point ----------------------------------------------------
    def parse(self) -> AggQuery:
        self._stream.expect("keyword", "SELECT")
        items = [self._parse_select_item()]
        while self._stream.accept("punct", ","):
            items.append(self._parse_select_item())
        self._stream.expect("keyword", "FROM")
        table = self._stream.expect("ident").text
        self._parse_joins()
        filter_expr: Optional[Filter] = None
        if self._stream.accept("keyword", "WHERE"):
            filter_expr = self._parse_or_expr()
        self._stream.expect("keyword", "GROUP")
        self._stream.expect("keyword", "BY")
        group_labels = [self._stream.expect("ident").text]
        while self._stream.accept("punct", ","):
            group_labels.append(self._stream.expect("ident").text)
        if not self._stream.exhausted:
            token = self._stream.peek()
            raise SQLParseError(f"trailing input at {token.text!r}")

        bins, aggregates = self._assemble(items, group_labels)
        logical_table = self._logical_table_name(table)
        return AggQuery(
            table=logical_table,
            bins=tuple(bins),
            aggregates=tuple(aggregates),
            filter=filter_expr,
        )

    # -- pieces ----------------------------------------------------------
    def _parse_select_item(self) -> _SelectItem:
        token = self._stream.peek()
        if token is None:
            raise SQLParseError("unexpected end in SELECT list")
        if token.kind == "keyword" and token.text == "FLOOR":
            item = self._parse_floor_bin()
        elif token.kind == "keyword" and token.text in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            item = self._parse_aggregate()
        elif token.kind == "ident":
            column = self._parse_column_ref()
            item = _SelectItem(label="", source_column=column)
        else:
            raise SQLParseError(f"unexpected token {token.text!r} in SELECT list")
        self._stream.expect("keyword", "AS")
        item.label = self._parse_label()
        return item

    def _parse_label(self) -> str:
        # Labels like ``count`` collide with keywords; accept both forms.
        token = self._stream.next()
        if token.kind not in ("ident", "keyword"):
            raise SQLParseError(f"expected label, got {token.text!r}")
        return token.text if token.kind == "ident" else token.text.lower()

    def _parse_floor_bin(self) -> _SelectItem:
        self._stream.expect("keyword", "FLOOR")
        self._stream.expect("punct", "(")
        self._stream.expect("punct", "(")
        column = self._parse_column_ref()
        self._stream.expect("punct", "-")
        reference = self._parse_signed_number()
        self._stream.expect("punct", ")")
        self._stream.expect("punct", "/")
        width = self._parse_signed_number()
        self._stream.expect("punct", ")")
        dim = BinDimension(
            field=column,
            kind=BinKind.QUANTITATIVE,
            width=width,
            reference=reference,
        )
        return _SelectItem(label="", bin_dim=dim)

    def _parse_aggregate(self) -> _SelectItem:
        func_token = self._stream.next()
        func = AggFunc(func_token.text.lower())
        self._stream.expect("punct", "(")
        if func is AggFunc.COUNT:
            self._stream.expect("punct", "*")
            self._stream.expect("punct", ")")
            return _SelectItem(label="", aggregate=Aggregate(AggFunc.COUNT))
        column = self._parse_column_ref()
        self._stream.expect("punct", ")")
        return _SelectItem(label="", aggregate=Aggregate(func, column))

    def _parse_column_ref(self) -> str:
        first = self._stream.expect("ident").text
        if self._stream.accept("punct", "."):
            second = self._stream.expect("ident").text
            return self._resolve_qualified(first, second)
        return first

    def _parse_signed_number(self) -> float:
        token = self._stream.next()
        if token.kind != "number":
            raise SQLParseError(f"expected number, got {token.text!r}")
        return _parse_number(token.text)

    def _parse_joins(self) -> None:
        while self._stream.accept("keyword", "JOIN"):
            dim_table = self._stream.expect("ident").text
            self._stream.expect("keyword", "AS")
            alias = self._stream.expect("ident").text
            self._stream.expect("keyword", "ON")
            self._parse_column_ref_raw()
            self._stream.expect("op", "=")
            self._parse_column_ref_raw()
            fk = self._alias_to_fk.get(alias)
            if fk is not None and fk.dim_table != dim_table:
                raise SQLParseError(
                    f"alias {alias!r} joins {dim_table!r} but the dataset "
                    f"maps it to {fk.dim_table!r}"
                )

    def _parse_column_ref_raw(self) -> Tuple[str, Optional[str]]:
        first = self._stream.expect("ident").text
        if self._stream.accept("punct", "."):
            return first, self._stream.expect("ident").text
        return first, None

    def _resolve_qualified(self, qualifier: str, column: str) -> str:
        """Map ``alias.dim_column`` back to the logical column name."""
        fk = self._alias_to_fk.get(qualifier)
        if fk is not None:
            for denorm, dim_col in fk.attribute_map:
                if dim_col == column:
                    return denorm
            raise SQLParseError(
                f"column {column!r} not part of dimension alias {qualifier!r}"
            )
        # Fact-table qualification: ``fact.column`` → ``column``.
        return column

    def _logical_table_name(self, physical: str) -> str:
        if physical.endswith("_fact"):
            return physical[: -len("_fact")]
        return physical

    # -- WHERE grammar ----------------------------------------------------
    def _parse_or_expr(self) -> Filter:
        parts = [self._parse_and_expr()]
        while self._stream.accept("keyword", "OR"):
            parts.append(self._parse_and_expr())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def _parse_and_expr(self) -> Filter:
        parts = [self._parse_predicate()]
        while self._stream.accept("keyword", "AND"):
            parts.append(self._parse_predicate())
        if len(parts) == 1:
            return parts[0]
        return _canonicalize_and(parts)

    def _parse_predicate(self) -> Filter:
        if self._stream.accept("punct", "("):
            inner = self._parse_or_expr()
            self._stream.expect("punct", ")")
            return inner
        column = self._parse_column_ref()
        if self._stream.accept("keyword", "IN"):
            self._stream.expect("punct", "(")
            values = [self._parse_literal()]
            while self._stream.accept("punct", ","):
                values.append(self._parse_literal())
            self._stream.expect("punct", ")")
            return SetPredicate(column, frozenset(str(v) for v in values))
        op_token = self._stream.next()
        if op_token.kind != "op":
            raise SQLParseError(f"expected comparison operator, got {op_token.text!r}")
        value = self._parse_literal()
        return Comparison(column, op_token.text, value)

    def _parse_literal(self) -> Union[float, str]:
        token = self._stream.next()
        if token.kind == "number":
            return _parse_number(token.text)
        if token.kind == "string":
            return _unquote(token.text)
        raise SQLParseError(f"expected literal, got {token.text!r}")

    # -- assembly ----------------------------------------------------------
    def _assemble(
        self, items: List[_SelectItem], group_labels: List[str]
    ) -> Tuple[List[BinDimension], List[Aggregate]]:
        by_label = {item.label: item for item in items}
        if len(by_label) != len(items):
            raise SQLParseError("duplicate SELECT labels")
        bins: List[BinDimension] = []
        for label in group_labels:
            item = by_label.get(label)
            if item is None:
                raise SQLParseError(f"GROUP BY references unknown label {label!r}")
            if item.bin_dim is not None:
                bins.append(item.bin_dim)
            elif item.source_column is not None:
                bins.append(BinDimension(item.source_column, BinKind.NOMINAL))
            else:
                raise SQLParseError(f"GROUP BY label {label!r} is an aggregate")
        aggregates = [item.aggregate for item in items if item.aggregate is not None]
        if not aggregates:
            raise SQLParseError("statement has no aggregate functions")
        return bins, aggregates


def _canonicalize_and(parts: List[Filter]) -> Filter:
    """Fuse ``col >= lo AND col < hi`` comparison pairs into ranges.

    The SQL generator renders :class:`RangePredicate` as that comparison
    pair; fusing them back makes generate→parse a structural round-trip.
    """
    lows: Dict[str, float] = {}
    highs: Dict[str, float] = {}
    others: List[Filter] = []
    for part in parts:
        if isinstance(part, Comparison) and not isinstance(part.value, str):
            if part.op == ">=" and part.field not in lows:
                lows[part.field] = float(part.value)
                continue
            if part.op == "<" and part.field not in highs:
                highs[part.field] = float(part.value)
                continue
        others.append(part)

    fused: List[Filter] = []
    for field in list(lows):
        # Only fuse satisfiable pairs: ``col >= 5 AND col < 3`` is legal
        # (if vacuous) SQL, but RangePredicate rejects low > high — keep
        # such pairs as plain comparisons instead of failing the parse.
        if field in highs and lows[field] <= highs[field]:
            fused.append(RangePredicate(field, lows.pop(field), highs.pop(field)))
    for field, low in lows.items():
        fused.append(Comparison(field, ">=", low))
    for field, high in highs.items():
        fused.append(Comparison(field, "<", high))
    remaining = fused + others
    return remaining[0] if len(remaining) == 1 else And(*remaining)


def parse_sql(sql: str, dataset: Optional[Dataset] = None) -> AggQuery:
    """Parse a statement produced by :func:`repro.query.sql.query_to_sql`.

    ``dataset`` enables resolution of star-schema column qualifications
    back to logical names; omit it for de-normalized statements.
    """
    return _Parser(sql, dataset).parse()
