"""The query model: binned aggregation queries and their results.

§2.2 of the paper: *"most queries group the data by one or many attributes
and apply aggregate functions to each group … visualization systems
commonly bin the data"*. A query in this benchmark is therefore

* a set of **bin dimensions** (1-D histogram, 2-D binned scatter plot;
  nominal = one bin per category, quantitative = fixed-width intervals or
  a fixed bin count over the column's range),
* a list of **aggregates** (COUNT, SUM, AVG, MIN, MAX), and
* an optional **filter** (:mod:`repro.query.filters`).

Results map *bin keys* — tuples with one coordinate per dimension, an
``int`` bin index for quantitative dimensions or a ``str`` category for
nominal ones — to per-aggregate values, optionally with margins of error
at the configured confidence level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple, Union

from repro.common.errors import QueryError
from repro.query.filters import Filter, filter_from_dict

#: One coordinate of a bin key.
BinCoord = Union[int, str]
#: A bin key: one coordinate per bin dimension.
BinKey = Tuple[BinCoord, ...]


class BinKind(Enum):
    """Binning behaviour of one dimension (§2.2)."""

    QUANTITATIVE = "quantitative"
    NOMINAL = "nominal"


class AggFunc(Enum):
    """Aggregate functions used by IDE frontends (§2.2)."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    @property
    def needs_field(self) -> bool:
        """COUNT aggregates rows; the others aggregate a column."""
        return self is not AggFunc.COUNT


@dataclass(frozen=True)
class BinDimension:
    """One bin dimension of a visualization.

    Quantitative dimensions support the two definitions of §2.2:

    * fixed ``width`` plus a ``reference`` boundary — bin index of value
      ``x`` is ``floor((x - reference) / width)``;
    * fixed ``bin_count`` over the column's current min/max — this form is
      *unresolved* (the driver resolves it against the dataset profile via
      :meth:`resolved`, mirroring the min/max query a frontend must run).

    Nominal dimensions bin by category and take no parameters.
    """

    field: str
    kind: BinKind
    width: Optional[float] = None
    reference: float = 0.0
    bin_count: Optional[int] = None

    def __post_init__(self):
        if not self.field:
            raise QueryError("bin dimension needs a field name")
        if self.kind is BinKind.QUANTITATIVE:
            if self.width is None and self.bin_count is None:
                raise QueryError(
                    f"quantitative dimension {self.field!r} needs width or bin_count"
                )
            if self.width is not None and self.width <= 0:
                raise QueryError(
                    f"bin width must be positive, got {self.width!r}"
                )
            if self.bin_count is not None and self.bin_count < 1:
                raise QueryError(
                    f"bin count must be >= 1, got {self.bin_count!r}"
                )
        else:
            if self.width is not None or self.bin_count is not None:
                raise QueryError(
                    f"nominal dimension {self.field!r} takes no width/bin_count"
                )

    @property
    def is_resolved(self) -> bool:
        """Whether bin boundaries are fully determined."""
        return self.kind is BinKind.NOMINAL or self.width is not None

    def resolved(self, minimum: float, maximum: float) -> "BinDimension":
        """Resolve a ``bin_count`` dimension against observed min/max."""
        if self.is_resolved:
            return self
        span = max(maximum - minimum, 1e-12)
        width = span / self.bin_count
        return BinDimension(
            field=self.field,
            kind=self.kind,
            width=width,
            reference=float(minimum),
        )

    def bin_interval(self, index: int) -> Tuple[float, float]:
        """Half-open value interval ``[low, high)`` of quantitative bin ``index``."""
        if self.kind is not BinKind.QUANTITATIVE or self.width is None:
            raise QueryError(f"dimension {self.field!r} has no numeric intervals")
        low = self.reference + index * self.width
        return low, low + self.width

    def to_dict(self) -> dict:
        data: dict = {"field": self.field, "kind": self.kind.value}
        if self.width is not None:
            data["width"] = self.width
            data["reference"] = self.reference
        if self.bin_count is not None:
            data["bin_count"] = self.bin_count
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BinDimension":
        return cls(
            field=data["field"],
            kind=BinKind(data["kind"]),
            width=data.get("width"),
            reference=data.get("reference", 0.0),
            bin_count=data.get("bin_count"),
        )


@dataclass(frozen=True)
class Aggregate:
    """One aggregate function application, e.g. ``AVG(ARR_DELAY)``."""

    func: AggFunc
    field: Optional[str] = None

    def __post_init__(self):
        if self.func.needs_field and not self.field:
            raise QueryError(f"{self.func.value.upper()} requires a field")
        if not self.func.needs_field and self.field:
            raise QueryError("COUNT takes no field (COUNT(*) semantics)")

    @property
    def label(self) -> str:
        """Result-column label, e.g. ``count`` or ``avg_ARR_DELAY``."""
        if self.field is None:
            return self.func.value
        return f"{self.func.value}_{self.field}"

    def to_dict(self) -> dict:
        data: dict = {"func": self.func.value}
        if self.field is not None:
            data["field"] = self.field
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Aggregate":
        return cls(func=AggFunc(data["func"]), field=data.get("field"))


@dataclass(frozen=True)
class AggQuery:
    """A complete binned aggregation query.

    ``table`` names the logical (de-normalized) relation; whether execution
    requires joins is a property of the dataset layout, not of the query —
    exactly as in the paper, where the same workload runs against both
    schema variants (§5.3).
    """

    table: str
    bins: Tuple[BinDimension, ...]
    aggregates: Tuple[Aggregate, ...]
    filter: Optional[Filter] = None

    def __post_init__(self):
        if not self.bins:
            raise QueryError("query needs at least one bin dimension")
        if len(self.bins) > 2:
            raise QueryError(
                f"at most 2 bin dimensions are supported, got {len(self.bins)}"
            )
        if not self.aggregates:
            raise QueryError("query needs at least one aggregate")
        fields = [dim.field for dim in self.bins]
        if len(set(fields)) != len(fields):
            raise QueryError(f"duplicate bin dimension fields: {fields}")

    @property
    def is_resolved(self) -> bool:
        """Whether all bin dimensions have concrete boundaries."""
        return all(dim.is_resolved for dim in self.bins)

    @property
    def num_bin_dims(self) -> int:
        """Dimensionality of the binning (1 or 2)."""
        return len(self.bins)

    @property
    def binning_types(self) -> Tuple[str, ...]:
        """Per-dimension kind labels, as reported in Table 1."""
        return tuple(dim.kind.value for dim in self.bins)

    @property
    def agg_type(self) -> str:
        """Aggregate-type label for the detailed report (Table 1)."""
        return " ".join(agg.func.value for agg in self.aggregates)

    def referenced_columns(self) -> Tuple[str, ...]:
        """Every logical column the query touches (bins + aggs + filter)."""
        seen = []
        for dim in self.bins:
            if dim.field not in seen:
                seen.append(dim.field)
        for agg in self.aggregates:
            if agg.field and agg.field not in seen:
                seen.append(agg.field)
        if self.filter is not None:
            for field_name in self.filter.fields():
                if field_name not in seen:
                    seen.append(field_name)
        return tuple(seen)

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "bins": [dim.to_dict() for dim in self.bins],
            "aggregates": [agg.to_dict() for agg in self.aggregates],
            "filter": self.filter.to_dict() if self.filter else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AggQuery":
        return cls(
            table=data["table"],
            bins=tuple(BinDimension.from_dict(d) for d in data["bins"]),
            aggregates=tuple(Aggregate.from_dict(a) for a in data["aggregates"]),
            filter=filter_from_dict(data.get("filter")),
        )


@dataclass
class QueryResult:
    """The (possibly approximate) answer to an :class:`AggQuery`.

    Attributes
    ----------
    values:
        bin key → tuple of per-aggregate values (order matches
        ``query.aggregates``).
    margins:
        bin key → tuple of per-aggregate absolute margins of error at the
        run's confidence level; ``None`` entries mean the engine offers no
        bound for that aggregate (e.g. MIN/MAX under sampling). Exact
        engines return empty margins.
    rows_processed:
        number of *actual* rows the engine aggregated (sample size).
    fraction:
        fraction of the full dataset processed; 1.0 for exact answers.
    exact:
        whether the answer is exact (ground truth semantics).
    """

    query: AggQuery
    values: Dict[BinKey, Tuple[float, ...]]
    margins: Dict[BinKey, Tuple[Optional[float], ...]] = field(default_factory=dict)
    rows_processed: int = 0
    fraction: float = 1.0
    exact: bool = False

    @property
    def num_bins(self) -> int:
        """Number of bins for which a value was delivered."""
        return len(self.values)

    def value_of(self, key: BinKey, aggregate_index: int = 0) -> float:
        """Value of one aggregate in one bin (KeyError if missing)."""
        return self.values[key][aggregate_index]

    def __repr__(self) -> str:
        kind = "exact" if self.exact else f"approx({self.fraction:.3%})"
        return (
            f"QueryResult({kind}, bins={self.num_bins}, "
            f"rows={self.rows_processed})"
        )


def make_count_query(
    table: str,
    dimension: BinDimension,
    filter_expr: Optional[Filter] = None,
) -> AggQuery:
    """Convenience constructor for the most common viz: a count histogram."""
    return AggQuery(
        table=table,
        bins=(dimension,),
        aggregates=(Aggregate(AggFunc.COUNT),),
        filter=filter_expr,
    )


def resolve_query(query: AggQuery, profiles: Dict[str, "object"]) -> AggQuery:
    """Resolve all ``bin_count`` dimensions against column profiles.

    ``profiles`` maps column name to an object with ``minimum``/``maximum``
    attributes (:class:`repro.data.schema.ColumnProfile`). Frontends do the
    equivalent min/max pre-query before they can draw a fixed-bin-count
    histogram (§2.2); the benchmark driver performs it once per dataset.
    """
    if query.is_resolved:
        return query
    resolved_bins = []
    for dim in query.bins:
        if dim.is_resolved:
            resolved_bins.append(dim)
            continue
        profile = profiles.get(dim.field)
        if profile is None:
            raise QueryError(f"no profile for column {dim.field!r}")
        resolved_bins.append(dim.resolved(profile.minimum, profile.maximum))
    return AggQuery(
        table=query.table,
        bins=tuple(resolved_bins),
        aggregates=query.aggregates,
        filter=query.filter,
    )
