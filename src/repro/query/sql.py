"""Translation of :class:`AggQuery` to SQL (paper Fig. 4).

The benchmark driver "automatically translates queries to SQL, or
alternatively, lets the system driver translate queries into a language
compatible with the system being evaluated" (§4.4). The engine simulators
in this repository consume :class:`AggQuery` directly, but SQL-speaking
adapters (and readers of workflow traces) get the same statements the
original IDEBench would emit:

* quantitative bins become ``FLOOR((col - reference) / width) AS bin_i``,
* nominal bins select the column itself,
* the star-schema layout adds one ``JOIN`` per foreign key whose
  attributes the query touches.

:mod:`repro.query.sql_parser` parses these statements back, giving a
round-trip property the tests exercise.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import QueryError
from repro.data.storage import Dataset, ForeignKey
from repro.query.filters import And, Comparison, Filter, Or, RangePredicate, SetPredicate
from repro.query.model import AggFunc, AggQuery, BinKind


def _format_number(value: float) -> str:
    """Render a numeric literal (integers without trailing ``.0``)."""
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _quote_string(value: str) -> str:
    """Single-quote a string literal, doubling embedded quotes."""
    return "'" + value.replace("'", "''") + "'"


def filter_to_sql(filter_expr: Filter, column_sql: Dict[str, str]) -> str:
    """Render a predicate tree as a SQL boolean expression."""
    if isinstance(filter_expr, RangePredicate):
        column = column_sql[filter_expr.field]
        parts = []
        if filter_expr.low is not None:
            parts.append(f"{column} >= {_format_number(filter_expr.low)}")
        if filter_expr.high is not None:
            parts.append(f"{column} < {_format_number(filter_expr.high)}")
        return "(" + " AND ".join(parts) + ")" if len(parts) > 1 else parts[0]
    if isinstance(filter_expr, SetPredicate):
        column = column_sql[filter_expr.field]
        values = ", ".join(_quote_string(v) for v in sorted(filter_expr.values))
        return f"{column} IN ({values})"
    if isinstance(filter_expr, Comparison):
        column = column_sql[filter_expr.field]
        if isinstance(filter_expr.value, str):
            literal = _quote_string(filter_expr.value)
        else:
            literal = _format_number(filter_expr.value)
        return f"{column} {filter_expr.op} {literal}"
    if isinstance(filter_expr, And):
        return "(" + " AND ".join(filter_to_sql(c, column_sql) for c in filter_expr.children) + ")"
    if isinstance(filter_expr, Or):
        return "(" + " OR ".join(filter_to_sql(c, column_sql) for c in filter_expr.children) + ")"
    raise QueryError(f"cannot translate filter node {type(filter_expr).__name__}")


def _column_sql_map(
    query: AggQuery, dataset: Optional[Dataset]
) -> (dict, List[str]):
    """Map each referenced logical column to its SQL expression.

    For a de-normalized dataset (or none) this is the identity. For a star
    schema, columns living in dimension tables are qualified with a
    deterministic per-FK alias and the necessary JOIN clauses are returned.
    """
    columns = query.referenced_columns()
    if dataset is None or not dataset.is_normalized:
        return {name: name for name in columns}, []

    column_sql: Dict[str, str] = {}
    joins: List[str] = []
    used_fks: List[ForeignKey] = []
    for name in columns:
        table_name, physical, fk = dataset.resolve_column(name)
        if fk is None:
            column_sql[name] = f"{dataset.fact_table}.{physical}"
            continue
        alias = _fk_alias(fk)
        column_sql[name] = f"{alias}.{physical}"
        if fk not in used_fks:
            used_fks.append(fk)
            joins.append(
                f"JOIN {fk.dim_table} AS {alias} "
                f"ON {dataset.fact_table}.{fk.fact_column} = {alias}.{fk.dim_key}"
            )
    return column_sql, joins


def _fk_alias(fk: ForeignKey) -> str:
    """Deterministic join alias for a foreign key (e.g. ``t_origin_key``)."""
    return "t_" + fk.fact_column.lower()


def query_to_sql(query: AggQuery, dataset: Optional[Dataset] = None) -> str:
    """Render ``query`` as a SQL statement.

    ``dataset`` controls the physical layout: pass a normalized dataset to
    get the JOIN form, or ``None``/de-normalized for single-table SQL.
    """
    if not query.is_resolved:
        raise QueryError("cannot translate an unresolved query to SQL")
    column_sql, joins = _column_sql_map(query, dataset)

    select_items: List[str] = []
    group_by: List[str] = []
    for i, dim in enumerate(query.bins):
        label = f"bin_{i}"
        if dim.kind is BinKind.QUANTITATIVE:
            expression = (
                f"FLOOR(({column_sql[dim.field]} - {_format_number(dim.reference)})"
                f" / {_format_number(dim.width)})"
            )
        else:
            expression = column_sql[dim.field]
        select_items.append(f"{expression} AS {label}")
        group_by.append(label)

    for agg in query.aggregates:
        if agg.func is AggFunc.COUNT:
            select_items.append("COUNT(*) AS count")
        else:
            select_items.append(
                f"{agg.func.value.upper()}({column_sql[agg.field]}) AS {agg.label}"
            )

    table = dataset.fact_table if dataset is not None and dataset.is_normalized else query.table
    lines = [
        "SELECT " + ", ".join(select_items),
        f"FROM {table}",
    ]
    lines.extend(joins)
    if query.filter is not None:
        lines.append("WHERE " + filter_to_sql(query.filter, column_sql))
    lines.append("GROUP BY " + ", ".join(group_by))
    return "\n".join(lines)
