"""Vectorized binning (§2.2's binned aggregation): values → codes → keys.

This is the inner loop shared by the ground-truth oracle and all engine
simulators. A :class:`~repro.query.model.BinDimension` maps each row to a
*bin code* (an ``int64``); multi-dimensional binnings combine per-dimension
codes into group identifiers via mixed-radix packing, and
:func:`group_rows` returns the distinct :data:`~repro.query.model.BinKey`
tuples together with each row's group index — everything downstream
aggregation needs.

Invariant (property-tested): every row maps to exactly one bin, and the
bin's interval/category contains the row's value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.common.errors import QueryError
from repro.query.model import BinCoord, BinDimension, BinKey, BinKind


@dataclass
class DimensionCodes:
    """Bin codes of one dimension plus the decoder back to coordinates."""

    codes: np.ndarray
    decode: Callable[[int], BinCoord]


def compute_codes(dim: BinDimension, values: np.ndarray) -> DimensionCodes:
    """Map each value to its bin code under ``dim``.

    Quantitative: ``floor((x - reference) / width)`` (the code *is* the bin
    index, so decoding is the identity). Nominal: dense codes from
    :func:`numpy.unique`, decoded through the category array.
    """
    if dim.kind is BinKind.QUANTITATIVE:
        if dim.width is None:
            raise QueryError(
                f"dimension {dim.field!r} is unresolved (bin_count without "
                "width); resolve against a profile first"
            )
        if values.dtype.kind not in ("i", "f"):
            raise QueryError(
                f"quantitative binning on non-numeric column {dim.field!r}"
            )
        codes = np.floor((values - dim.reference) / dim.width).astype(np.int64)
        return DimensionCodes(codes, lambda code: int(code))
    categories, codes = np.unique(values.astype(str), return_inverse=True)
    return DimensionCodes(
        codes.astype(np.int64), lambda code, _cats=categories: str(_cats[code])
    )


@dataclass
class GroupedRows:
    """Outcome of grouping: distinct keys and per-row group indices."""

    keys: List[BinKey]
    inverse: np.ndarray  # shape (num_rows,), values in [0, len(keys))

    @property
    def num_groups(self) -> int:
        return len(self.keys)


def group_rows(
    dims: Sequence[BinDimension], value_columns: Sequence[np.ndarray]
) -> GroupedRows:
    """Group rows by the combined bin key over ``dims``.

    ``value_columns`` holds one array per dimension (already filtered to
    the rows being aggregated). Handles the empty-row case gracefully —
    an empty grouping, not an error — because approximate engines routinely
    aggregate empty samples of selective filters.
    """
    if len(dims) != len(value_columns):
        raise QueryError(
            f"got {len(dims)} dimensions but {len(value_columns)} value columns"
        )
    num_rows = len(value_columns[0]) if value_columns else 0
    if num_rows == 0:
        return GroupedRows(keys=[], inverse=np.empty(0, dtype=np.int64))

    per_dim = [compute_codes(dim, values) for dim, values in zip(dims, value_columns)]

    if len(per_dim) == 1:
        unique_codes, inverse = np.unique(per_dim[0].codes, return_inverse=True)
        keys = [(per_dim[0].decode(code),) for code in unique_codes]
        return GroupedRows(keys=keys, inverse=inverse.astype(np.int64))

    # Mixed-radix packing of the two code arrays into one int64 per row.
    first, second = per_dim
    first_min = int(first.codes.min())
    second_min = int(second.codes.min())
    second_span = int(second.codes.max()) - second_min + 1
    packed = (first.codes - first_min) * second_span + (second.codes - second_min)
    unique_packed, inverse = np.unique(packed, return_inverse=True)
    keys: List[BinKey] = []
    for value in unique_packed:
        first_code, second_code = divmod(int(value), second_span)
        keys.append(
            (first.decode(first_code + first_min), second.decode(second_code + second_min))
        )
    return GroupedRows(keys=keys, inverse=inverse.astype(np.int64))


def key_matches_selection(
    key: BinKey, dims: Sequence[BinDimension], selected: Sequence[BinKey]
) -> bool:
    """Whether ``key`` is among ``selected`` (driver-side selection test)."""
    return tuple(key) in {tuple(s) for s in selected}


def selection_filter_parts(
    dims: Sequence[BinDimension], selected_keys: Sequence[BinKey]
) -> List[List[Tuple[str, BinDimension, BinCoord]]]:
    """Explode selected bin keys into per-key (field, dim, coord) triples.

    Helper for :mod:`repro.workflow.graph`, which turns each selected bin
    into a predicate (range for quantitative coords, equality for nominal)
    and ORs the per-bin conjunctions together.
    """
    exploded = []
    for key in selected_keys:
        if len(key) != len(dims):
            raise QueryError(
                f"selected key {key!r} has {len(key)} coords, "
                f"expected {len(dims)}"
            )
        exploded.append(
            [(dim.field, dim, coord) for dim, coord in zip(dims, key)]
        )
    return exploded
