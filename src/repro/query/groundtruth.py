"""Exact query evaluation and the shared grouped-statistics kernel.

Two consumers:

* the **ground-truth oracle** — every metric of §4.7 compares an engine's
  answer against the exact answer on the full dataset; the oracle caches
  those exact answers per query (workloads re-issue many identical
  queries, e.g. when a filter is cleared);
* the **engine simulators** — approximate engines aggregate *subsets*
  (samples) of the data and need, per bin, the count and the sum/sum-of-
  squares of each aggregated column to form estimates and confidence
  intervals. :func:`compute_grouped_stats` provides exactly that, over
  either the full dataset or a caller-supplied row subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import QueryError
from repro.common.fingerprint import stable_digest
from repro.data.storage import Dataset
from repro.obs.profile import STAGE_BINNING, STAGE_PREDICATE_EVAL, get_profiler
from repro.query.binning import GroupedRows, group_rows
from repro.query.filters import evaluate_filter
from repro.query.model import AggFunc, AggQuery, BinKey, QueryResult


def query_cache_key(query: AggQuery) -> str:
    """Stable, hashable, process-portable cache key for ``query``.

    The key is a SHA-256 digest of the query's canonical JSON form
    (:meth:`AggQuery.to_dict`), so structurally equal queries key
    identically in every process — unlike ``hash(query)``, which is salted
    per interpreter (``PYTHONHASHSEED``) and therefore useless for on-disk
    caches or cross-worker sharing.
    """
    return stable_digest(query.to_dict(), length=None)


@dataclass
class GroupedStats:
    """Sufficient statistics of one query over one set of rows.

    ``counts[g]`` is the number of aggregated rows in group ``g``; for
    every aggregate ``j`` over a column, ``sums[j][g]`` / ``sumsqs[j][g]``
    / ``mins[j][g]`` / ``maxs[j][g]`` hold the within-group moments.
    COUNT aggregates have no entry in the per-column dictionaries.
    """

    query: AggQuery
    keys: List[BinKey]
    counts: np.ndarray
    sums: Dict[int, np.ndarray]
    sumsqs: Dict[int, np.ndarray]
    mins: Dict[int, np.ndarray]
    maxs: Dict[int, np.ndarray]
    rows_aggregated: int
    rows_scanned: int

    @property
    def num_groups(self) -> int:
        return len(self.keys)


def compute_grouped_stats(
    dataset: Dataset,
    query: AggQuery,
    row_indices: Optional[np.ndarray] = None,
) -> GroupedStats:
    """Aggregate ``query`` over ``dataset`` (optionally only ``row_indices``).

    ``row_indices`` is how sampling engines evaluate a prefix of their
    shuffled row permutation; ``None`` aggregates everything (exact).
    """
    if not query.is_resolved:
        raise QueryError(
            "query has unresolved bin dimensions; call resolve_query first"
        )

    # One gather per distinct column, not per use: a field that appears
    # as both bin and aggregate (or in several predicates) used to pay
    # the full gather — an FK dereference on normalized schemas — twice
    # per poll.
    resolved: Dict[str, np.ndarray] = {}

    def get_column(name: str) -> np.ndarray:
        column = resolved.get(name)
        if column is None:
            column = dataset.gather_column(name)
            if row_indices is not None:
                column = column[row_indices]
            resolved[name] = column
        return column

    num_rows = (
        len(row_indices) if row_indices is not None else dataset.num_fact_rows
    )
    profiler = get_profiler()
    with profiler.stage(STAGE_PREDICATE_EVAL):
        mask = evaluate_filter(query.filter, get_column, num_rows)
    with profiler.stage(STAGE_BINNING):
        bin_columns = [get_column(dim.field)[mask] for dim in query.bins]
        grouped: GroupedRows = group_rows(query.bins, bin_columns)

    counts = (
        np.bincount(grouped.inverse, minlength=grouped.num_groups).astype(np.int64)
        if grouped.num_groups
        else np.zeros(0, dtype=np.int64)
    )

    sums: Dict[int, np.ndarray] = {}
    sumsqs: Dict[int, np.ndarray] = {}
    mins: Dict[int, np.ndarray] = {}
    maxs: Dict[int, np.ndarray] = {}
    for j, agg in enumerate(query.aggregates):
        if agg.func is AggFunc.COUNT:
            continue
        values = get_column(agg.field)[mask].astype(np.float64)
        if grouped.num_groups == 0:
            sums[j] = np.zeros(0)
            sumsqs[j] = np.zeros(0)
            mins[j] = np.zeros(0)
            maxs[j] = np.zeros(0)
            continue
        sums[j] = np.bincount(
            grouped.inverse, weights=values, minlength=grouped.num_groups
        )
        sumsqs[j] = np.bincount(
            grouped.inverse, weights=values * values, minlength=grouped.num_groups
        )
        group_min = np.full(grouped.num_groups, np.inf)
        group_max = np.full(grouped.num_groups, -np.inf)
        np.minimum.at(group_min, grouped.inverse, values)
        np.maximum.at(group_max, grouped.inverse, values)
        mins[j] = group_min
        maxs[j] = group_max

    return GroupedStats(
        query=query,
        keys=grouped.keys,
        counts=counts,
        sums=sums,
        sumsqs=sumsqs,
        mins=mins,
        maxs=maxs,
        rows_aggregated=int(mask.sum()),
        rows_scanned=num_rows,
    )


def stats_to_exact_values(stats: GroupedStats) -> Dict[BinKey, Tuple[float, ...]]:
    """Turn sufficient statistics into exact per-bin aggregate values."""
    values: Dict[BinKey, Tuple[float, ...]] = {}
    for g, key in enumerate(stats.keys):
        row: List[float] = []
        for j, agg in enumerate(stats.query.aggregates):
            if agg.func is AggFunc.COUNT:
                row.append(float(stats.counts[g]))
            elif agg.func is AggFunc.SUM:
                row.append(float(stats.sums[j][g]))
            elif agg.func is AggFunc.AVG:
                row.append(float(stats.sums[j][g] / stats.counts[g]))
            elif agg.func is AggFunc.MIN:
                row.append(float(stats.mins[j][g]))
            elif agg.func is AggFunc.MAX:
                row.append(float(stats.maxs[j][g]))
        values[key] = tuple(row)
    return values


def evaluate_exact(dataset: Dataset, query: AggQuery) -> QueryResult:
    """Exact (blocking-engine / ground-truth) evaluation of a query.

    Routed through the compiled-kernel cache when kernels are enabled:
    the full-table stats are memoized on the kernel, so every oracle and
    blocking engine in the process shares one evaluation per query.
    """
    from repro.engines.kernel_cache import get_kernel  # deferred: layering

    kernel = get_kernel(dataset, query)
    if kernel is not None:
        stats = kernel.exact_stats()
    else:
        stats = compute_grouped_stats(dataset, query)
    return QueryResult(
        query=query,
        values=stats_to_exact_values(stats),
        margins={},
        rows_processed=stats.rows_scanned,
        fraction=1.0,
        exact=True,
    )


class GroundTruthOracle:
    """Caches exact answers; the reference all metrics compare against.

    Workloads re-issue structurally identical queries (clearing a filter
    restores a previous query; linked updates repeat on every selection
    change), so caching exact answers speeds benchmark runs up considerably
    without changing any measured quantity — ground truth is computed
    outside the simulated clock.

    Cache keys are the stable digests of :func:`query_cache_key`, so they
    are portable across worker processes. When ``store`` (an
    :class:`repro.runtime.store.ArtifactStore`-compatible object) is given,
    answers additionally persist on disk under the dataset's content
    fingerprint — a cell computed by one worker warms every other worker
    and every later run.
    """

    def __init__(self, dataset: Dataset, store=None, dataset_key: Optional[str] = None):
        self._dataset = dataset
        self._cache: Dict[str, QueryResult] = {}
        self._store = store
        self._dataset_key = dataset_key
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def dataset_key(self) -> Optional[str]:
        """Key namespacing persisted answers (content fingerprint by default)."""
        if self._dataset_key is None and self._store is not None:
            self._dataset_key = self._dataset.fingerprint()
        return self._dataset_key

    def _store_key(self, query_key: str) -> tuple:
        return ("ground-truth", self.dataset_key, query_key)

    def answer(self, query: AggQuery) -> QueryResult:
        """Exact result for ``query`` (cached in memory, then on disk)."""
        key = query_cache_key(query)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        if self._store is not None:
            persisted = self._store.get(self._store_key(key))
            if persisted is not None:
                self.hits += 1
                self.store_hits += 1
                self._cache[key] = persisted
                return persisted
        self.misses += 1
        result = evaluate_exact(self._dataset, query)
        self._cache[key] = result
        if self._store is not None:
            self._store.put(self._store_key(key), result)
        return result

    def clear(self) -> None:
        """Drop all in-memory cached answers (e.g. after switching datasets)."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
