"""Query model: binned aggregation queries, filters, ground truth and SQL.

IDE workloads are dominated by *binned* OLAP-style aggregation queries
(§2.2). This subpackage defines their in-memory form and everything needed
to evaluate them:

* :mod:`repro.query.model` — :class:`AggQuery` (bin dimensions, aggregate
  functions, filter) and :class:`QueryResult`;
* :mod:`repro.query.filters` — predicate trees and their vectorized
  evaluation to boolean masks;
* :mod:`repro.query.binning` — 1-D/2-D, nominal/quantitative binning;
* :mod:`repro.query.groundtruth` — the exact grouped-statistics kernel
  shared by the ground-truth oracle and every engine simulator;
* :mod:`repro.query.sql` / :mod:`repro.query.sql_parser` — translation of
  queries to the SQL of the paper's Fig. 4, and a round-trip parser.
"""

from repro.query.filters import (
    And,
    Comparison,
    Filter,
    Or,
    RangePredicate,
    SetPredicate,
    evaluate_filter,
    filter_from_dict,
)
from repro.query.model import (
    AggFunc,
    Aggregate,
    AggQuery,
    BinDimension,
    BinKind,
    QueryResult,
)
from repro.query.groundtruth import GroundTruthOracle, compute_grouped_stats, evaluate_exact
from repro.query.kernels import CompiledQueryKernel, KernelAccumulator, PrefixKernelRun
from repro.query.sql import query_to_sql
from repro.query.sql_parser import parse_sql

__all__ = [
    "AggFunc",
    "Aggregate",
    "AggQuery",
    "And",
    "BinDimension",
    "BinKind",
    "Comparison",
    "CompiledQueryKernel",
    "Filter",
    "GroundTruthOracle",
    "KernelAccumulator",
    "Or",
    "PrefixKernelRun",
    "QueryResult",
    "RangePredicate",
    "SetPredicate",
    "compute_grouped_stats",
    "evaluate_exact",
    "evaluate_filter",
    "filter_from_dict",
    "parse_sql",
    "query_to_sql",
]
