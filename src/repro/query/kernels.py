"""Compiled query kernels: plan once, aggregate many prefixes cheaply.

Progressive engines (§5's IDEA/XDB stand-ins) poll estimates "at any
point in time", and every poll used to re-run the full
predicate→bin→moments pipeline of
:func:`repro.query.groundtruth.compute_grouped_stats` over the whole
sample prefix, so a progressively polled query cost O(n²) row-touches per
session. Compiling an :class:`~repro.query.model.AggQuery` against a
dataset hoists everything that does not depend on the polled row subset
out of the poll loop:

* every referenced logical column is gathered **once** (FK dereference on
  normalized schemas included);
* the filter mask is evaluated once over the full table — predicates are
  pointwise, so the mask of any row subset is a gather of the full mask;
* bin codes and the group structure are built once over all filter-passing
  rows, yielding a per-row *global group id* and the decoded keys in
  canonical order (sorted codes / lexicographic for 2-D), of which every
  subset's naive grouping is a restriction;
* aggregate columns are pre-cast to ``float64`` once.

A poll then reduces to one gather of group ids plus ``np.add.at`` /
``np.minimum.at`` scatters — and :class:`PrefixKernelRun` makes polls over
growing sample prefixes **incremental**: only the delta rows since the
last poll are aggregated, turning per-session cost into O(n).

Determinism contract (pinned by ``tests/test_kernels_differential.py``):
compiled results are **bitwise identical** to the uncompiled path. The
accumulators use unbuffered ``ufunc.at`` scatters, which apply updates
sequentially in row order — exactly the fold ``np.bincount(weights=...)``
performs — so continuing a running sum over delta rows reproduces the
from-scratch IEEE-754 operation sequence bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import QueryError
from repro.query.binning import compute_codes
from repro.query.filters import evaluate_filter
from repro.query.groundtruth import GroupedStats, compute_grouped_stats
from repro.query.model import AggFunc, AggQuery, BinKey

#: Mixed-radix packing of 2-D bin codes must stay inside int64; spans
#: beyond this bound (degenerate bin widths, NaN-poisoned codes) compile
#: in fallback mode, which delegates to the uncompiled path verbatim.
_PACK_LIMIT = 2 ** 62


class _PackingOverflow(Exception):
    """2-D code packing would overflow int64; compile falls back."""


class CompiledQueryKernel:
    """One query compiled against one dataset.

    Holds the resolved column arrays, the full-table filter mask, the
    per-row global group id (``-1`` for rows failing the filter) and the
    decoded bin keys in canonical order. ``evaluate`` aggregates any row
    subset from scratch; ``new_accumulator`` starts an incremental
    running aggregation over a growing row stream.
    """

    def __init__(self, dataset, query: AggQuery):
        if not query.is_resolved:
            raise QueryError(
                "query has unresolved bin dimensions; call resolve_query first"
            )
        self.query = query
        self._dataset = dataset
        self.num_rows = dataset.num_fact_rows
        self._columns: Dict[str, np.ndarray] = {
            name: dataset.gather_column(name)
            for name in query.referenced_columns()
        }
        self._mask = evaluate_filter(
            query.filter, self._columns.__getitem__, self.num_rows
        )
        self.qualifying_fraction = (
            float(self._mask.mean()) if len(self._mask) else 0.0
        )

        self._keys: List[BinKey] = []
        self._row_gid = np.full(self.num_rows, -1, dtype=np.int64)
        self._fallback = False
        rows = np.flatnonzero(self._mask)
        if rows.size:
            try:
                self._keys, gid = self._build_groups(rows)
            except _PackingOverflow:
                self._fallback = True
            else:
                self._row_gid[rows] = gid

        #: aggregate index -> full-table float64 value array (shared when
        #: several aggregates target the same column).
        self._agg_values: Dict[int, np.ndarray] = {}
        if not self._fallback:
            cast: Dict[str, np.ndarray] = {}
            for j, agg in enumerate(query.aggregates):
                if agg.func is AggFunc.COUNT:
                    continue
                arr = cast.get(agg.field)
                if arr is None:
                    cast[agg.field] = arr = self._columns[agg.field].astype(
                        np.float64
                    )
                self._agg_values[j] = arr
        self._exact_stats: Optional[GroupedStats] = None

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return len(self._keys)

    @property
    def supports_incremental(self) -> bool:
        """Whether running accumulators are available (False in fallback)."""
        return not self._fallback

    @property
    def full_mask(self) -> np.ndarray:
        """The full-table boolean filter mask (do not mutate)."""
        return self._mask

    def _build_groups(
        self, rows: np.ndarray
    ) -> Tuple[List[BinKey], np.ndarray]:
        """Global group structure over all filter-passing ``rows``.

        Mirrors :func:`repro.query.binning.group_rows` exactly, except the
        grouping is computed once over every candidate row instead of per
        subset: sorted unique codes for 1-D, mixed-radix packing (monotone
        lexicographic, so subset orderings are restrictions) for 2-D.
        """
        dims = self.query.bins
        per_dim = [
            compute_codes(dim, self._columns[dim.field][rows]) for dim in dims
        ]
        if len(per_dim) == 1:
            unique_codes, gid = np.unique(per_dim[0].codes, return_inverse=True)
            keys = [(per_dim[0].decode(code),) for code in unique_codes]
            return keys, gid.astype(np.int64)
        first, second = per_dim
        first_min = int(first.codes.min())
        first_max = int(first.codes.max())
        second_min = int(second.codes.min())
        second_span = int(second.codes.max()) - second_min + 1
        if (first_max - first_min) * second_span + (second_span - 1) > _PACK_LIMIT:
            raise _PackingOverflow
        packed = (first.codes - first_min) * second_span + (
            second.codes - second_min
        )
        unique_packed, gid = np.unique(packed, return_inverse=True)
        keys: List[BinKey] = []
        for value in unique_packed:
            first_code, second_code = divmod(int(value), second_span)
            keys.append(
                (
                    first.decode(first_code + first_min),
                    second.decode(second_code + second_min),
                )
            )
        return keys, gid.astype(np.int64)

    # ------------------------------------------------------------------
    def new_accumulator(self) -> "KernelAccumulator":
        """A fresh running aggregation (raises in fallback mode)."""
        if self._fallback:
            raise QueryError(
                "kernel compiled in fallback mode has no incremental path"
            )
        return KernelAccumulator(self)

    def evaluate(self, row_indices: Optional[np.ndarray] = None) -> GroupedStats:
        """Aggregate ``row_indices`` (or everything) from scratch.

        Bitwise identical to ``compute_grouped_stats(dataset, query,
        row_indices)`` — the differential suite pins this.
        """
        if self._fallback:
            return compute_grouped_stats(self._dataset, self.query, row_indices)
        accumulator = self.new_accumulator()
        accumulator.update(row_indices)
        return accumulator.stats()

    def exact_stats(self) -> GroupedStats:
        """Full-table stats, computed once and memoized on the kernel."""
        if self._exact_stats is None:
            self._exact_stats = self.evaluate(None)
        return self._exact_stats


class KernelAccumulator:
    """Running :class:`GroupedStats` over an append-only row stream.

    ``update`` folds new rows into per-group counts and moment arrays
    spanning *all* global groups; ``stats`` snapshots the groups seen so
    far, in canonical key order. Because ``ufunc.at`` applies its updates
    sequentially in row order, feeding rows in one call or split across
    many calls produces bitwise-identical accumulator state — the property
    that makes incremental prefix polling byte-equivalent to from-scratch
    evaluation.
    """

    def __init__(self, kernel: CompiledQueryKernel):
        self._kernel = kernel
        num_groups = kernel.num_groups
        self._counts = np.zeros(num_groups, dtype=np.int64)
        self._sums: Dict[int, np.ndarray] = {}
        self._sumsqs: Dict[int, np.ndarray] = {}
        self._mins: Dict[int, np.ndarray] = {}
        self._maxs: Dict[int, np.ndarray] = {}
        for j in kernel._agg_values:
            self._sums[j] = np.zeros(num_groups)
            self._sumsqs[j] = np.zeros(num_groups)
            self._mins[j] = np.full(num_groups, np.inf)
            self._maxs[j] = np.full(num_groups, -np.inf)
        self.rows_aggregated = 0
        self.rows_scanned = 0

    def update(self, row_indices: Optional[np.ndarray]) -> None:
        """Fold more rows in (``None`` = the whole table, once)."""
        kernel = self._kernel
        if row_indices is None:
            gid_rows = kernel._row_gid
            self.rows_scanned += kernel.num_rows
        else:
            gid_rows = kernel._row_gid[row_indices]
            self.rows_scanned += len(row_indices)
        valid = gid_rows >= 0
        gids = gid_rows[valid]
        # Rows with a group id are exactly the filter-passing rows
        # (AggQuery guarantees >= 1 bin dimension, so every masked row
        # grouped at compile time).
        self.rows_aggregated += len(gids)
        if not len(gids):
            return
        np.add.at(self._counts, gids, 1)
        for j, full_values in kernel._agg_values.items():
            if row_indices is None:
                values = full_values[valid]
            else:
                values = full_values[row_indices][valid]
            np.add.at(self._sums[j], gids, values)
            np.add.at(self._sumsqs[j], gids, values * values)
            np.minimum.at(self._mins[j], gids, values)
            np.maximum.at(self._maxs[j], gids, values)

    def stats(self) -> GroupedStats:
        """Snapshot the groups seen so far as a :class:`GroupedStats`."""
        present = np.flatnonzero(self._counts > 0)
        keys = [self._kernel._keys[g] for g in present]
        sums: Dict[int, np.ndarray] = {}
        sumsqs: Dict[int, np.ndarray] = {}
        mins: Dict[int, np.ndarray] = {}
        maxs: Dict[int, np.ndarray] = {}
        for j in self._sums:
            sums[j] = self._sums[j][present]
            sumsqs[j] = self._sumsqs[j][present]
            mins[j] = self._mins[j][present]
            maxs[j] = self._maxs[j][present]
        return GroupedStats(
            query=self._kernel.query,
            keys=keys,
            counts=self._counts[present],
            sums=sums,
            sumsqs=sumsqs,
            mins=mins,
            maxs=maxs,
            rows_aggregated=self.rows_aggregated,
            rows_scanned=self.rows_scanned,
        )


class PrefixKernelRun:
    """Incremental aggregation of one query over a rotated sample prefix.

    Progressive engines poll growing prefixes of a rotation
    ``permutation[offset:offset+n]`` (wrapping around). A run keeps the
    accumulator for the largest prefix polled so far and, on the next
    poll, folds in only the delta rows. Scratch rebuilds happen when the
    prefix shrinks (cancel/reissue races) and the first time the prefix
    wraps past the end of the permutation; both fallbacks are
    bitwise-equivalent to the incremental path, just slower.
    """

    def __init__(
        self, kernel: CompiledQueryKernel, permutation: np.ndarray, offset: int
    ):
        self._kernel = kernel
        self._permutation = permutation
        self._rows = len(permutation)
        self._offset = int(offset) % max(1, self._rows)
        self._accumulator: Optional[KernelAccumulator] = None
        self._n = 0
        self.rebuilds = 0

    @property
    def polled_n(self) -> int:
        """The prefix length of the last poll."""
        return self._n

    def poll(self, n: int) -> GroupedStats:
        """Stats of the first ``n`` prefix rows (``0 <= n <= rows``)."""
        n = min(n, self._rows)
        if not self._kernel.supports_incremental:
            self._n = n
            return self._kernel.evaluate(self._slice(0, n))
        if (
            self._accumulator is None
            or n < self._n
            or self._delta_wraps(self._n, n)
        ):
            self._accumulator = self._kernel.new_accumulator()
            self._accumulator.update(self._slice(0, n))
            if self._n:
                self.rebuilds += 1
        elif n > self._n:
            self._accumulator.update(self._slice(self._n, n))
        self._n = n
        return self._accumulator.stats()

    def _delta_wraps(self, last_n: int, n: int) -> bool:
        """Whether the delta segment crosses the permutation boundary."""
        return self._offset + last_n < self._rows < self._offset + n

    def _slice(self, start_n: int, end_n: int) -> np.ndarray:
        """Prefix positions ``[start_n, end_n)`` of the rotation, in order."""
        start = self._offset + start_n
        end = self._offset + end_n
        if start >= self._rows:
            start -= self._rows
            end -= self._rows
        if end <= self._rows:
            return self._permutation[start:end]
        return np.concatenate(
            [self._permutation[start:], self._permutation[: end - self._rows]]
        )
