"""Committed lint baseline: grandfathered findings, matched by content
(part of the static gate on §1's reproducibility contract).

The baseline lets the lint gate turn on *hard* while known debt still
exists: every finding recorded in the committed file is suppressed, and
anything new fails. Entries key on ``(path, rule, snippet)`` — the
stripped text of the offending line — with a count, so reformatting or
shifting a file never breaks the match, while a *new* instance of the
same pattern in the same file does (the count budget runs out).

The file lives at ``tools/lint_baseline.json`` (regenerate with
``tools/regen_lint_baseline.py``, in the style of ``regen_golden.py``)
and is canonical JSON, so regeneration is byte-deterministic and diffs
are reviewable. A clean tree has ``"entries": []`` — the current state,
kept that way by CI's ``repro lint src --strict`` gate, which also fails
on *stale* entries so the baseline can only ever shrink.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.findings import Finding

BASELINE_SCHEMA_VERSION = 1

#: Repo-relative location ``repro lint`` tries by default.
DEFAULT_BASELINE_PATH = Path("tools") / "lint_baseline.json"


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally invalid."""


class Baseline:
    """A mutable matching budget built from the committed entries."""

    def __init__(self, entries: Sequence[dict] = ()):
        self._budget: Dict[Tuple[str, str, str], int] = {}
        for entry in entries:
            key = (entry["path"], entry["rule"], entry.get("snippet", ""))
            self._budget[key] = self._budget.get(key, 0) + int(
                entry.get("count", 1)
            )
        self._initial = dict(self._budget)

    def absorb(self, finding: Finding) -> bool:
        """Consume one unit of budget for ``finding`` if any remains."""
        key = (finding.path, finding.rule, finding.snippet)
        remaining = self._budget.get(key, 0)
        if remaining <= 0:
            return False
        self._budget[key] = remaining - 1
        return True

    def stale_entries(self) -> List[dict]:
        """Entries (or counts) that matched nothing this run."""
        stale = []
        for key in sorted(self._budget):
            remaining = self._budget[key]
            if remaining > 0:
                path, rule, snippet = key
                stale.append({"path": path, "rule": rule,
                              "snippet": snippet, "count": remaining})
        return stale

    def entry_count(self) -> int:
        return sum(self._initial.values())


def findings_to_entries(findings: Sequence[Finding]) -> List[dict]:
    """Collapse findings into sorted, counted baseline entries."""
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in findings:
        key = (finding.path, finding.rule, finding.snippet)
        counts[key] = counts.get(key, 0) + 1
    return [
        {"path": path, "rule": rule, "snippet": snippet, "count": count}
        for (path, rule, snippet), count in sorted(counts.items())
    ]


def save_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> bytes:
    """Write the canonical baseline file for ``findings``; returns bytes."""
    payload = {
        "version": BASELINE_SCHEMA_VERSION,
        "tool": "repro-lint",
        "entries": findings_to_entries(findings),
    }
    data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    Path(path).write_bytes(data)
    return data


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Load and validate a committed baseline file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise BaselineError(f"baseline {path} has no 'entries' list")
    version = payload.get("version")
    if version != BASELINE_SCHEMA_VERSION:
        raise BaselineError(
            f"baseline {path} has schema version {version!r}; this tool "
            f"reads version {BASELINE_SCHEMA_VERSION}"
        )
    entries = payload["entries"]
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'entries' must be a list")
    for entry in entries:
        if not isinstance(entry, dict) or "path" not in entry or "rule" not in entry:
            raise BaselineError(
                f"baseline {path}: each entry needs 'path' and 'rule'"
            )
    return Baseline(entries)
