"""Text and JSON reporters for lint results (the human and machine
faces of the static gate on §1's reproducibility contract).

Both renderings are pure functions of a :class:`LintResult`, emit
findings in the result's deterministic order, and agree on content — the
JSON form is the machine-readable superset the ``--json`` flag exposes
(schema pinned by ``tests/test_lint_framework.py``).
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.engine import LintResult
from repro.analysis.rules import REGISTRY, all_rules

#: Bump when the --json payload changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, strict: bool = False) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines: List[str] = []
    for path, message in result.parse_errors:
        lines.append(f"error: {path}: {message}")
    for finding in result.findings:
        rule = REGISTRY.get(finding.rule)
        label = f"{finding.rule}[{rule.name}]" if rule else finding.rule
        lines.append(f"{finding.location()}: {label}: {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry['path']}: {entry['rule']} "
            f"x{entry['count']} ({entry['snippet']!r}) — regenerate with "
            "tools/regen_lint_baseline.py"
        )
    counts = result.counts_by_rule()
    by_rule = " ".join(f"{rule}={count}" for rule, count in sorted(counts.items()))
    summary = (
        f"{result.files_scanned} files scanned, "
        f"{len(result.findings)} finding(s)"
        + (f" ({by_rule})" if by_rule else "")
        + f", {len(result.pragma_suppressed)} pragma-suppressed, "
        f"{len(result.baseline_suppressed)} baselined"
    )
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entr(y/ies)"
    lines.append(summary)
    code = result.exit_code(strict)
    lines.append("determinism lint: " + ("CLEAN" if code == 0 else "FAILED"))
    return "\n".join(lines) + "\n"


def render_json(result: LintResult, strict: bool = False) -> str:
    """Canonical JSON report (sorted keys — byte-deterministic)."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "files_scanned": result.files_scanned,
        "exit_code": result.exit_code(strict),
        "strict": strict,
        "findings": [finding.to_dict() for finding in result.findings],
        "counts_by_rule": result.counts_by_rule(),
        "suppressed": {
            "pragma": [
                {
                    "finding": finding.to_dict(),
                    "reason": pragma.reason,
                    "pragma_line": pragma.line,
                }
                for finding, pragma in result.pragma_suppressed
            ],
            "baseline": [
                finding.to_dict() for finding in result.baseline_suppressed
            ],
        },
        "stale_baseline": result.stale_baseline,
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in result.parse_errors
        ],
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def render_rule_table() -> str:
    """The ``--list-rules`` catalog (also embedded in docs)."""
    lines = ["rule     name                 summary"]
    for rule in all_rules():
        lines.append(f"{rule.rule_id}   {rule.name:<20} {rule.summary}")
    return "\n".join(lines) + "\n"
