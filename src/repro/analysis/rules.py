"""The determinism rule catalog (DET001–DET006).

Each rule statically enforces one clause of the byte-determinism
contract (§1's "standardized, automated, and re-producible") that this
reproduction's golden corpus rests on (docs/determinism.md has the full
catalog with fix guidance):

========  ==================  ===============================================
DET001    wall-clock          direct ``time.*``/``datetime.now`` reads —
                              route through ``repro.common.clock.perf_seconds``
DET002    salted-hash         builtin ``hash()`` outside ``__hash__`` — use
                              ``repro.common.fingerprint`` digests
DET003    unstable-iteration  set iteration, or unsorted dict views, in
                              serialization-tier modules
DET004    unseeded-rng        bare ``random.*`` / ``np.random.*`` calls —
                              derive streams via ``repro.common.rng``
DET005    repr-seed           ``repr()``/f-string of a set flowing into
                              hashlib/seed derivation (the PR-1 bug shape)
DET006    wall-leak           wall-time-ish attr keys on tracer entries
                              outside the segregated ``"wall"`` axis
========  ==================  ===============================================

Rules are visitor fragments: each declares the AST node types it wants
and inspects one node at a time against a :class:`ModuleContext` the
engine prepared (parent links, resolved imports, local set-assignment
tracking). They report through ``ctx.report`` and never mutate anything,
so a single shared walk serves every active rule.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Shared AST helpers


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chain → ``["a", "b", "c"]`` (None if not one)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Map locally bound names to the dotted origin they refer to.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import perf_counter`` → ``{"perf_counter": "time.perf_counter"}``.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imports[bound] = alias.name if alias.asname else bound
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{node.module}.{alias.name}"
    return imports


def resolve_target(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a call target through the module's import bindings."""
    parts = dotted_parts(node)
    if not parts:
        return None
    root = imports.get(parts[0], parts[0])
    return ".".join([root] + parts[1:])


_SET_ANNOTATION_NAMES = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
})


def _is_set_annotation(annotation) -> bool:
    """Does this annotation syntactically name a set type (``set``,
    ``Set[str]``, ``typing.FrozenSet[int]``, ``"frozenset"``)?"""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_ANNOTATION_NAMES
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_ANNOTATION_NAMES
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split("[")[0].strip() in _SET_ANNOTATION_NAMES
    return False


def is_setish(node: ast.AST, ctx: "ModuleContext") -> bool:
    """Is ``node`` syntactically a set/frozenset value (or a local name
    assigned one in the enclosing scope)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return ctx.is_set_name(node)
    return False


class ModuleContext:
    """Everything a rule may ask about the module under analysis."""

    def __init__(self, path: str, tree: ast.Module, source: str):
        self.path = path
        self.tree = tree
        self.lines = source.splitlines()
        self.imports = collect_imports(tree)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._set_names = self._collect_set_assignments(tree)
        self.findings: List[tuple] = []

    # -- structure -----------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # -- local set-assignment tracking (DET005) ------------------------

    def _collect_set_assignments(self, tree: ast.Module) -> set:
        """(scope node, name) pairs known to hold a set/frozenset value.

        Tracks simple single-target assignments of set literals or
        ``set()``/``frozenset()`` calls, plus parameters and variables
        *annotated* as sets — enough to catch the realistic bug shapes
        without real type inference.
        """
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                direct = value is not None and (
                    isinstance(value, (ast.Set, ast.SetComp))
                    or (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id in ("set", "frozenset"))
                )
                annotated = (isinstance(node, ast.AnnAssign)
                             and _is_set_annotation(node.annotation))
                if not (direct or annotated):
                    continue
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        scope = self.enclosing_function(node)
                        names.add((scope, target.id))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                    if _is_set_annotation(arg.annotation):
                        names.add((node, arg.arg))
        return names

    def is_set_name(self, node: ast.Name) -> bool:
        scope = self.enclosing_function(node)
        return (scope, node.id) in self._set_names or (None, node.id) in self._set_names

    # -- reporting -----------------------------------------------------

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings.append((rule_id, line, col, message, snippet))


# ---------------------------------------------------------------------------
# Rule framework


class Rule:
    """Base class: subclasses register themselves in :data:`REGISTRY`."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    #: AST node classes this rule wants to see.
    node_types: Tuple[type, ...] = ()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        raise NotImplementedError


REGISTRY: Dict[str, Rule] = {}


def register(cls):
    REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> List[Rule]:
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


# ---------------------------------------------------------------------------
# DET001 — wall-clock


#: Wall-clock *reads*: values that differ run to run and would poison any
#: derived result. (``time.sleep`` is pacing, not a read, and is judged
#: by what its caller does with real time, not by the call itself.)
_WALL_READS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register
class WallClockRule(Rule):
    rule_id = "DET001"
    name = "wall-clock"
    summary = ("direct wall-clock read; route through "
               "repro.common.clock.perf_seconds (or a Clock)")
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        target = resolve_target(node.func, ctx.imports)
        if target in _WALL_READS:
            ctx.report(
                self.rule_id, node,
                f"direct wall-clock read {target}(); measurement time must "
                "come from repro.common.clock.perf_seconds (swappable in "
                "tests) and simulation time from a Clock",
            )


# ---------------------------------------------------------------------------
# DET002 — salted-hash


@register
class SaltedHashRule(Rule):
    rule_id = "DET002"
    name = "salted-hash"
    summary = ("builtin hash() outside __hash__; use "
               "repro.common.fingerprint.stable_digest for anything "
               "persisted or cross-process")
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "hash"):
            return
        for ancestor in ctx.ancestors(node):
            if (isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and ancestor.name == "__hash__"):
                # In-process dict/set identity is hash()'s legitimate job;
                # the contract only breaks when the value escapes the
                # process (cache keys, seeds, persisted state).
                return
        ctx.report(
            self.rule_id, node,
            "builtin hash() is salted per process (PYTHONHASHSEED); its "
            "value must never reach seeds, cache keys or persisted state — "
            "use repro.common.fingerprint.stable_digest instead",
        )


# ---------------------------------------------------------------------------
# DET003 — unstable-iteration (serialization tier only, per policy)


#: Order-insensitive consumers: feeding an unordered view into these
#: cannot leak iteration order into output. ``sum`` is included for dict
#: views (int counters dominate); summing floats *from a set* is still
#: flagged because set order is hash-salted to begin with.
_ORDER_SAFE_CALLS = frozenset({
    "sorted", "len", "min", "max", "any", "all", "set", "frozenset", "sum",
    "dict",
})

_DICT_VIEWS = ("items", "keys", "values")


def _comprehension_for_iter(node: ast.AST, ctx: ModuleContext) -> Optional[ast.AST]:
    """If ``node`` is some comprehension's iterable, return the
    comprehension *expression* node that consumes it."""
    parent = ctx.parent(node)
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        comp = ctx.parent(parent)
        return comp
    return None


@register
class UnstableIterationRule(Rule):
    rule_id = "DET003"
    name = "unstable-iteration"
    summary = ("iteration over a set, or an unsorted dict view, in a "
               "serialization-tier module; wrap in sorted(...)")
    node_types = (ast.Call, ast.Set, ast.SetComp, ast.Name)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        described = self._describe(node, ctx)
        if described is None:
            return
        # A set-typed *name* is only flagged where it is directly
        # iterated; passing it on to another function is not iteration
        # (the callee's own tier policy judges what happens there).
        name_only = isinstance(node, ast.Name)
        if self._ordered_consumption(node, ctx, iteration_only=name_only):
            return
        ctx.report(
            self.rule_id, node,
            f"iterating {described} here can leak unstable ordering into "
            "serialized bytes; wrap it in sorted(...) (or consume it "
            "order-insensitively)",
        )

    def _describe(self, node: ast.AST, ctx: ModuleContext) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Name):
            if ctx.is_set_name(node):
                return f"the set-typed name {node.id!r}"
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"a {func.id}"
            if (isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS
                    and not node.args and not node.keywords):
                return f"an unsorted .{func.attr}() view"
        return None

    def _ordered_consumption(self, node: ast.AST, ctx: ModuleContext,
                             iteration_only: bool = False) -> bool:
        """True unless ``node`` is *iterated* in an order-sensitive spot."""
        parent = ctx.parent(node)
        if parent is None:
            return True
        if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
            return False
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            # A comprehension definitely iterates — and freezes the input
            # order into an ordered container — unless the comprehension
            # itself feeds straight into an order-insensitive consumer
            # (``sorted(f(x) for x in d.items())``).
            comp = _comprehension_for_iter(node, ctx)
            grandparent = ctx.parent(comp) if comp is not None else None
            if (isinstance(grandparent, ast.Call) and comp in grandparent.args):
                target = resolve_target(grandparent.func, ctx.imports)
                return target in _ORDER_SAFE_CALLS
            return False
        if isinstance(parent, ast.Starred):
            return False
        if (not iteration_only and isinstance(parent, ast.Call)
                and node in parent.args):
            target = resolve_target(parent.func, ctx.imports)
            return target in _ORDER_SAFE_CALLS
        # Membership tests, set algebra, assignments of the view object,
        # returns, subscripts, bool contexts … are not iteration; deeper
        # flow tracking is out of scope.
        return True


# ---------------------------------------------------------------------------
# DET004 — unseeded-rng


@register
class UnseededRngRule(Rule):
    rule_id = "DET004"
    name = "unseeded-rng"
    summary = ("module-level random.* / np.random.* call; derive a "
               "Generator via repro.common.rng.derive_rng")
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        target = resolve_target(node.func, ctx.imports)
        if target is None:
            return
        if target == "random" or target.startswith("random."):
            source = "the process-global random module"
        elif target.startswith(("numpy.random.", "np.random.")):
            source = "the numpy global RNG namespace"
        else:
            return
        ctx.report(
            self.rule_id, node,
            f"{target}() draws from {source}, whose state is invisible to "
            "the seed-derivation tree; use repro.common.rng.derive_rng("
            "root_seed, *purpose) so the stream is a pure function of the "
            "run configuration",
        )


# ---------------------------------------------------------------------------
# DET005 — repr-seed (the PR-1 SetPredicate bug shape)


_HASHLIB_SINKS = frozenset({
    "hashlib.md5", "hashlib.sha1", "hashlib.sha224", "hashlib.sha256",
    "hashlib.sha384", "hashlib.sha512", "hashlib.blake2b",
    "hashlib.blake2s", "hashlib.new",
})

_DERIVE_SINKS = ("derive_seed", "derive_rng", "derive_cell_seed",
                 "derive_session_seed")

_STRINGIFIERS = ("repr", "str", "format", "ascii")


@register
class ReprSeedRule(Rule):
    rule_id = "DET005"
    name = "repr-seed"
    summary = ("repr()/str()/f-string of a set flowing into hashlib or "
               "seed derivation; sort the set first (PR-1 bug shape)")
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        sink = self._sink_kind(node, ctx)
        if sink is None:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for bad in self._unstable_strings(arg, ctx, direct_ok=(sink == "derive")):
                ctx.report(
                    self.rule_id, bad,
                    "a set/frozenset is stringified on its way into "
                    f"{'seed derivation' if sink == 'derive' else 'a digest'}; "
                    "its repr enumerates in hash order, so the derived value "
                    "changes with PYTHONHASHSEED — the exact bug that "
                    "corrupted engine-rotation seeds in PR 1. Stringify "
                    "sorted(values) instead",
                )

    def _sink_kind(self, node: ast.Call, ctx: ModuleContext) -> Optional[str]:
        target = resolve_target(node.func, ctx.imports)
        if target in _HASHLIB_SINKS:
            return "hashlib"
        if target is not None and target.split(".")[-1] in _DERIVE_SINKS:
            return "derive"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "update":
            # hasher.update(...) — only meaningful when an unstable string
            # actually appears inside, so the noise floor stays at zero.
            return "hashlib"
        return None

    def _unstable_strings(self, arg: ast.AST, ctx: ModuleContext,
                          direct_ok: bool) -> Iterable[ast.AST]:
        """Yield nodes inside ``arg`` that stringify a set-ish value."""
        if direct_ok and is_setish(arg, ctx):
            # derive_* stringifies its purpose parts itself, so passing
            # the set directly is the same bug without the f-string.
            yield arg
        for sub in ast.walk(arg):
            if isinstance(sub, ast.FormattedValue) and is_setish(sub.value, ctx):
                yield sub.value
            elif (isinstance(sub, ast.Call)
                  and isinstance(sub.func, ast.Name)
                  and sub.func.id in _STRINGIFIERS
                  and sub.args and is_setish(sub.args[0], ctx)):
                yield sub


# ---------------------------------------------------------------------------
# DET006 — wall-leak


#: Attribute keys that smell like wall-clock measurements. Virtual-time
#: names (vt, think_time, deadline…) deliberately do not match.
_WALLISH_KEY = re.compile(
    r"wall|elapsed|perf|monotonic|epoch|timestamp|clock|(^|_)ts($|_)",
    re.IGNORECASE,
)

_TRACE_METHODS = ("event", "span")


@register
class WallLeakRule(Rule):
    rule_id = "DET006"
    name = "wall-leak"
    summary = ("wall-time-ish attr key on a tracer entry; wall "
               "measurements belong under the segregated 'wall' axis")
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr in _TRACE_METHODS:
            for kw in node.keywords:
                if kw.arg and kw.arg != "session" and _WALLISH_KEY.search(kw.arg):
                    ctx.report(
                        self.rule_id, kw.value,
                        f"trace attr {kw.arg!r} looks like a wall-clock "
                        "measurement; attrs are golden-pinned virtual-axis "
                        "data — wall readings must nest under the reserved "
                        "'wall' key (docs/observability.md two-axis "
                        "contract)",
                    )
        elif node.func.attr == "set" and node.args:
            key = node.args[0]
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and _WALLISH_KEY.search(key.value)):
                ctx.report(
                    self.rule_id, node,
                    f"span attr {key.value!r} looks like a wall-clock "
                    "measurement; SpanHandle.set() lands in the virtual "
                    "axis — wall readings belong under the 'wall' key",
                )
