"""The lint engine: file discovery, shared AST walk, suppression layers
(the static gate on §1's reproducibility contract).

One :func:`run_lint` call scans a set of files/directories and returns a
:class:`LintResult`. Per module the engine:

1. parses the source once (a syntax error is a *usage* failure — the
   file cannot be vouched for — surfaced in ``parse_errors``);
2. builds a :class:`~repro.analysis.rules.ModuleContext` and walks the
   tree a single time, dispatching each node to every rule the
   per-module-tier :class:`~repro.analysis.policy.Policy` activates;
3. applies ``# repro: allow[...]`` pragma suppressions
   (:mod:`repro.analysis.pragmas`), reporting malformed and unused
   pragmas as unsuppressible ``DET000`` findings;
4. applies the committed baseline (:mod:`repro.analysis.baseline`),
   which grandfathers known findings by content so new code is held to
   the contract even while old debt is being paid down.

Everything is deterministic: files are scanned in sorted order and all
result lists come out sorted, so two runs over the same tree produce
byte-identical reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.policy import DEFAULT_POLICY, Policy
from repro.analysis.pragmas import Pragma, PragmaSheet, parse_pragmas
from repro.analysis.rules import REGISTRY, ModuleContext, Rule

#: Meta-rule id for suppression hygiene (malformed/unused pragmas).
#: DET000 findings can never themselves be suppressed or baselined.
META_RULE_ID = "DET000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".pytest_cache", ".repro-cache"}


@dataclass
class LintResult:
    """Outcome of one lint run, fully sorted and deterministic."""

    findings: List[Finding] = field(default_factory=list)
    pragma_suppressed: List[Tuple[Finding, Pragma]] = field(default_factory=list)
    baseline_suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing — the debt they recorded is
    #: paid, so the baseline should be regenerated (enforced by --strict).
    stale_baseline: List[dict] = field(default_factory=list)
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    files_scanned: int = 0

    def exit_code(self, strict: bool = False) -> int:
        """The documented contract: 0 clean, 1 findings, 2 usage error.

        ``strict`` additionally fails (exit 1) on stale baseline entries,
        so CI forces the baseline to shrink in lockstep with the debt.
        """
        if self.parse_errors:
            return 2
        if self.findings:
            return 1
        if strict and self.stale_baseline:
            return 1
        return 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def discover_files(paths: Sequence) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises ``FileNotFoundError`` for a nonexistent input path — that is
    a usage error (exit 2), not an empty-but-clean scan.
    """
    files = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not _SKIP_DIR_NAMES.intersection(sub.parts):
                    files.append(sub)
        elif path.suffix == ".py":
            files.append(path)
    unique = {file.as_posix(): file for file in files}
    return [unique[key] for key in sorted(unique)]


def _dispatch_table(active: Sequence[Rule]) -> Dict[Type[ast.AST], List[Rule]]:
    table: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            table.setdefault(node_type, []).append(rule)
    return table


def lint_source(
    source: str,
    path: str,
    policy: Policy = DEFAULT_POLICY,
) -> Tuple[List[Finding], List[Tuple[Finding, Pragma]], PragmaSheet]:
    """Lint one module's source text.

    Returns ``(unsuppressed findings, pragma-suppressed findings, sheet)``
    — the caller decides what to do about unused pragmas (fixture tests
    inspect them; :func:`run_lint` turns them into DET000 findings).
    Raises ``SyntaxError`` if the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path, tree, source)
    active_ids = policy.rules_for(path)
    active = [REGISTRY[rule_id] for rule_id in sorted(active_ids)
              if rule_id in REGISTRY]
    table = _dispatch_table(active)
    for node in ast.walk(tree):
        for rule in table.get(type(node), ()):
            rule.visit(node, ctx)

    sheet = parse_pragmas(source)
    kept: List[Finding] = []
    suppressed: List[Tuple[Finding, Pragma]] = []
    for rule_id, line, col, message, snippet in ctx.findings:
        finding = Finding(path=path, line=line, col=col, rule=rule_id,
                          message=message, snippet=snippet)
        pragma = sheet.suppresses(line, rule_id)
        if pragma is not None:
            suppressed.append((finding, pragma))
        else:
            kept.append(finding)
    return sorted(kept), suppressed, sheet


def _meta_findings(path: str, lines: List[str], sheet: PragmaSheet) -> List[Finding]:
    """DET000 hygiene findings: malformed and unused pragmas."""
    findings = []
    for line, message in sheet.problems:
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        findings.append(Finding(path=path, line=line, col=0, rule=META_RULE_ID,
                                message=message, snippet=snippet))
    for pragma in sheet.unused():
        snippet = (lines[pragma.line - 1].strip()
                   if 0 < pragma.line <= len(lines) else "")
        findings.append(Finding(
            path=path, line=pragma.line, col=0, rule=META_RULE_ID,
            message=(f"unused suppression for {','.join(pragma.rule_ids)}: "
                     "nothing on the covered line(s) triggers it — delete "
                     "the pragma (or it will rot into false documentation)"),
            snippet=snippet,
        ))
    return findings


def run_lint(
    paths: Sequence,
    policy: Policy = DEFAULT_POLICY,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Scan ``paths`` and return the full, deterministic result."""
    result = LintResult()
    try:
        files = discover_files(paths)
    except FileNotFoundError as exc:
        result.parse_errors.append((str(paths), str(exc)))
        return result

    candidates: List[Finding] = []
    for file in files:
        display = file.as_posix()
        try:
            source = file.read_text(encoding="utf-8")
            kept, suppressed, sheet = lint_source(source, display, policy)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.parse_errors.append((display, str(exc)))
            continue
        result.files_scanned += 1
        result.pragma_suppressed.extend(suppressed)
        candidates.extend(kept)
        candidates.extend(_meta_findings(display, source.splitlines(), sheet))

    if baseline is not None:
        for finding in sorted(candidates):
            if finding.rule != META_RULE_ID and baseline.absorb(finding):
                result.baseline_suppressed.append(finding)
            else:
                result.findings.append(finding)
        result.stale_baseline = baseline.stale_entries()
    else:
        result.findings = sorted(candidates)

    result.findings.sort()
    result.baseline_suppressed.sort()
    result.pragma_suppressed.sort(key=lambda pair: pair[0])
    return result
