"""``# repro: allow[...]`` pragma suppressions for the determinism lint
(the static gate on §1's reproducibility contract).

A finding can be silenced in source, next to the code it concerns, with a
written justification::

    self._origin = time.monotonic()  # repro: allow[DET001] -- wall pacing only

The pragma suppresses the named rule(s) on its own line, or — when it is
the only thing on its line — on the next source line below it (for lines
too long to carry a trailing comment). Several ids may be listed,
comma-separated: ``allow[DET001,DET003]``.

Two hygiene guarantees are enforced by the engine (as ``DET000``
findings, which cannot themselves be suppressed):

* every pragma must carry a ``-- reason`` — an unexplained suppression
  is itself a defect; and
* every pragma must actually suppress something — stale pragmas rot into
  false documentation once the offending code moves or is fixed.

Comments are located with :mod:`tokenize`, not string matching, so a
pragma-shaped string *literal* never counts as a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: The pragma grammar (anchored: the pragma must *start* the comment, so
#: prose that merely mentions the syntax never parses as one).
_PRAGMA_RE = re.compile(
    r"^#\s*repro:\s*allow\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)

#: Looser shape used to catch misspelled/malformed attempts (e.g. a
#: missing ``]`` or an unknown verb) so they fail loudly instead of
#: silently not suppressing.
_PRAGMA_ATTEMPT_RE = re.compile(r"^#\s*repro:")

_RULE_ID_RE = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int  #: line the comment sits on (1-based)
    rule_ids: tuple
    reason: str
    #: lines the pragma applies to (its own, plus the next line when the
    #: pragma stands alone).
    applies_to: tuple = ()
    used: bool = field(default=False, compare=False)

    def covers(self, line: int, rule_id: str) -> bool:
        return line in self.applies_to and rule_id in self.rule_ids


@dataclass
class PragmaSheet:
    """All pragmas of one module, plus malformed-pragma problems."""

    pragmas: List[Pragma] = field(default_factory=list)
    #: (line, message) pairs for comments that tried to be pragmas but
    #: failed to parse — reported as DET000 by the engine.
    problems: List[tuple] = field(default_factory=list)

    def suppresses(self, line: int, rule_id: str) -> Optional[Pragma]:
        """Return the pragma covering ``(line, rule_id)``, marking it used."""
        for pragma in self.pragmas:
            if pragma.covers(line, rule_id):
                pragma.used = True
                return pragma
        return None

    def unused(self) -> List[Pragma]:
        return [pragma for pragma in self.pragmas if not pragma.used]


def _comment_tokens(source: str) -> Dict[int, tuple]:
    """Map line number → (comment text, whether the line is comment-only)."""
    comments: Dict[int, tuple] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return comments
    code_lines = set()
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments[tok.start[0]] = (tok.string, tok.start[1])
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            code_lines.add(tok.start[0])
    return {
        line: (text, line not in code_lines)
        for line, (text, _col) in comments.items()
    }


def parse_pragmas(source: str) -> PragmaSheet:
    """Extract every pragma (and malformed attempt) from ``source``."""
    sheet = PragmaSheet()
    for line, (comment, standalone) in sorted(_comment_tokens(source).items()):
        if not _PRAGMA_ATTEMPT_RE.search(comment):
            continue
        match = _PRAGMA_RE.search(comment)
        if not match:
            sheet.problems.append(
                (line, "malformed pragma: expected "
                       "'# repro: allow[RULE-ID] -- reason'")
            )
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        bad = [rule_id for rule_id in ids if not _RULE_ID_RE.match(rule_id)]
        if not ids or bad:
            sheet.problems.append(
                (line, f"pragma names invalid rule id(s) {bad or ['<empty>']}; "
                       "ids look like DET001")
            )
            continue
        reason = (match.group("reason") or "").strip()
        if not reason:
            sheet.problems.append(
                (line, "pragma is missing its justification: append "
                       "'-- <why this is deterministic>'")
            )
            continue
        applies = (line, line + 1) if standalone else (line,)
        sheet.pragmas.append(
            Pragma(line=line, rule_ids=ids, reason=reason, applies_to=applies)
        )
    return sheet
