"""Static analysis: the determinism sentinel (``repro lint``).

Every artifact this reproduction publishes — golden reports, TCP
transcripts, traces, windowed telemetry — rests on a byte-determinism
contract (§1's "standardized, automated, and re-producible") that the
test suite enforces *dynamically*: golden pins, differential fuzzers,
PYTHONHASHSEED subprocess checks. This package enforces it
*statically*: an AST lint pass over ``src/`` that catches the bug class
— wall-clock reads, salted ``hash()``, unstable set/dict iteration,
unseeded RNG, set-repr-into-seed flows, wall-time leaks into traces —
at review time instead of golden-regen time.

Layout:

* :mod:`repro.analysis.rules` — the DET001–DET006 rule catalog and the
  shared-walk visitor fragments;
* :mod:`repro.analysis.policy` — per-module-tier rule policy (authority
  modules, serialization tier);
* :mod:`repro.analysis.pragmas` — ``# repro: allow[ID] -- reason``
  source suppressions, hygiene-checked;
* :mod:`repro.analysis.baseline` — the committed grandfather file and
  its content-keyed matching;
* :mod:`repro.analysis.engine` — file discovery, the single-pass walk,
  suppression layering, :class:`LintResult`;
* :mod:`repro.analysis.reporters` — deterministic text/JSON rendering.

The package is self-contained stdlib-only (no numpy), so the lint can
run in environments where the benchmark itself cannot. Entry points:
``repro lint`` (CLI, wired into CI as a hard gate) and :func:`run_lint`
(tests). See docs/determinism.md for the contract and rule catalog.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_PATH,
    findings_to_entries,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import (
    LintResult,
    META_RULE_ID,
    discover_files,
    lint_source,
    run_lint,
)
from repro.analysis.findings import Finding
from repro.analysis.policy import (
    DEFAULT_POLICY,
    Policy,
    STRICT_EVERYWHERE_POLICY,
    TierRule,
)
from repro.analysis.pragmas import Pragma, PragmaSheet, parse_pragmas
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_rule_table,
    render_text,
)
from repro.analysis.rules import REGISTRY, Rule, all_rules

__all__ = [
    "Baseline",
    "BaselineError",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_POLICY",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintResult",
    "META_RULE_ID",
    "Policy",
    "Pragma",
    "PragmaSheet",
    "REGISTRY",
    "Rule",
    "STRICT_EVERYWHERE_POLICY",
    "TierRule",
    "all_rules",
    "discover_files",
    "findings_to_entries",
    "lint_source",
    "load_baseline",
    "parse_pragmas",
    "render_json",
    "render_rule_table",
    "render_text",
    "run_lint",
    "save_baseline",
]
