"""Per-module-tier rule policy for the determinism lint (the static
gate on §1's reproducibility contract).

Not every determinism rule applies everywhere. The codebase has
designated *authority modules* — :mod:`repro.common.clock` is the one
place allowed to read wall time, :mod:`repro.common.rng` the one place
allowed to construct numpy generators — and a *serialization tier*
(wire codecs, report renderers, spool writers, runtime stores, obs
exporters) where iteration order lands in persisted or golden-pinned
bytes and therefore must be provably stable.

A :class:`Policy` starts every module from a base rule set and applies
ordered :class:`TierRule` overlays selected by path glob. Patterns are
posix-style :mod:`fnmatch` globs matched against the scanned path, so
they work no matter which directory the linter is invoked from
(``*/common/clock.py`` matches ``src/repro/common/clock.py`` as well as
a test tree's ``pkg/common/clock.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import PurePosixPath
from typing import FrozenSet, List, Tuple


def _norm(path: str) -> str:
    return str(PurePosixPath(str(path).replace("\\", "/")))


@dataclass(frozen=True)
class TierRule:
    """One overlay: modules matching ``patterns`` gain/lose rules."""

    name: str
    patterns: Tuple[str, ...]
    enable: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()

    def matches(self, path: str) -> bool:
        norm = _norm(path)
        return any(
            fnmatch(norm, pattern) or fnmatch("/" + norm, pattern)
            for pattern in self.patterns
        )


@dataclass(frozen=True)
class Policy:
    """Base rule set plus ordered tier overlays."""

    base: Tuple[str, ...]
    tiers: Tuple[TierRule, ...] = ()

    def rules_for(self, path: str) -> FrozenSet[str]:
        """The rule ids active for ``path`` after all overlays."""
        active = set(self.base)
        for tier in self.tiers:
            if tier.matches(path):
                active.update(tier.enable)
                active.difference_update(tier.disable)
        return frozenset(active)

    def tiers_for(self, path: str) -> List[str]:
        """Names of the overlays that matched (for ``--json`` context)."""
        return [tier.name for tier in self.tiers if tier.matches(path)]


#: Modules whose output is persisted, wire-visible, or golden-pinned:
#: iteration order there is a byte contract, so DET003 applies.
SERIALIZATION_TIER = TierRule(
    name="serialization",
    patterns=(
        "*/net/protocol.py",
        "*/server/report.py",
        "*/server/spool.py",
        "*/runtime/*.py",
        "*/obs/*.py",
    ),
    enable=("DET003",),
)

#: The single module allowed to touch :mod:`time` directly — it *is* the
#: wall-clock authority every other module must route through.
CLOCK_AUTHORITY_TIER = TierRule(
    name="clock-authority",
    patterns=("*/common/clock.py",),
    disable=("DET001",),
)

#: The single module allowed to construct numpy generators — it derives
#: them from root seed + purpose string for everyone else.
RNG_AUTHORITY_TIER = TierRule(
    name="rng-authority",
    patterns=("*/common/rng.py",),
    disable=("DET004",),
)

#: The policy ``repro lint`` applies to ``src/``: wall-clock, salted
#: hash, unseeded RNG, repr-seed and wall-leak rules everywhere;
#: unstable-iteration only in the serialization tier; authority modules
#: exempted from the rule they implement.
DEFAULT_POLICY = Policy(
    base=("DET001", "DET002", "DET004", "DET005", "DET006"),
    tiers=(SERIALIZATION_TIER, CLOCK_AUTHORITY_TIER, RNG_AUTHORITY_TIER),
)

#: Every rule everywhere — what the fixture corpus and ad-hoc audits use.
STRICT_EVERYWHERE_POLICY = Policy(
    base=("DET001", "DET002", "DET003", "DET004", "DET005", "DET006"),
)
