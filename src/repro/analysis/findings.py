"""Finding records produced by the determinism lint pass.

A :class:`Finding` is one rule violation at one source location. Findings
are value objects with a total order (path, line, column, rule id) so
every reporter — text, JSON, the baseline file — emits them in the same
deterministic sequence regardless of scan order. The linter that checks
byte-determinism (§1's reproducibility goal) must itself be
byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the posix-style path the file was scanned under (relative
    paths stay relative, so output is stable across machines). ``snippet``
    is the stripped source line — it doubles as the content anchor for
    baseline matching, which keys on *what* the offending line says, not
    on where it currently sits.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-compatible form (the ``--json`` reporter's schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            rule=data["rule"],
            message=data["message"],
            snippet=data.get("snippet", ""),
        )
