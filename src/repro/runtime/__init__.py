"""Parallel execution runtime: run-matrix planning, sharded execution,
persistent artifact caching and resumable experiments.

The paper's evaluation is a large cross-product of engines, workflow
types, time requirements, data sizes and schema layouts (§5). This
subpackage turns that product into an explicit, parallelizable run
matrix:

* :mod:`repro.runtime.spec` — :class:`RunSpec`, the declarative, hashable
  description of one experiment cell;
* :mod:`repro.runtime.planner` — ``plan_*`` functions enumerating the
  cells of each paper experiment (and arbitrary matrices for the CLI);
* :mod:`repro.runtime.store` — :class:`ArtifactStore`, a content-addressed
  on-disk cache for datasets, workflow suites, ground-truth answers and
  per-cell reports;
* :mod:`repro.runtime.executor` — :class:`MatrixExecutor`, which shards
  cells across worker processes (``--jobs N``) with deterministic
  per-cell seeding, making parallel output bit-identical to serial and
  crashed runs resumable;
* :mod:`repro.runtime.report` — deterministic matrix summaries (plan
  order, fixed float formatting: stable bytes at any job count);
* :mod:`repro.runtime.regression` — cross-run regression tracking:
  snapshot the deterministic report CSVs per git revision and diff two
  revisions (``repro report snapshot`` / ``repro report diff``).
"""

from repro.runtime.executor import (
    CellResult,
    MatrixExecutor,
    context_key,
    execute_cell,
    result_key,
    select_workflows,
)
from repro.runtime.planner import (
    plan_detailed_table,
    plan_matrix,
    plan_overall,
    plan_prep_times,
    plan_schema,
    plan_system_y,
    plan_think_time,
    plan_workflow_types,
)
from repro.runtime.regression import (
    DEFAULT_REGRESS_DIR,
    current_revision,
    diff_revisions,
    snapshot,
    snapshots,
)
from repro.runtime.report import (
    matrix_csv_text,
    matrix_summary_rows,
    render_matrix,
    write_matrix_csv,
)
from repro.runtime.spec import RunSpec, WorkflowSelector
from repro.runtime.store import DEFAULT_CACHE_BUDGET_BYTES, ArtifactStore

__all__ = [
    "ArtifactStore",
    "DEFAULT_CACHE_BUDGET_BYTES",
    "CellResult",
    "DEFAULT_REGRESS_DIR",
    "MatrixExecutor",
    "RunSpec",
    "WorkflowSelector",
    "context_key",
    "current_revision",
    "diff_revisions",
    "execute_cell",
    "snapshot",
    "snapshots",
    "matrix_csv_text",
    "matrix_summary_rows",
    "plan_detailed_table",
    "plan_matrix",
    "plan_overall",
    "plan_prep_times",
    "plan_schema",
    "plan_system_y",
    "plan_think_time",
    "plan_workflow_types",
    "render_matrix",
    "result_key",
    "select_workflows",
    "write_matrix_csv",
]
