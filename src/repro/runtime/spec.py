"""Declarative run-matrix cells: :class:`WorkflowSelector` and :class:`RunSpec`.

The paper's evaluation is a cross-product — engines × workflow types ×
time requirements × data sizes × schema layouts (§5, Figs. 5–6). The
runtime represents every cell of that product as a :class:`RunSpec`: a
frozen, hashable, JSON-round-trippable value that says *what* to run and
nothing about *how* or *where*. That separation is what lets the executor
shard cells across worker processes, key per-cell artifacts on disk, and
resume a crashed matrix without re-planning.

A spec's :meth:`~RunSpec.fingerprint` is the stable digest of its
canonical dictionary (plus the cache schema version), so two equal specs
fingerprint identically in every process — it doubles as the cell's
artifact-cache key and as the input to per-cell seed derivation
(:func:`repro.common.rng.derive_cell_seed`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.config import BenchmarkSettings
from repro.common.errors import ConfigurationError
from repro.common.fingerprint import CACHE_SCHEMA_VERSION, stable_digest
from repro.common.rng import derive_cell_seed
from repro.workflow.spec import WorkflowType

#: Workflow sources a selector can name.
SELECTOR_KINDS = ("generated", "speculation")

#: Execution modes of a cell.
RUN_MODES = ("suite", "prepare")


@dataclass(frozen=True)
class WorkflowSelector:
    """Which workflows a cell runs, described declaratively.

    ``generated`` selects ``count`` workflows of ``workflow_type`` from the
    deterministic generator (optionally sliced with ``start``/``stop``,
    e.g. Table 1 runs exactly the third mixed workflow); ``speculation``
    selects the custom 4-interaction probe workflow of §5.4.
    """

    kind: str = "generated"
    workflow_type: str = "mixed"
    count: int = 10
    start: int = 0
    stop: Optional[int] = None

    def __post_init__(self):
        if self.kind not in SELECTOR_KINDS:
            raise ConfigurationError(
                f"unknown workflow selector kind {self.kind!r}; "
                f"expected one of {SELECTOR_KINDS}"
            )
        if self.kind == "generated":
            valid = tuple(member.value for member in WorkflowType)
            if self.workflow_type not in valid:
                raise ConfigurationError(
                    f"unknown workflow type {self.workflow_type!r}; "
                    f"expected one of {valid}"
                )
        if self.count < 1:
            raise ConfigurationError(f"selector count must be >= 1, got {self.count!r}")
        if self.start < 0:
            raise ConfigurationError(f"selector start must be >= 0, got {self.start!r}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workflow_type": self.workflow_type,
            "count": self.count,
            "start": self.start,
            "stop": self.stop,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkflowSelector":
        return cls(
            kind=data.get("kind", "generated"),
            workflow_type=data.get("workflow_type", "mixed"),
            count=data.get("count", 10),
            start=data.get("start", 0),
            stop=data.get("stop"),
        )


@dataclass(frozen=True)
class RunSpec:
    """One cell of the run matrix — a hashable unit of benchmark work.

    ``mode="suite"`` runs the selected workflows on ``engine`` and yields
    detailed query records; ``mode="prepare"`` only measures the engine's
    modeled data-preparation time (§5.2). ``label`` is a display/grouping
    tag and deliberately excluded from the fingerprint, so relabeling a
    cell never invalidates its cached artifacts.
    """

    engine: str
    settings: BenchmarkSettings
    workflows: WorkflowSelector = field(default_factory=WorkflowSelector)
    normalized: bool = False
    speculation: bool = False
    mode: str = "suite"
    label: str = ""

    def __post_init__(self):
        if not self.engine:
            raise ConfigurationError("run spec needs an engine name")
        if self.mode not in RUN_MODES:
            raise ConfigurationError(
                f"unknown run mode {self.mode!r}; expected one of {RUN_MODES}"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable digest identifying this cell's work across processes."""
        payload = self.to_dict()
        payload.pop("label", None)
        return stable_digest([CACHE_SCHEMA_VERSION, "run-spec", payload], length=None)

    @property
    def cell_id(self) -> str:
        """Short human-facing identifier (prefix of the fingerprint)."""
        return self.fingerprint()[:12]

    @property
    def cell_seed(self) -> int:
        """Deterministic per-cell seed derived from the fingerprint.

        Cells sharing ``settings.seed`` still draw the package's shared
        streams (dataset, workflows) identically — this extra seed exists
        for consumers that need randomness independent across cells yet
        invariant to execution order.
        """
        return derive_cell_seed(self.settings.seed, self.fingerprint())

    def describe(self) -> str:
        """One-line human description for progress output."""
        schema = "norm" if self.normalized else "denorm"
        if self.mode == "prepare":
            return f"{self.engine} prepare {self.settings.data_size.name}/{schema}"
        return (
            f"{self.engine} {self.workflows.workflow_type}×{self.workflows.count} "
            f"TR={self.settings.time_requirement}s "
            f"{self.settings.data_size.name}/{schema}"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "settings": self.settings.to_dict(),
            "workflows": self.workflows.to_dict(),
            "normalized": self.normalized,
            "speculation": self.speculation,
            "mode": self.mode,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        return cls(
            engine=data["engine"],
            settings=BenchmarkSettings.from_dict(data["settings"]),
            workflows=WorkflowSelector.from_dict(data.get("workflows", {})),
            normalized=data.get("normalized", False),
            speculation=data.get("speculation", False),
            mode=data.get("mode", "suite"),
            label=data.get("label", ""),
        )
