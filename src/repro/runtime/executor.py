"""Multiprocess execution of §5's evaluation matrix, cached and resumable.

:class:`MatrixExecutor` takes a planned list of :class:`RunSpec` cells and
executes them either in-process (``jobs=1``, reusing one
:class:`~repro.bench.experiments.ExperimentContext` per dataset/seed) or
sharded across a :class:`concurrent.futures.ProcessPoolExecutor`
(``jobs=N``). Three invariants:

* **determinism** — a cell's output depends only on its spec. Every
  random stream a cell touches is derived from ``spec.settings.seed``
  plus purpose strings (:mod:`repro.common.rng`), never from execution
  order, worker identity or wall time — so ``jobs=8`` is bit-identical
  to ``jobs=1``;
* **plan order** — results come back aligned with the input specs, not
  with completion order;
* **persistence** — with an :class:`~repro.runtime.store.ArtifactStore`,
  each finished cell's records are written to disk *by the worker that
  computed them* (not the parent), so a crash loses at most the cells in
  flight; re-running the same matrix resumes from the completed cells in
  milliseconds.

``repro.bench.experiments`` is imported lazily inside functions: the
experiments module imports this one at load time, and the lazy import
keeps the dependency acyclic.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.clock import perf_seconds
from repro.common.errors import BenchmarkError
from repro.common.log import get_logger
from repro.runtime.spec import RunSpec
from repro.runtime.store import ArtifactStore
from repro.workflow.graph import VizGraph
from repro.workflow.spec import Link, WorkflowType

_log = get_logger("runtime.executor")

#: Context-identity key: cells agreeing on these share generated artifacts.
ContextKey = Tuple[str, int, int]


def context_key(spec: RunSpec) -> ContextKey:
    """(dataset, seed, scale) — the identity of an ExperimentContext."""
    return (spec.settings.dataset, spec.settings.seed, spec.settings.scale)


def result_key(spec: RunSpec) -> tuple:
    """Artifact-store key of a cell's persisted result payload."""
    return ("cell-result", spec.fingerprint())


@dataclass
class CellResult:
    """Outcome of one executed (or cache-restored) run-matrix cell."""

    spec: RunSpec
    records: List[Any] = field(default_factory=list)
    prep: Optional[Any] = None
    from_cache: bool = False
    elapsed: float = 0.0

    @property
    def fingerprint(self) -> str:
        return self.spec.fingerprint()


def select_workflows(ctx, spec: RunSpec):
    """Materialize the workflows a spec's selector names, via ``ctx``."""
    selector = spec.workflows
    size = spec.settings.data_size
    if selector.kind == "speculation":
        from repro.bench.experiments import speculation_workflow

        workflows = [speculation_workflow(ctx.profiles(size))]
    else:
        workflows = ctx.workflows(
            WorkflowType(selector.workflow_type), selector.count, size=size
        )
    return list(workflows)[selector.start : selector.stop]


def warm_ground_truth(ctx, spec: RunSpec) -> None:
    """Pre-answer every exact query a suite cell will need.

    The queries a workflow triggers are a deterministic function of its
    interactions — the engine never influences *which* queries the driver
    submits, only how well it answers them. Replaying the interactions
    through a shadow :class:`VizGraph` therefore enumerates exactly the
    ground-truth lookups of every engine × TR cell over the same suite.
    With a store-backed oracle the answers persist, so forked workers
    (and resumed runs) hit the cache instead of recomputing the same
    exact aggregations in parallel.
    """
    oracle = ctx.oracle(spec.settings.data_size, spec.normalized)
    for workflow in select_workflows(ctx, spec):
        graph = VizGraph()
        for interaction in workflow.interactions:
            applied = graph.apply(interaction)
            if isinstance(interaction, Link):
                # Mirrors the driver's speculation hint, which answers the
                # link source's current query to enumerate its bins.
                oracle.answer(graph.query_for(interaction.source))
            for viz_name in applied.affected:
                oracle.answer(graph.query_for(viz_name))


def execute_cell(ctx, spec: RunSpec) -> Dict[str, Any]:
    """Run one cell on an experiment context; returns its result payload.

    The payload (``{"records": [...], "prep": ...}``) is exactly what the
    artifact store persists under :func:`result_key`.
    """
    from repro.bench.experiments import make_engine

    if spec.mode == "prepare":
        from repro.common.clock import VirtualClock

        dataset = ctx.dataset(spec.settings.data_size, spec.normalized)
        engine = make_engine(spec.engine, dataset, spec.settings, VirtualClock())
        return {"records": [], "prep": engine.prepare()}
    workflows = select_workflows(ctx, spec)
    records = ctx.run(
        spec.engine,
        workflows,
        settings=spec.settings,
        normalized=spec.normalized,
        speculation=spec.speculation,
    )
    return {"records": records, "prep": None}


# ----------------------------------------------------------------------
# Worker-process machinery
# ----------------------------------------------------------------------

#: Per-process context cache so one worker executing many cells builds
#: each dataset/suite at most once (and, with a store, loads it from disk).
_WORKER_CONTEXTS: Dict[Tuple[Optional[str], ContextKey], Any] = {}
_WORKER_STORES: Dict[str, ArtifactStore] = {}


def _worker_store(cache_dir: Optional[str]) -> Optional[ArtifactStore]:
    if cache_dir is None:
        return None
    store = _WORKER_STORES.get(cache_dir)
    if store is None:
        store = ArtifactStore(cache_dir)
        _WORKER_STORES[cache_dir] = store
    return store


def _worker_context(spec: RunSpec, cache_dir: Optional[str]):
    from repro.bench.experiments import ExperimentContext

    key = (cache_dir, context_key(spec))
    ctx = _WORKER_CONTEXTS.get(key)
    if ctx is None:
        ctx = ExperimentContext(spec.settings, store=_worker_store(cache_dir))
        _WORKER_CONTEXTS[key] = ctx
    return ctx


def run_cell_in_worker(
    spec_data: dict, cache_dir: Optional[str]
) -> Dict[str, Any]:
    """Top-level (picklable) entry point executed inside pool workers.

    Persists the finished payload before returning it, so a parent crash
    after this point costs nothing on resume.
    """
    spec = RunSpec.from_dict(spec_data)
    ctx = _worker_context(spec, cache_dir)
    payload = execute_cell(ctx, spec)
    store = _worker_store(cache_dir)
    if store is not None:
        store.put(result_key(spec), payload)
    return payload


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------

class MatrixExecutor:
    """Executes planned cells serially or across worker processes.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` executes in-process (no pool).
    store:
        Optional artifact store. Shared artifacts (datasets, suites,
        ground-truth answers) and finished cell results persist there.
    reuse_results:
        When True (the default) and a store is present, cells whose result
        payload is already stored are restored instead of re-executed —
        this is both the fast-second-run path and crash resumption.
        ``False`` forces re-execution (results are still written back).
    local_context:
        An existing :class:`ExperimentContext` to reuse for in-process
        execution of cells that match its dataset/seed/scale — the
        ``exp_*`` harness passes itself so its in-memory caches keep
        working exactly as before.
    progress:
        Optional callable receiving one human-readable line per cell.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ArtifactStore] = None,
        reuse_results: bool = True,
        local_context=None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        if jobs < 1:
            raise BenchmarkError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = jobs
        self.store = store
        self.reuse_results = reuse_results
        self.local_context = local_context
        self.progress = progress
        self._contexts: Dict[ContextKey, Any] = {}

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[CellResult]:
        """Execute every cell; results align with ``specs`` order."""
        specs = list(specs)
        results: List[Optional[CellResult]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            restored = self._restore(spec)
            if restored is not None:
                results[index] = restored
                self._report(f"[cache] {spec.describe()}")
            else:
                pending.append(index)
        if pending:
            _log.debug(
                "executing matrix cells",
                pending=len(pending),
                cached=len(specs) - len(pending),
                jobs=self.jobs,
            )
            if self.jobs == 1 or len(pending) == 1:
                self._run_serial(specs, pending, results)
            else:
                self._run_parallel(specs, pending, results)
        missing = [i for i, result in enumerate(results) if result is None]
        if missing:
            # A silent gap would misalign every zip(specs, results) consumer;
            # fail loudly instead.
            raise BenchmarkError(
                f"{len(missing)} cell(s) produced no result "
                f"(plan indices {missing})"
            )
        return list(results)

    # ------------------------------------------------------------------
    def _restore(self, spec: RunSpec) -> Optional[CellResult]:
        if self.store is None or not self.reuse_results:
            return None
        payload = self.store.get(result_key(spec))
        if payload is None:
            return None
        return CellResult(
            spec=spec,
            records=payload.get("records", []),
            prep=payload.get("prep"),
            from_cache=True,
        )

    def _context_for(self, spec: RunSpec):
        from repro.bench.experiments import ExperimentContext

        key = context_key(spec)
        if self.local_context is not None and context_key_of(self.local_context) == key:
            return self.local_context
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = ExperimentContext(spec.settings, store=self.store)
            self._contexts[key] = ctx
        return ctx

    def _run_serial(
        self,
        specs: List[RunSpec],
        pending: List[int],
        results: List[Optional[CellResult]],
    ) -> None:
        for index in pending:
            spec = specs[index]
            started = perf_seconds()
            payload = execute_cell(self._context_for(spec), spec)
            elapsed = perf_seconds() - started
            if self.store is not None:
                self.store.put(result_key(spec), payload)
            results[index] = CellResult(
                spec=spec,
                records=payload["records"],
                prep=payload["prep"],
                elapsed=elapsed,
            )
            self._report(f"[ran {elapsed:6.2f}s] {spec.describe()}")

    def _run_parallel(
        self,
        specs: List[RunSpec],
        pending: List[int],
        results: List[Optional[CellResult]],
    ) -> None:
        if self.store is not None:
            self._warm_shared_artifacts([specs[index] for index in pending])
        cache_dir = str(self.store.root) if self.store is not None else None
        started = {index: perf_seconds() for index in pending}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(
                    run_cell_in_worker, specs[index].to_dict(), cache_dir
                ): index
                for index in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    spec = specs[index]
                    payload = future.result()
                    elapsed = perf_seconds() - started[index]
                    results[index] = CellResult(
                        spec=spec,
                        records=payload["records"],
                        prep=payload["prep"],
                        elapsed=elapsed,
                    )
                    self._report(f"[ran {elapsed:6.2f}s] {spec.describe()}")

    def _warm_shared_artifacts(self, specs: Sequence[RunSpec]) -> None:
        """Materialize shared artifacts into the store before forking.

        Without this every worker would race to regenerate the same
        dataset. Building datasets and workflow suites once in the parent
        turns those races into instant disk hits.
        """
        for spec in specs:
            ctx = self._context_for(spec)
            size = spec.settings.data_size
            ctx.dataset(size, spec.normalized)
            if spec.mode == "suite" and spec.workflows.kind == "generated":
                ctx.workflows(
                    WorkflowType(spec.workflows.workflow_type),
                    spec.workflows.count,
                    size=size,
                )
            if spec.mode == "suite":
                warm_ground_truth(ctx, spec)

    def _report(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)


def context_key_of(ctx) -> ContextKey:
    """The :func:`context_key` identity of an ExperimentContext."""
    return (ctx.settings.dataset, ctx.settings.seed, ctx.settings.scale)
