"""Cross-run regression tracking: snapshot deterministic CSVs per revision.

Reproducibility is IDEBench's headline requirement (§1: "standardized,
automated, and re-producible"); this module leans on it across *code*
revisions. Every report this package persists — ``repro run-matrix --out``,
``repro bench-sessions --out``, ``repro bench-adaptive --out``, per-
session detailed CSVs — is **deterministic bytes** for a given
configuration. That turns regression tracking into plain file
comparison: snapshot a report under the producing git revision, and any
later byte difference at the same configuration is a *real* behavior
change, never measurement noise.

``repro report snapshot`` stores a CSV under
``<dir>/<revision>/<kind>.csv`` (revision defaults to the current
``git rev-parse --short HEAD``); ``repro report diff REV_A REV_B``
compares every kind the two revisions share, reports added/removed
kinds, and renders a unified diff of the changed ones — exit status 1
on any difference, so CI can gate on it.
"""

from __future__ import annotations

import difflib
import subprocess
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.common.errors import BenchmarkError

#: Default snapshot directory, relative to the working tree.
DEFAULT_REGRESS_DIR = ".repro-regress"

#: Revision used when git metadata is unavailable.
FALLBACK_REVISION = "worktree"


def current_revision(cwd: Union[str, Path, None] = None) -> str:
    """The short git revision of ``cwd`` (or :data:`FALLBACK_REVISION`)."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return FALLBACK_REVISION
    revision = result.stdout.strip()
    return revision if result.returncode == 0 and revision else FALLBACK_REVISION


def _validate_name(name: str, what: str) -> str:
    if not name or "/" in name or "\\" in name or name.startswith("."):
        raise BenchmarkError(f"invalid {what} {name!r}")
    return name


def snapshot(
    directory: Union[str, Path],
    revision: str,
    kind: str,
    source: Union[str, Path],
) -> Path:
    """Store ``source`` (a CSV file) as ``<dir>/<revision>/<kind>.csv``.

    Bytes are copied verbatim — the whole point is that the stored file
    is the deterministic artifact itself, not a lossy summary of it.
    """
    _validate_name(revision, "revision")
    _validate_name(kind, "kind")
    source = Path(source)
    if not source.is_file():
        raise BenchmarkError(f"snapshot source {source} does not exist")
    target_dir = Path(directory) / revision
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / f"{kind}.csv"
    target.write_bytes(source.read_bytes())
    return target


def snapshots(directory: Union[str, Path]) -> Dict[str, List[str]]:
    """``{revision: [kinds]}`` of everything stored under ``directory``."""
    root = Path(directory)
    if not root.is_dir():
        return {}
    result: Dict[str, List[str]] = {}
    for revision_dir in sorted(root.iterdir()):
        if not revision_dir.is_dir():
            continue
        kinds = sorted(
            path.stem for path in revision_dir.glob("*.csv") if path.is_file()
        )
        if kinds:
            result[revision_dir.name] = kinds
    return result


def diff_revisions(
    directory: Union[str, Path], rev_a: str, rev_b: str
) -> Tuple[bool, str]:
    """Compare every snapshot kind between two revisions.

    Returns ``(identical, report)``: ``identical`` is True when both
    revisions hold the same kinds with byte-identical content. The
    report lists kinds only one side has and unified diffs for changed
    ones (these CSVs are deterministic, so any hunk is a real behavior
    change).
    """
    root = Path(directory)
    dir_a, dir_b = root / rev_a, root / rev_b
    for revision, path in ((rev_a, dir_a), (rev_b, dir_b)):
        if not path.is_dir():
            known = ", ".join(snapshots(root)) or "none"
            raise BenchmarkError(
                f"no snapshots for revision {revision!r} under {root} "
                f"(known revisions: {known})"
            )
    kinds_a = {path.stem for path in dir_a.glob("*.csv")}
    kinds_b = {path.stem for path in dir_b.glob("*.csv")}
    lines: List[str] = []
    identical = True
    for kind in sorted(kinds_a - kinds_b):
        identical = False
        lines.append(f"only in {rev_a}: {kind}")
    for kind in sorted(kinds_b - kinds_a):
        identical = False
        lines.append(f"only in {rev_b}: {kind}")
    for kind in sorted(kinds_a & kinds_b):
        bytes_a = (dir_a / f"{kind}.csv").read_bytes()
        bytes_b = (dir_b / f"{kind}.csv").read_bytes()
        if bytes_a == bytes_b:
            lines.append(f"{kind}: identical ({len(bytes_a)} bytes)")
            continue
        identical = False
        lines.append(f"{kind}: DIFFERS")
        diff = difflib.unified_diff(
            bytes_a.decode("utf-8", errors="replace").splitlines(),
            bytes_b.decode("utf-8", errors="replace").splitlines(),
            fromfile=f"{rev_a}/{kind}.csv",
            tofile=f"{rev_b}/{kind}.csv",
            lineterm="",
        )
        lines.extend(diff)
    return identical, "\n".join(lines)
