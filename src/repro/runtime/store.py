"""Content-addressed artifact store backing §5's evaluation matrix.

Expensive shared artifacts — generated datasets, workflow suites, exact
ground-truth answers, per-cell detailed reports — are pure functions of a
*key*: the seed, the scale, the spec that produced them. The store maps
the stable digest of that key (:mod:`repro.common.fingerprint`) to a
pickled artifact on disk:

    <root>/objects/<aa>/<digest>.pkl

Properties the runtime relies on:

* **process-safe writes** — artifacts are written to a temporary file and
  atomically renamed, so concurrent workers racing on the same key both
  succeed and readers never observe partial pickles;
* **self-invalidating keys** — every digest mixes in
  :data:`~repro.common.fingerprint.CACHE_SCHEMA_VERSION`, so bumping the
  version orphans (rather than corrupts) stale entries;
* **bounded size** — an optional ``max_bytes`` budget evicts the least
  recently used artifacts (mtime is refreshed on every hit);
* **resumability** — a crashed run-matrix leaves every completed cell's
  report behind; the next run loads them in milliseconds.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.common.fingerprint import CACHE_SCHEMA_VERSION, stable_digest

#: Default byte budget the CLI applies to stores it creates (2 GiB). Big
#: enough that no realistic run-matrix sweep evicts mid-run, small enough
#: that a long-lived cache directory cannot grow without bound. Pass
#: ``--cache-budget 0`` (CLI) or ``max_bytes=None`` (API) for unlimited.
DEFAULT_CACHE_BUDGET_BYTES = 2 * 1024**3


class ArtifactStore:
    """A content-addressed pickle store rooted at ``root``."""

    def __init__(self, root: Union[str, Path], max_bytes: Optional[int] = None):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def digest_for(self, key: Any) -> str:
        """Stable digest of ``key``, namespaced by the cache schema version."""
        return stable_digest([CACHE_SCHEMA_VERSION, key], length=None)

    def path_for(self, key: Any) -> Path:
        """On-disk location of the artifact stored under ``key``."""
        digest = self.digest_for(key)
        return self.objects_dir / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def contains(self, key: Any) -> bool:
        """Whether an artifact is stored under ``key`` (no load, no stats)."""
        return self.path_for(key).exists()

    def get(self, key: Any) -> Optional[Any]:
        """Load the artifact stored under ``key`` (``None`` on a miss).

        A corrupt entry (truncated write from a killed process, unpicklable
        payload) counts as a miss and is deleted so it can be rebuilt.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            self.misses += 1
            _remove_quietly(path)
            return None
        self.hits += 1
        _touch_quietly(path)
        return artifact

    def put(self, key: Any, artifact: Any) -> Path:
        """Persist ``artifact`` under ``key`` (atomic; last writer wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            _remove_quietly(Path(temp_name))
            raise
        self.puts += 1
        if self.max_bytes is not None:
            self.evict(self.max_bytes)
        return path

    def get_or_create(self, key: Any, build: Callable[[], Any]) -> Any:
        """Load ``key``'s artifact, or build, persist and return it."""
        artifact = self.get(key)
        if artifact is not None:
            return artifact
        artifact = build()
        self.put(key, artifact)
        return artifact

    # ------------------------------------------------------------------
    # Inventory and eviction
    # ------------------------------------------------------------------
    def _entries(self) -> List[Tuple[float, int, Path]]:
        """(mtime, size, path) for every stored artifact."""
        entries = []
        for path in self.objects_dir.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        """Total size of all stored artifacts."""
        return sum(size for _, size, _ in self._entries())

    def evict(self, max_bytes: int) -> int:
        """Evict least-recently-used artifacts until ≤ ``max_bytes`` remain.

        Returns the number of artifacts removed. Recency is the file mtime,
        which :meth:`get` refreshes on every hit.
        """
        entries = sorted(self._entries())
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            _remove_quietly(path)
            total -= size
            removed += 1
        self.evictions += removed
        return removed

    def clear(self) -> int:
        """Remove every stored artifact; returns how many were removed."""
        removed = 0
        for _, _, path in self._entries():
            _remove_quietly(path)
            removed += 1
        return removed

    def stats(self) -> dict:
        """Counters for progress reports and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "entries": len(self),
            "bytes": self.total_bytes(),
        }

    def __repr__(self) -> str:
        return (
            f"ArtifactStore({str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def _remove_quietly(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


def _touch_quietly(path: Path) -> None:
    try:
        os.utime(path, None)
    except OSError:
        pass
