"""Run-matrix planning: enumerate experiment cells as :class:`RunSpec`\\ s.

Each ``plan_*`` function mirrors the loop structure of one ``exp_*``
harness function (§5 of the paper) but produces the cells *declaratively*,
in a deterministic order, without executing anything. The generic
:func:`plan_matrix` builds arbitrary engines × TRs × sizes × workflow
types × schema cross-products for the ``run-matrix`` CLI.

Plan order is part of the contract: executors return results aligned with
the planned order (never completion order), which is what makes parallel
aggregation byte-identical to serial.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.config import (
    BenchmarkSettings,
    DataSize,
    DEFAULT_TIME_REQUIREMENTS,
)
from repro.common.errors import ConfigurationError
from repro.runtime.spec import RunSpec, WorkflowSelector

#: Schema layout labels accepted by :func:`plan_matrix`.
SCHEMA_LAYOUTS = ("denormalized", "normalized")


def plan_matrix(
    settings: BenchmarkSettings,
    engines: Sequence[str],
    time_requirements: Sequence[float] = DEFAULT_TIME_REQUIREMENTS,
    sizes: Optional[Sequence[DataSize]] = None,
    workflow_types: Sequence[str] = ("mixed",),
    per_type: Optional[int] = None,
    schemas: Sequence[str] = ("denormalized",),
    speculation: bool = False,
) -> List[RunSpec]:
    """The general cross-product: engines × sizes × schemas × types × TRs."""
    sizes = tuple(sizes) if sizes is not None else (settings.data_size,)
    count = per_type if per_type is not None else settings.workflows_per_type
    for schema in schemas:
        if schema not in SCHEMA_LAYOUTS:
            raise ConfigurationError(
                f"unknown schema layout {schema!r}; expected one of {SCHEMA_LAYOUTS}"
            )
    specs: List[RunSpec] = []
    for engine in engines:
        for size in sizes:
            for schema in schemas:
                normalized = schema == "normalized"
                for workflow_type in workflow_types:
                    for tr in time_requirements:
                        specs.append(
                            RunSpec(
                                engine=engine,
                                settings=settings.with_(
                                    time_requirement=float(tr),
                                    data_size=size,
                                    use_joins=normalized,
                                ),
                                workflows=WorkflowSelector(
                                    workflow_type=workflow_type, count=count
                                ),
                                normalized=normalized,
                                speculation=speculation,
                                label=f"{engine}/{size.name}/{schema}/{workflow_type}/tr{tr}",
                            )
                        )
    return specs


def plan_overall(
    settings: BenchmarkSettings,
    engines: Sequence[str],
    time_requirements: Sequence[float],
    count: int,
    size: DataSize,
) -> List[RunSpec]:
    """Fig. 5 / 6a–6c cells: engines × TRs on the mixed workload."""
    return [
        RunSpec(
            engine=engine,
            settings=settings.with_(time_requirement=float(tr), data_size=size),
            workflows=WorkflowSelector(workflow_type="mixed", count=count),
            label=f"overall/{engine}/tr{tr}",
        )
        for engine in engines
        for tr in time_requirements
    ]


def plan_workflow_types(
    settings: BenchmarkSettings,
    engines: Sequence[str],
    workflow_types: Sequence[str],
    count: int,
    size: DataSize,
    time_requirement: float,
) -> List[RunSpec]:
    """Fig. 6d cells: engines × workflow types at one TR."""
    cell_settings = settings.with_(
        time_requirement=time_requirement, data_size=size
    )
    return [
        RunSpec(
            engine=engine,
            settings=cell_settings,
            workflows=WorkflowSelector(workflow_type=workflow_type, count=count),
            label=f"workflow-types/{engine}/{workflow_type}",
        )
        for engine in engines
        for workflow_type in workflow_types
    ]


def plan_schema(
    settings: BenchmarkSettings,
    engines: Sequence[str],
    sizes: Sequence[DataSize],
    count: int,
    time_requirement: float,
) -> List[RunSpec]:
    """Fig. 6e cells: engines × sizes × {denormalized, normalized}."""
    specs: List[RunSpec] = []
    for engine in engines:
        for size in sizes:
            for normalized in (False, True):
                specs.append(
                    RunSpec(
                        engine=engine,
                        settings=settings.with_(
                            time_requirement=time_requirement,
                            data_size=size,
                            use_joins=normalized,
                        ),
                        workflows=WorkflowSelector(workflow_type="mixed", count=count),
                        normalized=normalized,
                        label=f"schema/{engine}/{size.name}/"
                        f"{'normalized' if normalized else 'denormalized'}",
                    )
                )
    return specs


def plan_think_time(
    settings: BenchmarkSettings,
    think_times: Sequence[float],
    time_requirement: float,
    size: DataSize,
    speculation: bool,
) -> List[RunSpec]:
    """Fig. 6f cells: IDEA with speculation over a think-time sweep."""
    return [
        RunSpec(
            engine="idea-sim",
            settings=settings.with_(
                think_time=float(think),
                time_requirement=time_requirement,
                data_size=size,
            ),
            workflows=WorkflowSelector(kind="speculation", count=1),
            speculation=speculation,
            label=f"think-time/{think}",
        )
        for think in think_times
    ]


def plan_detailed_table(
    settings: BenchmarkSettings,
    engine: str,
    time_requirement: float,
    think_time: float,
    size: DataSize,
) -> List[RunSpec]:
    """Table 1 cell: the third mixed workflow on one engine."""
    return [
        RunSpec(
            engine=engine,
            settings=settings.with_(
                time_requirement=time_requirement,
                think_time=think_time,
                data_size=size,
            ),
            workflows=WorkflowSelector(
                workflow_type="mixed", count=3, start=2, stop=3
            ),
            label=f"detailed-table/{engine}",
        )
    ]


def plan_prep_times(
    settings: BenchmarkSettings,
    engines: Sequence[str],
    size: DataSize,
) -> List[RunSpec]:
    """§5.2 cells: per-engine data-preparation measurement."""
    cell_settings = settings.with_(data_size=size)
    return [
        RunSpec(
            engine=engine,
            settings=cell_settings,
            mode="prepare",
            label=f"prep-times/{engine}",
        )
        for engine in engines
    ]


def plan_system_y(
    settings: BenchmarkSettings,
    count: int,
    time_requirement: float,
    size: DataSize,
) -> List[RunSpec]:
    """§5.6 cells: MonetDB vs the System-Y frontend on 1:N workflows."""
    cell_settings = settings.with_(
        time_requirement=time_requirement, data_size=size
    )
    return [
        RunSpec(
            engine=engine,
            settings=cell_settings,
            workflows=WorkflowSelector(workflow_type="one_to_n", count=count),
            label=f"system-y/{engine}",
        )
        for engine in ("monetdb-sim", "system-y-sim")
    ]
