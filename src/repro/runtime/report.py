"""Deterministic aggregation of run-matrix results (§5's summary metrics).

The matrix summary is one row per cell with the Fig.-5 summary metrics.
Determinism rules (what makes ``--jobs N`` byte-identical to ``--jobs 1``):

* rows follow the *plan* order, never completion order;
* no wall-clock quantity (elapsed time, cache hit/miss) appears in the
  summary — those are printed separately as run diagnostics;
* floats are rendered with a fixed format, so the CSV is stable bytes.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Sequence, Union

from repro.bench.report import summarize_records
from repro.common.fingerprint import fmt_cell as _fmt
from repro.runtime.executor import CellResult

#: Column order of the matrix summary CSV.
MATRIX_COLUMNS = (
    "cell_id",
    "engine",
    "mode",
    "data_size",
    "schema",
    "workflow_type",
    "workflows",
    "time_requirement",
    "think_time",
    "seed",
    "num_queries",
    "pct_tr_violated",
    "mean_missing_bins",
    "mre_median",
    "mre_area_above_cdf",
    "margin_median",
    "cosine_mean",
    "mean_bias",
    "prep_seconds",
)


def matrix_summary_rows(results: Sequence[CellResult]) -> List[List[object]]:
    """One summary row per cell, in the given (plan) order."""
    rows: List[List[object]] = []
    for result in results:
        spec = result.spec
        if result.records:
            summary = summarize_records(result.records, group_key=lambda r: "all")[-1]
        else:
            summary = None
        rows.append(
            [
                spec.cell_id,
                spec.engine,
                spec.mode,
                spec.settings.data_size.name,
                "normalized" if spec.normalized else "denormalized",
                spec.workflows.workflow_type if spec.mode == "suite" else "",
                spec.workflows.count if spec.mode == "suite" else 0,
                _fmt(spec.settings.time_requirement),
                _fmt(spec.settings.think_time),
                spec.settings.seed,
                summary.num_queries if summary else 0,
                _fmt(summary.pct_tr_violated) if summary else "",
                _fmt(summary.mean_missing_bins) if summary else "",
                _fmt(summary.mre_median) if summary else "",
                _fmt(summary.mre_area_above_cdf) if summary else "",
                _fmt(summary.margin_median) if summary else "",
                _fmt(summary.cosine_mean) if summary else "",
                _fmt(summary.mean_bias) if summary else "",
                _fmt(result.prep.seconds) if result.prep is not None else "",
            ]
        )
    return rows


def write_matrix_csv(
    path: Union[str, Path, io.TextIOBase], results: Sequence[CellResult]
) -> None:
    """Write the matrix summary CSV (stable bytes for a given plan)."""
    if isinstance(path, (str, Path)):
        with open(path, "w", encoding="utf-8", newline="") as handle:
            _write(handle, results)
    else:
        _write(path, results)


def _write(handle, results: Sequence[CellResult]) -> None:
    writer = csv.writer(handle)
    writer.writerow(MATRIX_COLUMNS)
    for row in matrix_summary_rows(results):
        writer.writerow(row)


def matrix_csv_text(results: Sequence[CellResult]) -> str:
    """The summary CSV as a string (for byte-identity comparisons)."""
    buffer = io.StringIO()
    _write(buffer, results)
    return buffer.getvalue()


def render_matrix(results: Sequence[CellResult], title: str = "run matrix") -> str:
    """Plain-text table of the matrix summary for terminal output."""
    header = (
        f"{'cell':<13} {'engine':<14} {'size':>4} {'schema':<12} "
        f"{'type':<11} {'TR':>5} {'queries':>7} {'%TR viol':>9} "
        f"{'missing':>8} {'MRE area':>9} {'cached':>6}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for result, row in zip(results, matrix_summary_rows(results)):
        spec = result.spec
        if spec.mode == "prepare":
            body = (
                f"{spec.cell_id:<13} {spec.engine:<14} "
                f"{spec.settings.data_size.name:>4} prepare: "
                f"{result.prep.minutes:.1f} min (modeled)"
            )
        else:
            body = (
                f"{spec.cell_id:<13} {spec.engine:<14} {row[3]:>4} {row[4]:<12} "
                f"{row[5]:<11} {float(row[7]):>4.1f}s {row[10]:>7} "
                f"{(row[11] or '—'):>9} {(row[12] or '—'):>8} {(row[14] or '—'):>9} "
                f"{'yes' if result.from_cache else 'no':>6}"
            )
        lines.append(body)
    return "\n".join(lines)
