"""Additional driver behaviours: discard plumbing, confidence levels,
empty-effect interactions, and per-workflow-type summaries."""

import numpy as np
import pytest

from repro.bench.driver import BenchmarkDriver
from repro.bench.report import summarize_records
from repro.common.clock import VirtualClock
from repro.engines.progressive import ProgressiveEngine
from repro.engines.sampling import StratifiedSamplingEngine
from repro.query.groundtruth import GroundTruthOracle
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Link,
    SelectBins,
    VizSpec,
    Workflow,
    WorkflowType,
)


def _viz(name, field="DEP_DELAY", nominal=False):
    bins = (
        (BinDimension(field, BinKind.NOMINAL),)
        if nominal
        else (BinDimension(field, BinKind.QUANTITATIVE, width=20.0),)
    )
    return VizSpec(name, "flights", bins, (Aggregate(AggFunc.COUNT),))


class TestDiscardPlumbing:
    def test_discard_notifies_engine_and_drops_reuse(self, flights_dataset,
                                                     tiny_settings,
                                                     flights_oracle):
        workflow = Workflow(
            "discarding", WorkflowType.CUSTOM,
            interactions=(
                CreateViz(_viz("a", "UNIQUE_CARRIER", nominal=True)),
                CreateViz(_viz("b")),
                DiscardViz("a"),
                DiscardViz("b"),
            ),
        )
        settings = tiny_settings.with_(time_requirement=1.0, think_time=2.0)
        engine = ProgressiveEngine(flights_dataset, settings, VirtualClock())
        engine.prepare()
        driver = BenchmarkDriver(engine, flights_oracle, settings)
        records = driver.run_workflow(workflow)
        # Discards trigger no queries of their own here (no descendants).
        assert len(records) == 2
        # Reuse cache was purged for the discarded vizs' queries.
        assert engine._reuse == {}

    def test_discard_with_descendants_requeries_them(self, flights_dataset,
                                                     tiny_settings,
                                                     flights_oracle):
        workflow = Workflow(
            "cascade", WorkflowType.CUSTOM,
            interactions=(
                CreateViz(_viz("src", "UNIQUE_CARRIER", nominal=True)),
                CreateViz(_viz("dst")),
                Link("src", "dst"),
                SelectBins("src", (("ZZ",),)),
                DiscardViz("src"),
            ),
        )
        engine = ProgressiveEngine(flights_dataset, tiny_settings, VirtualClock())
        engine.prepare()
        driver = BenchmarkDriver(engine, flights_oracle, tiny_settings)
        records = driver.run_workflow(workflow)
        # The final discard re-queries dst (its input disappeared).
        final = [r for r in records if r.interaction_id == 4]
        assert [r.viz_name for r in final] == ["dst"]
        # dst's post-discard query no longer carries src's selection.
        assert final[0].qualifying_fraction == pytest.approx(1.0)


class TestConfidenceLevelSetting:
    # Note: the query must not bin on the stratification column — counts
    # per stratum are deterministic there (margin exactly 0 regardless of
    # the confidence level).
    def _distance_query(self):
        from repro.query.model import AggQuery

        return AggQuery(
            "flights",
            bins=(BinDimension("DISTANCE", BinKind.QUANTITATIVE, width=250.0),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )

    def _result_at_confidence(self, flights_dataset, tiny_settings, confidence):
        settings = tiny_settings.with_(confidence_level=confidence)
        engine = StratifiedSamplingEngine(
            flights_dataset, settings, VirtualClock(), sampling_rate=0.05
        )
        engine.prepare()
        handle = engine.submit(self._distance_query())
        engine.clock.advance_to(30.0)
        engine.advance_to(30.0)
        return engine.result_at(handle, 30.0)

    def test_higher_confidence_widens_margins(self, flights_dataset,
                                              tiny_settings):
        def margin_at(confidence):
            result = self._result_at_confidence(
                flights_dataset, tiny_settings, confidence
            )
            margins = [m[0] for m in result.margins.values() if m[0] is not None]
            return float(np.mean(margins))

        assert margin_at(0.99) > margin_at(0.8) > 0.0

    def test_estimates_unaffected_by_confidence(self, flights_dataset,
                                                tiny_settings):
        low = self._result_at_confidence(flights_dataset, tiny_settings, 0.8)
        high = self._result_at_confidence(flights_dataset, tiny_settings, 0.99)
        assert low.values == high.values


class TestSummaryGroupings:
    def test_workflow_type_grouping_from_driver_records(self, flights_dataset,
                                                        tiny_settings,
                                                        flights_oracle):
        workflows = [
            Workflow("ind", WorkflowType.INDEPENDENT,
                     (CreateViz(_viz("x")),)),
            Workflow("mix", WorkflowType.MIXED,
                     (CreateViz(_viz("y", "UNIQUE_CARRIER", nominal=True)),)),
        ]
        engine = ProgressiveEngine(flights_dataset, tiny_settings, VirtualClock())
        engine.prepare()
        driver = BenchmarkDriver(engine, flights_oracle, tiny_settings)
        records = driver.run_suite(workflows)
        rows = summarize_records(records)
        assert [row.group for row in rows] == ["independent", "mixed", "all"]
